//! # HYDRA — a dynamic big data regenerator (Rust reproduction)
//!
//! This crate is the façade of the workspace: it re-exports every subsystem of
//! the reproduction of *"HYDRA: A Dynamic Big Data Regenerator"* (Sanghi,
//! Sood, Singh, Haritsa, Tirthapura — PVLDB 11(12), 2018) under one roof, so
//! downstream users can depend on a single crate.
//!
//! ## Subsystems
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`catalog`] | `hydra-catalog` | schema, value model, statistics, metadata transfer |
//! | [`query`] | `hydra-query` | SPJ queries, logical plans, annotated query plans (AQPs) |
//! | [`engine`] | `hydra-engine` | in-memory relational executor with cardinality instrumentation |
//! | [`lp`] | `hydra-lp` | LP model + two-phase simplex solver (Z3 substitute) |
//! | [`partition`] | `hydra-partition` | region partitioning (HYDRA) and grid partitioning (DataSynth baseline) |
//! | [`summary`] | `hydra-summary` | LP formulation, deterministic alignment, database summaries, verification |
//! | [`datagen`] | `hydra-datagen` | dynamic tuple generation, velocity regulation, dataless databases |
//! | [`workload`] | `hydra-workload` | synthetic client schemas, data generators, SPJ workloads |
//! | [`core`] | `hydra-core` | client site, transfer package, vendor site, scenarios, reports |
//! | [`service`] | `hydra-service` | TCP regeneration server, persistent summary registry, typed client |
//! | [`pgwire`] | `hydra-pgwire` | PostgreSQL simple-query front-end over the same registry |
//! | [`obs`] | `hydra-obs` | metrics, latency histograms, tracing spans, Prometheus exposition |
//!
//! ## Quickstart
//!
//! Everything is driven through a [`Hydra`] session built from a typed
//! builder: pick an LP backend ([`summary::SimplexBackend`] is the paper's
//! pipeline, [`summary::GridBackend`] the DataSynth baseline), an alignment
//! strategy, a worker count for the per-relation solves, and whether solved
//! relations are cached across regenerations and scenario sweeps.
//!
//! ```
//! use hydra::Hydra;
//! use hydra::workload::{generate_client_database, retail_row_targets, retail_schema,
//!                       DataGenConfig, WorkloadGenConfig, WorkloadGenerator};
//!
//! let schema = retail_schema();
//! let mut targets = retail_row_targets(0.005);
//! targets.insert("store_sales".to_string(), 1_000);
//! targets.insert("web_sales".to_string(), 300);
//! let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
//! let queries = WorkloadGenerator::new(schema,
//!     WorkloadGenConfig { num_queries: 5, ..Default::default() }).generate();
//!
//! let session = Hydra::builder()
//!     .parallelism(2)
//!     .summary_cache(true)
//!     .compare_aqps(false)
//!     .build();
//! let package = session.profile(db, &queries).unwrap();
//! let result = session.regenerate(&package).unwrap();
//! assert!(result.accuracy.fraction_within(0.10) > 0.9);
//!
//! // What-if scenario over the same package: the session cache re-solves
//! // only the relations the scenario touches.
//! use hydra::core::scenario::Scenario;
//! let what_if = session.scenario(&Scenario::scaled("x1000", 1000.0), &package).unwrap();
//! assert!(what_if.feasible);
//!
//! // Analytical aggregates are answered summary-direct — from block
//! // cardinalities alone, without materializing a tuple.
//! use hydra::ExecStrategy;
//! let answer = session
//!     .query(&result, "select count(*), avg(item.i_current_price) \
//!                      from store_sales, item \
//!                      where store_sales.ss_item_fk = item.i_item_sk \
//!                      group by item.i_category")
//!     .unwrap();
//! assert_eq!(answer.strategy(), ExecStrategy::SummaryDirect);
//! assert_eq!(answer.scanned_tuples, 0);
//! ```

pub use hydra_catalog as catalog;
pub use hydra_core as core;
pub use hydra_datagen as datagen;
pub use hydra_engine as engine;
pub use hydra_lp as lp;
pub use hydra_obs as obs;
pub use hydra_partition as partition;
pub use hydra_pgwire as pgwire;
pub use hydra_query as query;
pub use hydra_service as service;
pub use hydra_summary as summary;
pub use hydra_workload as workload;

pub use hydra_core::session::{Hydra, HydraBuilder};
pub use hydra_core::{DeltaOutcome, RegenerationResult, RegenerationState, TransferPackage};
pub use hydra_datagen::exec::{ExecMode, QueryEngine};
pub use hydra_pgwire::{serve_pg, PgClient};
pub use hydra_query::delta::{ConstraintSet, WorkloadDelta};
pub use hydra_query::exec::{AggregateQuery, ExecStrategy, QueryAnswer};
pub use hydra_service::{HydraClient, ShutdownSignal, SummaryRegistry};
pub use hydra_summary::delta::{DeltaBuildReport, SummaryDiff};
