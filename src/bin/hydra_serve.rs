//! `hydra-serve` — the regeneration server binary.
//!
//! ```text
//! hydra-serve [--addr HOST:PORT] [--pg-addr HOST:PORT] [--registry-dir DIR]
//!             [--seed-retail ROWS] [--velocity ROWS_PER_SEC] [--parallelism N]
//! ```
//!
//! * `--addr` (default `127.0.0.1:7871`): frame-protocol listen address;
//!   port `0` picks an ephemeral port.  The bound address is printed as
//!   `hydra-serve listening on HOST:PORT` once the server is up.
//! * `--pg-addr HOST:PORT`: additionally serve the PostgreSQL simple-query
//!   protocol on this address, over the **same** registry (the `database`
//!   startup parameter selects the summary, `name@version` pins a version).
//!   Printed as `hydra-serve pg listening on HOST:PORT`.
//! * `--registry-dir DIR`: persist published packages to `DIR/<name>.json`
//!   and re-solve whatever is found there on startup.  Without it the
//!   registry is in-memory.
//! * `--seed-retail ROWS`: before serving, publish the synthetic retail
//!   fixture (fact table of `ROWS` rows) as summary `retail`, so clients can
//!   stream immediately without publishing anything.
//! * `--velocity R`: default server-side velocity cap (rows/second) for
//!   streams that do not request their own rate.
//! * `--parallelism N`: worker threads for per-relation solving.
//!
//! The server runs until a client sends a `Shutdown` frame (see
//! `HydraClient::shutdown`); both listeners share one `ShutdownSignal`, so
//! the frame-driven shutdown stops the pg accept loop too, drains in-flight
//! connections on both, and exits 0.

use hydra_core::session::Hydra;
use hydra_service::registry::SummaryRegistry;
use hydra_service::ShutdownSignal;
use hydra_workload::retail_client_fixture;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    addr: String,
    pg_addr: Option<String>,
    registry_dir: Option<String>,
    seed_retail: Option<u64>,
    velocity: Option<f64>,
    parallelism: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7871".to_string(),
        pg_addr: None,
        registry_dir: None,
        seed_retail: None,
        velocity: None,
        parallelism: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--pg-addr" => options.pg_addr = Some(value("--pg-addr")?),
            "--registry-dir" => options.registry_dir = Some(value("--registry-dir")?),
            "--seed-retail" => {
                options.seed_retail = Some(
                    value("--seed-retail")?
                        .parse()
                        .map_err(|e| format!("--seed-retail: {e}"))?,
                )
            }
            "--velocity" => {
                options.velocity = Some(
                    value("--velocity")?
                        .parse()
                        .map_err(|e| format!("--velocity: {e}"))?,
                )
            }
            "--parallelism" => {
                options.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|e| format!("--parallelism: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: hydra-serve [--addr HOST:PORT] [--pg-addr HOST:PORT] \
                     [--registry-dir DIR] [--seed-retail ROWS] \
                     [--velocity ROWS_PER_SEC] [--parallelism N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let session = Hydra::builder()
        .compare_aqps(false)
        .parallelism(options.parallelism)
        .velocity(options.velocity)
        .build();

    let registry = match &options.registry_dir {
        Some(dir) => match SummaryRegistry::persistent(session.clone(), dir) {
            Ok(registry) => registry,
            Err(e) => {
                eprintln!("hydra-serve: cannot open registry dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => SummaryRegistry::in_memory(session.clone()),
    };
    for entry in registry.list() {
        println!(
            "hydra-serve: loaded summary `{}` v{} ({} relations, {} rows)",
            entry.name,
            entry.version,
            entry.info().relations,
            entry.info().total_rows
        );
    }

    if let Some(rows) = options.seed_retail {
        println!("hydra-serve: seeding retail fixture ({rows} fact rows)…");
        let (db, queries) = retail_client_fixture(rows, rows / 3, 8);
        let package = match session.profile(db, &queries) {
            Ok(package) => package,
            Err(e) => {
                eprintln!("hydra-serve: retail fixture profiling failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = registry.publish("retail", package) {
            eprintln!("hydra-serve: retail fixture publish failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    let registry = Arc::new(registry);
    let signal = ShutdownSignal::new();
    let server = match hydra_service::server::serve_with_signal(
        Arc::clone(&registry),
        options.addr.as_str(),
        signal.clone(),
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("hydra-serve: cannot bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("hydra-serve listening on {}", server.local_addr());

    // The pg listener shares the frame server's shutdown signal: a frame
    // `Shutdown` stops both accept loops, and vice versa — no orphans.
    let pg_server = match &options.pg_addr {
        Some(pg_addr) => {
            match hydra_pgwire::serve_pg(Arc::clone(&registry), pg_addr.as_str(), signal) {
                Ok(pg_server) => {
                    println!("hydra-serve pg listening on {}", pg_server.local_addr());
                    Some(pg_server)
                }
                Err(e) => {
                    eprintln!("hydra-serve: cannot bind pg {pg_addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    server.join();
    if let Some(pg_server) = pg_server {
        pg_server.join();
    }
    println!("hydra-serve: shut down cleanly");
    ExitCode::SUCCESS
}
