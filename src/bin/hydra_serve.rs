//! `hydra-serve` — the regeneration server binary.
//!
//! ```text
//! hydra-serve [--addr HOST:PORT] [--pg-addr HOST:PORT] [--metrics-addr HOST:PORT]
//!             [--registry-dir DIR | --wal-dir DIR] [--checkpoint-every N]
//!             [--seed-retail ROWS] [--velocity ROWS_PER_SEC]
//!             [--parallelism N] [--workers N] [--max-connections N]
//!             [--slow-query-ms MS]
//! ```
//!
//! * `--addr` (default `127.0.0.1:7871`): frame-protocol listen address;
//!   port `0` picks an ephemeral port.  The bound address is printed as
//!   `hydra-serve listening on HOST:PORT` once the server is up.
//! * `--pg-addr HOST:PORT`: additionally serve the PostgreSQL simple-query
//!   protocol on this address, over the **same** registry (the `database`
//!   startup parameter selects the summary, `name@version` pins a version).
//!   Printed as `hydra-serve pg listening on HOST:PORT`.
//! * `--registry-dir DIR`: persist published packages to `DIR/<name>.json`
//!   and re-solve whatever is found there on startup.  Without it (and
//!   without `--wal-dir`) the registry is in-memory.
//! * `--wal-dir DIR`: full durability — every publish and delta is appended
//!   (and fsync'd) to `DIR/wal.log` before it is acknowledged, and periodic
//!   checkpoints snapshot the complete solved state.  Restart recovers all
//!   names **and all retained versions** with zero cold LP solves
//!   (snapshot-load + WAL-replay).  Mutually exclusive with
//!   `--registry-dir`.
//! * `--checkpoint-every N` (default 64): with `--wal-dir`, write a
//!   snapshot and truncate the WAL after every `N` appended records.
//! * `--seed-retail ROWS`: before serving, publish the synthetic retail
//!   fixture (fact table of `ROWS` rows) as summary `retail`, so clients can
//!   stream immediately without publishing anything.
//! * `--velocity R`: default server-side velocity cap (rows/second) for
//!   streams that do not request their own rate.
//! * `--parallelism N`: worker threads for per-relation solving.
//! * `--workers N`: reactor worker threads executing requests and tuple
//!   streams (default: available parallelism).  Connection count is
//!   independent of this — ten thousand clients still run on `N` threads.
//! * `--max-connections N`: connection ceiling across all listeners
//!   (default 8192); excess accepts are closed immediately.
//! * `--metrics-addr HOST:PORT`: additionally serve `GET /metrics` in
//!   Prometheus text exposition format on this address (HTTP/1.0, one
//!   request per connection).  Printed as
//!   `hydra-serve metrics listening on HOST:PORT`.
//! * `--slow-query-ms MS`: log one structured line to stderr
//!   (`hydra-slow-request id=… op=… duration_ms=…`) for every request
//!   slower than `MS` milliseconds.  Off by default.
//!
//! All listeners run on **one** reactor event loop (one epoll set, one
//! worker pool, one `ShutdownSignal`).  The server runs until a client
//! sends a `Shutdown` frame (see `HydraClient::shutdown`), which stops both
//! listeners, drains in-flight connections, and exits 0.

use hydra_core::session::Hydra;
use hydra_obs::SlowLog;
use hydra_pgwire::PgProtocol;
use hydra_service::registry::SummaryRegistry;
use hydra_service::server::{ReactorBuilder, ReactorConfig};
use hydra_service::{FrameProtocol, MetricsProtocol, ShutdownSignal};
use hydra_workload::retail_client_fixture;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    addr: String,
    pg_addr: Option<String>,
    metrics_addr: Option<String>,
    registry_dir: Option<String>,
    wal_dir: Option<String>,
    checkpoint_every: usize,
    seed_retail: Option<u64>,
    velocity: Option<f64>,
    parallelism: usize,
    workers: usize,
    max_connections: usize,
    slow_query_ms: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:7871".to_string(),
        pg_addr: None,
        metrics_addr: None,
        registry_dir: None,
        wal_dir: None,
        checkpoint_every: 64,
        seed_retail: None,
        velocity: None,
        parallelism: 1,
        workers: 0,
        max_connections: 8192,
        slow_query_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--pg-addr" => options.pg_addr = Some(value("--pg-addr")?),
            "--metrics-addr" => options.metrics_addr = Some(value("--metrics-addr")?),
            "--registry-dir" => options.registry_dir = Some(value("--registry-dir")?),
            "--wal-dir" => options.wal_dir = Some(value("--wal-dir")?),
            "--checkpoint-every" => {
                options.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--seed-retail" => {
                options.seed_retail = Some(
                    value("--seed-retail")?
                        .parse()
                        .map_err(|e| format!("--seed-retail: {e}"))?,
                )
            }
            "--velocity" => {
                options.velocity = Some(
                    value("--velocity")?
                        .parse()
                        .map_err(|e| format!("--velocity: {e}"))?,
                )
            }
            "--parallelism" => {
                options.parallelism = value("--parallelism")?
                    .parse()
                    .map_err(|e| format!("--parallelism: {e}"))?
            }
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-connections" => {
                options.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--slow-query-ms" => {
                options.slow_query_ms = Some(
                    value("--slow-query-ms")?
                        .parse()
                        .map_err(|e| format!("--slow-query-ms: {e}"))?,
                )
            }
            "--help" | "-h" => {
                return Err(
                    "usage: hydra-serve [--addr HOST:PORT] [--pg-addr HOST:PORT] \
                     [--metrics-addr HOST:PORT] [--registry-dir DIR | --wal-dir DIR] \
                     [--checkpoint-every N] \
                     [--seed-retail ROWS] [--velocity ROWS_PER_SEC] \
                     [--parallelism N] [--workers N] [--max-connections N] \
                     [--slow-query-ms MS]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let session = Hydra::builder()
        .compare_aqps(false)
        .parallelism(options.parallelism)
        .velocity(options.velocity)
        .build();
    if let Some(ms) = options.slow_query_ms {
        session
            .metrics()
            .set_slow_log(Some(SlowLog::stderr(Duration::from_millis(ms))));
    }

    if options.registry_dir.is_some() && options.wal_dir.is_some() {
        eprintln!("hydra-serve: --registry-dir and --wal-dir are mutually exclusive");
        return ExitCode::FAILURE;
    }
    let registry = match (&options.registry_dir, &options.wal_dir) {
        (Some(dir), None) => match SummaryRegistry::persistent(session.clone(), dir) {
            Ok(registry) => registry,
            Err(e) => {
                eprintln!("hydra-serve: cannot open registry dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(dir)) => {
            match SummaryRegistry::durable(session.clone(), dir, options.checkpoint_every) {
                Ok(registry) => {
                    let recovery = registry.recovery_report();
                    println!(
                        "hydra-serve: recovered {} version(s) from snapshot, {} from WAL \
                         ({} torn bytes truncated)",
                        recovery.snapshot_versions,
                        recovery.wal_versions,
                        recovery.wal_truncated_bytes
                    );
                    registry
                }
                Err(e) => {
                    eprintln!("hydra-serve: cannot open WAL dir {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => SummaryRegistry::in_memory(session.clone()),
    };
    for entry in registry.list() {
        println!(
            "hydra-serve: loaded summary `{}` v{} ({} relations, {} rows)",
            entry.name,
            entry.version,
            entry.info().relations,
            entry.info().total_rows
        );
    }

    if let Some(rows) = options.seed_retail {
        println!("hydra-serve: seeding retail fixture ({rows} fact rows)…");
        let (db, queries) = retail_client_fixture(rows, rows / 3, 8);
        let package = match session.profile(db, &queries) {
            Ok(package) => package,
            Err(e) => {
                eprintln!("hydra-serve: retail fixture profiling failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = registry.publish("retail", package) {
            eprintln!("hydra-serve: retail fixture publish failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    let registry = Arc::new(registry);
    let signal = ShutdownSignal::new();
    // One reactor hosts every protocol listener: one epoll set, one fixed
    // worker pool, one shutdown signal — a frame `Shutdown` stops the pg
    // listener too, and vice versa.
    let mut builder = ReactorBuilder::new()
        .config(ReactorConfig {
            workers: options.workers,
            max_connections: options.max_connections,
            ..ReactorConfig::default()
        })
        .observe(session.metrics());
    let frame_addr = match builder.listen(
        options.addr.as_str(),
        Arc::new(FrameProtocol::new(Arc::clone(&registry), signal.clone())),
    ) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("hydra-serve: cannot bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    let pg_addr = match &options.pg_addr {
        Some(pg_addr) => {
            match builder.listen(
                pg_addr.as_str(),
                Arc::new(PgProtocol::new(Arc::clone(&registry))),
            ) {
                Ok(addr) => Some(addr),
                Err(e) => {
                    eprintln!("hydra-serve: cannot bind pg {pg_addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let metrics_addr = match &options.metrics_addr {
        Some(metrics_addr) => {
            match builder.listen(
                metrics_addr.as_str(),
                Arc::new(MetricsProtocol::new(session.metrics())),
            ) {
                Ok(addr) => Some(addr),
                Err(e) => {
                    eprintln!("hydra-serve: cannot bind metrics {metrics_addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let reactor = match builder.start(signal) {
        Ok(reactor) => reactor,
        Err(e) => {
            eprintln!("hydra-serve: cannot start reactor: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hydra-serve listening on {frame_addr}");
    if let Some(pg_addr) = pg_addr {
        println!("hydra-serve pg listening on {pg_addr}");
    }
    if let Some(metrics_addr) = metrics_addr {
        println!("hydra-serve metrics listening on {metrics_addr}");
    }

    reactor.join();
    println!("hydra-serve: shut down cleanly");
    ExitCode::SUCCESS
}
