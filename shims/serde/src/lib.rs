//! Offline stand-in for the `serde` crate.
//!
//! The real serde is unavailable in this build environment (no network, no
//! vendored registry), so this crate provides the small slice of its API the
//! workspace actually uses: `Serialize` / `Deserialize` traits, derive macros
//! (re-exported from the sibling `serde_derive` proc-macro crate), and enough
//! std-type impls to round-trip every type in the HYDRA transfer path.
//!
//! Instead of serde's visitor architecture, values convert through an explicit
//! data-model tree ([`Content`]). `serde_json` renders/parses that tree. The
//! JSON encoding matches real serde's externally-tagged defaults (unit enum
//! variants as strings, newtype variants as one-entry maps, structs as maps)
//! so serialized artifacts look the way readers of the paper's demo expect.
//!
//! Unknown map entries are ignored during deserialization, exactly like real
//! serde without `deny_unknown_fields` — the transfer package's forward
//! compatibility tests rely on this.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The serde data model: what any serializable value reduces to.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON null / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    U64(u64),
    /// Very large unsigned integer (region volumes can reach `u128::MAX`).
    U128(u128),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map accessor used by derived `Deserialize` impls.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Sequence accessor used by derived `Deserialize` impls.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short name of the content class, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::U128(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// A "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Error {
        Error(format!("expected {what} while deserializing {ty}"))
    }

    /// A custom message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can be reduced to the serde data model.
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn serialize_content(&self) -> Content;
}

/// A value that can be reconstructed from the serde data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data-model tree.
    fn deserialize_content(content: &Content) -> Result<Self, Error>;
}

/// Looks up and deserializes one struct field from a map, ignoring unknown
/// entries (forward compatibility). Used by derived impls.
pub fn field<T: Deserialize>(
    entries: &[(String, Content)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize_content(v),
        None => Err(Error(format!(
            "missing field `{name}` while deserializing {ty}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    Content::U128(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn serialize_content(&self) -> Content {
        if *self <= i64::MAX as u128 {
            Content::I64(*self as i64)
        } else if *self <= u64::MAX as u128 {
            Content::U64(*self as u64)
        } else {
            Content::U128(*self)
        }
    }
}

impl Deserialize for u128 {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::I64(v) => {
                u128::try_from(*v).map_err(|_| Error::custom(format!("{v} out of range for u128")))
            }
            Content::U64(v) => Ok(u128::from(*v)),
            Content::U128(v) => Ok(*v),
            other => Err(Error::expected("integer", other.kind())),
        }
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::U128(v) => Ok(*v as $t),
                    // Real serde_json writes non-finite floats as null.
                    Content::Null => Ok(<$t>::NAN),
                    other => Err(Error::expected("number", other.kind())),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(Error::expected("sequence", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = c.as_seq().ok_or_else(|| Error::expected("sequence", c.kind()))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected a tuple of {LEN} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        let entries = c.as_map().ok_or_else(|| Error::expected("map", c.kind()))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn serialize_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), self.as_secs().serialize_content()),
            ("nanos".to_string(), self.subsec_nanos().serialize_content()),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        let entries = c.as_map().ok_or_else(|| Error::expected("map", c.kind()))?;
        let secs: u64 = field(entries, "secs", "Duration")?;
        let nanos: u32 = field(entries, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}
