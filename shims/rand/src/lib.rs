//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides exactly what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for the seeded, reproducible synthetic
//! data and workload generation this repo performs (no cryptographic claims).
//!
//! Note the sequences differ from the real `rand::StdRng` (ChaCha12), so
//! seeded fixtures are reproducible *within* this workspace but not against
//! external rand-based code — nothing here depends on that.

pub mod rngs {
    /// The standard PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical xoshiro seeding procedure.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// A range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from(self, rng: &mut StdRng) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Sampling methods (subset of the real trait).
pub trait Rng {
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }
}
