//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`any`], [`ProptestConfig`],
//! and the `proptest!` / `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` times with independently sampled inputs
//! drawn from a deterministic per-test RNG (seeded from the test name and
//! case index), so failures are reproducible run-to-run. There is no
//! shrinking — a failing case panics with the sampled values in the
//! assertion message instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count to actually run: the `PROPTEST_CASES` environment
    /// variable overrides the configured count (exactly like real proptest),
    /// so CI can crank differential suites to hundreds of cases without
    /// touching the source.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Deterministic per-(test, case) RNG used by the `proptest!` macro.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut hasher);
    case.hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish())
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from generated values.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, u8, u16, u32);

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing vectors of elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs each contained `#[test] fn name(pat in strategy, ...) { body }` over
/// `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.effective_cases() {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 5usize..=6), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            let _ = flag;
        }

        #[test]
        fn vec_and_flat_map(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn map_transforms(x in (0i64..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 99);
        }
    }
}
