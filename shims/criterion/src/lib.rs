//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! measurement loop: warm-up for `warm_up_time`, then timed iterations until
//! `measurement_time` elapses (at least `sample_size` iterations when they
//! fit), reporting mean/min per iteration. No statistics engine, no HTML
//! reports; results print to stdout, which is what CI and the experiment
//! harness consume.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Pin a value to prevent the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id that is only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a GroupConfig,
    /// Measured samples (per-iteration durations), filled by `iter`.
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Runs the closure repeatedly, measuring each invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
        }
        // Measurement.
        let measure_start = Instant::now();
        let mut iters = 0usize;
        while measure_start.elapsed() < self.config.measurement_time
            || iters < self.config.sample_size.min(10)
        {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct GroupConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: GroupConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Minimum number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Wall-clock budget for measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.config.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(
            &self.name,
            &id.label,
            &bencher.samples,
            self.config.throughput,
        );
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            config: &self.config,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        report(
            &self.name,
            &id.label,
            &bencher.samples,
            self.config.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let mut line = format!(
        "{group}/{label}: mean {:.3} ms, min {:.3} ms ({} iterations)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        samples.len()
    );
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== benchmark group: {name}");
        BenchmarkGroup {
            name,
            config: GroupConfig::default(),
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let config = GroupConfig::default();
        let mut bencher = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report("bench", &id.label, &bencher.samples, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
