//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (data-model-tree based, not visitor based) for the item shapes this
//! workspace uses: structs with named fields and enums whose variants are
//! unit, newtype/tuple, or struct-like. Generics and `#[serde(...)]`
//! attributes are not supported — the workspace does not use them.
//!
//! The implementation deliberately avoids `syn`/`quote` (unavailable
//! offline): the item is parsed with a small token-tree walker and the impl
//! is emitted by string construction + `TokenStream::from_str`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list: names in declaration order.
type Fields = Vec<String>;

enum Variant {
    Unit(String),
    /// Name + number of unnamed fields.
    Tuple(String, usize),
    Struct(String, Fields),
}

enum Item {
    Struct(String, Fields),
    Enum(String, Vec<Variant>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct(name, fields) => serialize_struct(name, fields),
        Item::Enum(name, variants) => serialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct(name, fields) => deserialize_struct(name, fields),
        Item::Enum(name, variants) => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!("(\"{f}\".to_string(), ::serde::Serialize::serialize_content(&self.{f})),")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize_content(&self) -> ::serde::Content {{\n\
                ::serde::Content::Map(vec![{entries}])\n\
            }}\n\
        }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(__entries, \"{f}\", \"{name}\")?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize_content(__c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                let __entries = __c.as_map()\n\
                    .ok_or_else(|| ::serde::Error::expected(\"map\", __c.kind()))?;\n\
                Ok({name} {{ {inits} }})\n\
            }}\n\
        }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| match v {
            Variant::Unit(vn) => {
                format!("{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),")
            }
            Variant::Tuple(vn, 1) => format!(
                "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                 ::serde::Serialize::serialize_content(__f0))]),"
            ),
            Variant::Tuple(vn, n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: String = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize_content({b}),"))
                    .collect();
                format!(
                    "{name}::{vn}({}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                     ::serde::Content::Seq(vec![{items}]))]),",
                    binders.join(", ")
                )
            }
            Variant::Struct(vn, fields) => {
                let binders = fields.join(", ");
                let entries: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{f}\".to_string(), ::serde::Serialize::serialize_content({f})),"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vn} {{ {binders} }} => ::serde::Content::Map(vec![(\
                     \"{vn}\".to_string(), ::serde::Content::Map(vec![{entries}]))]),"
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize_content(&self) -> ::serde::Content {{\n\
                match self {{ {arms} }}\n\
            }}\n\
        }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter_map(|v| match v {
            Variant::Unit(vn) => Some(format!("\"{vn}\" => Ok({name}::{vn}),")),
            _ => None,
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| match v {
            Variant::Unit(_) => None,
            Variant::Tuple(vn, 1) => Some(format!(
                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize_content(__inner)?)),"
            )),
            Variant::Tuple(vn, n) => {
                let fields: String = (0..*n)
                    .map(|i| {
                        format!("::serde::Deserialize::deserialize_content(&__items[{i}])?,")
                    })
                    .collect();
                Some(format!(
                    "\"{vn}\" => {{\n\
                        let __items = __inner.as_seq()\n\
                            .ok_or_else(|| ::serde::Error::expected(\"sequence\", __inner.kind()))?;\n\
                        if __items.len() != {n} {{\n\
                            return Err(::serde::Error::custom(format!(\n\
                                \"variant {name}::{vn} expects {n} fields, got {{}}\", __items.len())));\n\
                        }}\n\
                        Ok({name}::{vn}({fields}))\n\
                    }}"
                ))
            }
            Variant::Struct(vn, fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::field(__fields, \"{f}\", \"{name}::{vn}\")?,")
                    })
                    .collect();
                Some(format!(
                    "\"{vn}\" => {{\n\
                        let __fields = __inner.as_map()\n\
                            .ok_or_else(|| ::serde::Error::expected(\"map\", __inner.kind()))?;\n\
                        Ok({name}::{vn} {{ {inits} }})\n\
                    }}"
                ))
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize_content(__c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                match __c {{\n\
                    ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                        {unit_arms}\n\
                        __other => Err(::serde::Error::custom(format!(\n\
                            \"unknown unit variant `{{__other}}` for {name}\"))),\n\
                    }},\n\
                    ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                        let (__tag, __inner) = &__entries[0];\n\
                        match __tag.as_str() {{\n\
                            {tagged_arms}\n\
                            __other => Err(::serde::Error::custom(format!(\n\
                                \"unknown variant `{{__other}}` for {name}\"))),\n\
                        }}\n\
                    }},\n\
                    __other => Err(::serde::Error::expected(\"enum representation\", __other.kind())),\n\
                }}\n\
            }}\n\
        }}"
    )
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    skip_attrs_and_vis(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive shim: `{name}` must have a braced body, found {other:?}"),
    };
    match keyword.as_str() {
        "struct" => Item::Struct(name, parse_named_fields(body)),
        "enum" => Item::Enum(name, parse_variants(body)),
        kw => panic!("serde_derive shim: unsupported item kind `{kw}`"),
    }
}

/// Parses `vis? name: Type, ...` returning the field names.
fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        skip_type_until_comma(&tokens, &mut pos);
        fields.push(name);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            None => variants.push(Variant::Unit(name)),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                pos += 1;
                variants.push(Variant::Unit(name));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_types(g.stream());
                pos += 1;
                expect_comma_or_end(&tokens, &mut pos);
                variants.push(Variant::Tuple(name, arity));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                expect_comma_or_end(&tokens, &mut pos);
                variants.push(Variant::Struct(name, fields));
            }
            // Discriminant (`Variant = 3`) or anything else: unsupported.
            other => {
                panic!("serde_derive shim: unsupported token after variant `{name}`: {other:?}")
            }
        }
    }
    variants
}

/// Counts comma-separated types at angle-bracket depth zero.
fn count_top_level_types(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_any = false;
                continue;
            }
            _ => {}
        }
        saw_any = true;
    }
    if saw_any {
        count += 1;
    }
    count
}

fn skip_type_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

/// Skips `#[...]` attributes (including doc comments) and `pub` / `pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

fn expect_comma_or_end(tokens: &[TokenTree], pos: &mut usize) {
    match tokens.get(*pos) {
        None => {}
        Some(TokenTree::Punct(p)) if p.as_char() == ',' => *pos += 1,
        other => panic!("serde_derive shim: expected `,`, found {other:?}"),
    }
}
