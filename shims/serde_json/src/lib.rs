//! Offline stand-in for `serde_json`: renders and parses the shim `serde`
//! data-model tree ([`serde::Content`]) as JSON.
//!
//! Supports the workspace's API surface: [`to_string`], [`to_string_pretty`],
//! [`from_str`]. The encoding mirrors real serde_json: objects for maps and
//! structs, externally tagged enums, `null` for `None` and non-finite floats.
//! Unknown object keys are ignored by deserialization (see the shim `serde`
//! crate), which is what gives transfer packages forward compatibility.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON error (serialization or parse).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::U128(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's shortest-roundtrip Display for f64.
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Content::Bool(true)),
            Some(b'f') => self.parse_literal("false", Content::Bool(false)),
            Some(b'n') => self.parse_literal("null", Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid \\u escape {code:x}")))?,
                            );
                        }
                        c => return Err(Error(format!("invalid escape `\\{}`", c as char))),
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".to_string()))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<u128>() {
                return Ok(Content::U128(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}
