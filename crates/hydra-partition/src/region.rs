//! HYDRA's region partitioning.
//!
//! Given the constraint boxes that the workload induces over a relation's
//! attribute space, two points are *equivalent* if they lie in exactly the
//! same subset of constraint boxes; the equivalence classes are the
//! **regions**.  Every region becomes one LP variable, which is the minimum
//! possible number of variables for an exact encoding (any two equivalent
//! points are interchangeable in every constraint).
//!
//! ## Algorithm
//!
//! The partitioner works axis by axis ("axis sweep") instead of maintaining an
//! explicit geometric decomposition, so its cost is proportional to the number
//! of *regions*, never to the number of geometric fragments:
//!
//! 1. On every axis, the constraint interval endpoints cut the domain into
//!    elementary intervals; each elementary interval gets the mask of
//!    constraints whose projection onto that axis covers it.
//! 2. A cell's signature is the intersection of its per-axis masks.  Distinct
//!    signatures are accumulated one axis at a time, merging equal partial
//!    signatures as we go, so the working-set size is bounded by the number of
//!    distinct signatures — the region count — rather than by the grid size.
//! 3. Each region keeps its total point count (volume) and a bounded sample of
//!    representative cells, which is all that deterministic alignment needs to
//!    place concrete attribute values inside the region.
//!
//! Constraint unions are interpreted as the product of their per-axis
//! projections (which is exactly how the summary layer constructs them: a
//! foreign-key condition contributes a set of primary-key intervals on one
//! axis, crossed with the other axes' intervals).

use crate::error::{PartitionError, PartitionResult};
use crate::interval::Interval;
use crate::nbox::NBox;
use crate::signature::Signature;
use crate::space::AttributeSpace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default bound on the number of regions (LP variables).  Workloads in the
/// paper's class stay far below this; the bound exists to fail fast on
/// pathological inputs instead of formulating an unsolvable LP.
pub const DEFAULT_MAX_REGIONS: usize = 200_000;

/// How many representative cells each region retains for value placement.
const CELLS_PER_REGION: usize = 8;

/// One region: a maximal set of points sharing a constraint signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// The set of constraints that cover this region.
    pub signature: Signature,
    /// A bounded sample of disjoint cells lying inside the region, used to
    /// pick concrete attribute values (the region may contain more points
    /// than these cells cover; see [`Region::volume`]).
    pub pieces: Vec<NBox>,
    /// Total number of integer points in the region (saturating).
    pub volume: u128,
}

impl Region {
    /// A deterministic representative point of the region (the lower corner
    /// of its first retained cell).
    pub fn representative_point(&self) -> Vec<i64> {
        self.pieces
            .first()
            .and_then(NBox::lower_corner)
            .unwrap_or_default()
    }

    /// Total number of points covered by the retained representative cells.
    pub fn sampled_volume(&self) -> u128 {
        self.pieces
            .iter()
            .fold(0u128, |acc, p| acc.saturating_add(p.volume()))
    }

    /// The `idx`-th point of the region in a fixed enumeration order over the
    /// retained cells (cells in order; within a cell, row-major over the
    /// axes).  Indices wrap around modulo the retained-cell volume, so any
    /// index yields a valid point for non-empty regions.
    pub fn point_at(&self, idx: u128) -> Option<Vec<i64>> {
        let total = self.sampled_volume();
        if total == 0 {
            return None;
        }
        let mut k = idx % total;
        for piece in &self.pieces {
            let v = piece.volume();
            if k < v {
                // Decode k into coordinates (row-major, last axis fastest).
                let mut coords = vec![0i64; piece.dims()];
                let mut rem = k;
                for axis in (0..piece.dims()).rev() {
                    let len = piece.interval(axis).len() as u128;
                    let offset = (rem % len) as i64;
                    coords[axis] = piece.interval(axis).lo + offset;
                    rem /= len;
                }
                return Some(coords);
            }
            k -= v;
        }
        None
    }

    /// True if the point lies inside one of the retained representative cells
    /// (a sufficient but not necessary membership test; use
    /// [`RegionPartition::region_containing`] for an exact lookup).
    pub fn contains_point(&self, point: &[i64]) -> bool {
        self.pieces.iter().any(|p| p.contains_point(point))
    }
}

/// The result of region partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionPartition {
    space: AttributeSpace,
    regions: Vec<Region>,
    constraints: Vec<Vec<NBox>>,
}

impl RegionPartition {
    /// The partitioned attribute space.
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }

    /// The regions, in canonical (signature-sorted) order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of LP variables this encoding needs (= number of regions).
    pub fn num_variables(&self) -> usize {
        self.regions.len()
    }

    /// Number of constraints that were partitioned against.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraint box unions this partition was built against, in the
    /// order the signatures index them (used by incremental refinement to
    /// detect unchanged boxes and moved predicate boundaries).
    pub fn constraint_unions(&self) -> &[Vec<NBox>] {
        &self.constraints
    }

    /// Indices of the regions covered by the given constraint.
    pub fn regions_in_constraint(&self, constraint: usize) -> Vec<usize> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.signature.contains(constraint))
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the region containing a point (exact: the point's signature is
    /// computed against the stored constraints).  `None` if the point lies
    /// outside the attribute space.
    pub fn region_containing(&self, point: &[i64]) -> Option<usize> {
        if point.len() != self.space.dims() {
            return None;
        }
        for (axis, coord) in point.iter().enumerate() {
            if !self.space.domain(axis).contains(*coord) {
                return None;
            }
        }
        let mut signature = Signature::empty();
        for (ci, boxes) in self.constraints.iter().enumerate() {
            let covered = (0..self.space.dims())
                .all(|axis| boxes.iter().any(|b| b.interval(axis).contains(point[axis])));
            if covered && !boxes.is_empty() {
                signature.insert(ci);
            }
        }
        self.regions.iter().position(|r| r.signature == signature)
    }

    /// Total volume across all regions (equals the space volume; saturating
    /// for astronomically large spaces).
    pub fn total_volume(&self) -> u128 {
        self.regions
            .iter()
            .fold(0u128, |acc, r| acc.saturating_add(r.volume))
    }

    /// Builds a partition whose "regions" are the given *elementary* cells —
    /// cells that never straddle a constraint boundary, such as the cells of a
    /// [`crate::grid::GridPartition`].  This is how the DataSynth-style grid
    /// baseline plugs into the same LP/alignment machinery as HYDRA's region
    /// partitioning: one LP variable per cell instead of one per signature
    /// class.
    ///
    /// Each cell's signature is computed with the same
    /// product-of-per-axis-projections interpretation of constraint unions
    /// that [`RegionPartitioner`] uses, evaluated at the cell's lower corner
    /// (any point of an elementary cell gives the same answer).
    pub fn from_elementary_cells(
        space: AttributeSpace,
        constraints: Vec<Vec<NBox>>,
        cells: Vec<NBox>,
    ) -> PartitionResult<RegionPartition> {
        space.validate()?;
        let dims = space.dims();
        for b in cells.iter().chain(constraints.iter().flatten()) {
            if b.dims() != dims {
                return Err(PartitionError::DimensionMismatch {
                    expected: dims,
                    got: b.dims(),
                });
            }
        }
        let regions = cells
            .into_iter()
            .map(|cell| {
                let corner = cell.lower_corner().unwrap_or_default();
                let mut signature = Signature::empty();
                for (ci, boxes) in constraints.iter().enumerate() {
                    if boxes.is_empty() {
                        continue;
                    }
                    let covered = (0..dims).all(|axis| {
                        boxes
                            .iter()
                            .any(|b| b.interval(axis).contains(corner[axis]))
                    });
                    if covered {
                        signature.insert(ci);
                    }
                }
                Region {
                    signature,
                    volume: cell.volume(),
                    pieces: vec![cell],
                }
            })
            .collect();
        Ok(RegionPartition {
            space,
            regions,
            constraints,
        })
    }
}

/// Builder/driver for region partitioning.
#[derive(Debug, Clone)]
pub struct RegionPartitioner {
    space: AttributeSpace,
    /// Each constraint is a union of boxes over the space, interpreted as the
    /// product of its per-axis projections.
    constraints: Vec<Vec<NBox>>,
    max_regions: usize,
}

impl RegionPartitioner {
    /// Creates a partitioner over the given attribute space.
    pub fn new(space: AttributeSpace) -> Self {
        RegionPartitioner {
            space,
            constraints: Vec::new(),
            max_regions: DEFAULT_MAX_REGIONS,
        }
    }

    /// Overrides the region budget.
    pub fn with_max_regions(mut self, max_regions: usize) -> Self {
        self.max_regions = max_regions;
        self
    }

    /// Adds a constraint consisting of a single box.
    pub fn add_constraint_box(mut self, b: NBox) -> Self {
        self.constraints.push(vec![b]);
        self
    }

    /// Adds a constraint that is a union of (axis-decomposable) boxes.
    pub fn add_constraint_union(mut self, boxes: Vec<NBox>) -> Self {
        self.constraints.push(boxes);
        self
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Deconstructs the partitioner into its space, constraint unions and
    /// region budget (used by [`RegionPartitioner::refine`], which needs to
    /// compare them against a previous partition before sweeping).
    pub(crate) fn parts(self) -> (AttributeSpace, Vec<Vec<NBox>>, usize) {
        (self.space, self.constraints, self.max_regions)
    }

    /// Runs the partitioning.
    pub fn partition(self) -> PartitionResult<RegionPartition> {
        self.space.validate()?;
        let dims = self.space.dims();
        for boxes in &self.constraints {
            for b in boxes {
                if b.dims() != dims {
                    return Err(PartitionError::DimensionMismatch {
                        expected: dims,
                        got: b.dims(),
                    });
                }
            }
        }
        let k = self.constraints.len();

        /// Partial state of the axis sweep: the signature so far, the total
        /// point count, and a bounded sample of cells (interval prefixes).
        struct Partial {
            volume: u128,
            cells: Vec<Vec<Interval>>,
        }

        // The initial partial covers the whole space with "all constraints
        // still possible".
        let all = Signature::from_indices(&(0..k).collect::<Vec<_>>());
        let mut partials: BTreeMap<Signature, Partial> = BTreeMap::new();
        partials.insert(
            all,
            Partial {
                volume: 1,
                cells: vec![Vec::new()],
            },
        );

        for axis in 0..dims {
            let domain = self.space.domain(axis);
            // Elementary intervals of this axis and, for each, the mask of
            // constraints whose projection covers it.
            let mut cuts = vec![domain.lo, domain.hi];
            for boxes in &self.constraints {
                for b in boxes {
                    let iv = b.interval(axis).intersect(&domain);
                    if iv.is_empty() {
                        continue;
                    }
                    if iv.lo > domain.lo && iv.lo < domain.hi {
                        cuts.push(iv.lo);
                    }
                    if iv.hi > domain.lo && iv.hi < domain.hi {
                        cuts.push(iv.hi);
                    }
                }
            }
            cuts.sort_unstable();
            cuts.dedup();
            let elementary: Vec<(Interval, Signature)> = cuts
                .windows(2)
                .map(|w| {
                    let e = Interval::new(w[0], w[1]);
                    let mut mask = Signature::empty();
                    for (ci, boxes) in self.constraints.iter().enumerate() {
                        let covers = boxes
                            .iter()
                            .any(|b| b.interval(axis).intersect(&domain).contains_interval(&e));
                        if covers {
                            mask.insert(ci);
                        }
                    }
                    (e, mask)
                })
                .collect();

            let mut next: BTreeMap<Signature, Partial> = BTreeMap::new();
            for (mask, partial) in &partials {
                for (e, e_mask) in &elementary {
                    let key = mask.intersect(e_mask);
                    let added_volume = partial.volume.saturating_mul(e.len() as u128);
                    let entry = next.entry(key).or_insert_with(|| Partial {
                        volume: 0,
                        cells: Vec::new(),
                    });
                    entry.volume = entry.volume.saturating_add(added_volume);
                    if entry.cells.len() < CELLS_PER_REGION {
                        for prefix in &partial.cells {
                            if entry.cells.len() >= CELLS_PER_REGION {
                                break;
                            }
                            let mut cell = prefix.clone();
                            cell.push(*e);
                            entry.cells.push(cell);
                        }
                    }
                }
            }
            if next.len() > self.max_regions {
                return Err(PartitionError::TooManyRegions {
                    limit: self.max_regions,
                });
            }
            partials = next;
        }

        let regions: Vec<Region> = partials
            .into_iter()
            .map(|(signature, partial)| {
                let mut pieces: Vec<NBox> = partial.cells.into_iter().map(NBox::new).collect();
                pieces.sort_by_key(|p| p.lower_corner());
                Region {
                    signature,
                    pieces,
                    volume: partial.volume,
                }
            })
            .collect();

        Ok(RegionPartition {
            space: self.space,
            regions,
            constraints: self.constraints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn space_1d() -> AttributeSpace {
        AttributeSpace::new(vec![("a".to_string(), Interval::new(0, 100))])
    }

    fn space_2d() -> AttributeSpace {
        AttributeSpace::new(vec![
            ("a".to_string(), Interval::new(0, 100)),
            ("b".to_string(), Interval::new(0, 10)),
        ])
    }

    #[test]
    fn no_constraints_single_region() {
        let p = RegionPartitioner::new(space_1d()).partition().unwrap();
        assert_eq!(p.num_variables(), 1);
        assert_eq!(p.regions()[0].volume, 100);
        assert!(p.regions()[0].signature.is_empty());
        assert_eq!(p.total_volume(), 100);
    }

    #[test]
    fn overlapping_1d_constraints() {
        let p = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .add_constraint_box(NBox::new(vec![Interval::new(40, 80)]))
            .partition()
            .unwrap();
        // Signatures: {} -> [0,20)+[80,100), {0} -> [20,40), {0,1} -> [40,60), {1} -> [60,80).
        assert_eq!(p.num_variables(), 4);
        assert_eq!(p.total_volume(), 100);
        let both = p
            .regions()
            .iter()
            .find(|r| r.signature.count() == 2)
            .unwrap();
        assert_eq!(both.volume, 20);
        let none = p.regions().iter().find(|r| r.signature.is_empty()).unwrap();
        assert_eq!(none.volume, 40);
        assert_eq!(none.pieces.len(), 2);
    }

    #[test]
    fn nested_constraints() {
        let p = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(10, 90)]))
            .add_constraint_box(NBox::new(vec![Interval::new(30, 50)]))
            .partition()
            .unwrap();
        // {} , {0}, {0,1} — the inner box is fully inside the outer one.
        assert_eq!(p.num_variables(), 3);
        let inner = p
            .regions()
            .iter()
            .find(|r| r.signature.count() == 2)
            .unwrap();
        assert_eq!(inner.volume, 20);
    }

    #[test]
    fn identical_constraints_share_regions() {
        let b = NBox::new(vec![Interval::new(20, 60)]);
        let p = RegionPartitioner::new(space_1d())
            .add_constraint_box(b.clone())
            .add_constraint_box(b)
            .partition()
            .unwrap();
        // Only {} and {0,1}: identical boxes never split each other.
        assert_eq!(p.num_variables(), 2);
    }

    #[test]
    fn union_constraint() {
        let p = RegionPartitioner::new(space_1d())
            .add_constraint_union(vec![
                NBox::new(vec![Interval::new(10, 20)]),
                NBox::new(vec![Interval::new(50, 60)]),
            ])
            .partition()
            .unwrap();
        assert_eq!(p.num_variables(), 2);
        let inside = p
            .regions()
            .iter()
            .find(|r| r.signature.contains(0))
            .unwrap();
        assert_eq!(inside.volume, 20);
        assert_eq!(inside.pieces.len(), 2);
    }

    #[test]
    fn two_dimensional_cross() {
        // Constraint 0 restricts axis a, constraint 1 restricts axis b; the
        // cross produces 4 regions.
        let space = space_2d();
        let c0 = space.box_from_intervals(vec![("a", Interval::new(20, 60))]);
        let c1 = space.box_from_intervals(vec![("b", Interval::new(0, 5))]);
        let p = RegionPartitioner::new(space)
            .add_constraint_box(c0)
            .add_constraint_box(c1)
            .partition()
            .unwrap();
        assert_eq!(p.num_variables(), 4);
        assert_eq!(p.total_volume(), 1000);
        // Region with both constraints: 40 x 5 = 200 points.
        let both = p
            .regions()
            .iter()
            .find(|r| r.signature.count() == 2)
            .unwrap();
        assert_eq!(both.volume, 200);
    }

    #[test]
    fn regions_in_constraint_lookup() {
        let p = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .add_constraint_box(NBox::new(vec![Interval::new(40, 80)]))
            .partition()
            .unwrap();
        let in0 = p.regions_in_constraint(0);
        let vol0: u128 = in0.iter().map(|&i| p.regions()[i].volume).sum();
        assert_eq!(vol0, 40);
        let in1 = p.regions_in_constraint(1);
        let vol1: u128 = in1.iter().map(|&i| p.regions()[i].volume).sum();
        assert_eq!(vol1, 40);
    }

    #[test]
    fn region_point_enumeration() {
        let p = RegionPartitioner::new(space_2d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 22), Interval::new(3, 5)]))
            .partition()
            .unwrap();
        let region = p
            .regions()
            .iter()
            .find(|r| r.signature.contains(0))
            .unwrap();
        assert_eq!(region.volume, 4);
        let pts: Vec<Vec<i64>> = (0..4).map(|i| region.point_at(i).unwrap()).collect();
        // All distinct, all inside the region.
        for (i, p1) in pts.iter().enumerate() {
            assert!(region.contains_point(p1));
            for p2 in &pts[i + 1..] {
                assert_ne!(p1, p2);
            }
        }
        // Wrap-around yields a valid point again.
        assert_eq!(region.point_at(4), region.point_at(0));
        assert_eq!(region.representative_point(), vec![20, 3]);
    }

    #[test]
    fn region_containing_point() {
        let p = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .partition()
            .unwrap();
        let inside = p.region_containing(&[30]).unwrap();
        assert!(p.regions()[inside].signature.contains(0));
        let outside = p.region_containing(&[70]).unwrap();
        assert!(p.regions()[outside].signature.is_empty());
        assert!(p.region_containing(&[1000]).is_none());
        assert!(p.region_containing(&[1, 2]).is_none());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let err = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(0, 1), Interval::new(0, 1)]))
            .partition()
            .unwrap_err();
        assert!(matches!(err, PartitionError::DimensionMismatch { .. }));
    }

    #[test]
    fn region_budget_enforced() {
        let mut partitioner = RegionPartitioner::new(space_1d()).with_max_regions(4);
        for i in 0..10 {
            partitioner =
                partitioner.add_constraint_box(NBox::new(vec![Interval::new(i * 10, i * 10 + 5)]));
        }
        assert!(matches!(
            partitioner.partition(),
            Err(PartitionError::TooManyRegions { .. })
        ));
    }

    #[test]
    fn empty_axis_rejected() {
        let space = AttributeSpace::new(vec![("a".to_string(), Interval::new(5, 5))]);
        assert!(matches!(
            RegionPartitioner::new(space).partition(),
            Err(PartitionError::EmptyAxis(_))
        ));
    }

    #[test]
    fn many_disjoint_constraints_scale_linearly() {
        // 50 disjoint 1-D ranges → 51 regions (50 inside + 1 outside).
        let mut partitioner = RegionPartitioner::new(AttributeSpace::new(vec![(
            "a".to_string(),
            Interval::new(0, 1000),
        )]));
        for i in 0..50 {
            partitioner =
                partitioner.add_constraint_box(NBox::new(vec![Interval::new(i * 20, i * 20 + 10)]));
        }
        let p = partitioner.partition().unwrap();
        assert_eq!(p.num_variables(), 51);
        assert_eq!(p.total_volume(), 1000);
    }

    #[test]
    fn many_constraints_across_many_axes_stay_output_sensitive() {
        // A workload-shaped stress case: 6 axes, 120 constraints drawn from a
        // small pool of per-axis predicates (the TPC-DS template pattern).
        // The piece-splitting approach fragments combinatorially here; the
        // axis sweep must stay proportional to the true region count.
        let dims = 6usize;
        let space = AttributeSpace::new(
            (0..dims)
                .map(|i| (format!("x{i}"), Interval::new(0, 10_000)))
                .collect(),
        );
        let pool: Vec<Interval> = vec![
            Interval::new(0, 2_500),
            Interval::new(2_000, 6_000),
            Interval::new(7_000, 9_000),
        ];
        let mut partitioner = RegionPartitioner::new(space.clone());
        for c in 0..120 {
            // Each constraint touches two axes with pooled predicates.
            let a1 = c % dims;
            let a2 = (c / dims) % dims;
            let mut intervals = vec![space.domain(0); dims];
            for (axis, d) in intervals.iter_mut().enumerate() {
                *d = space.domain(axis);
            }
            intervals[a1] = pool[c % pool.len()];
            intervals[a2] = pool[(c / 3) % pool.len()];
            partitioner = partitioner.add_constraint_box(NBox::new(intervals));
        }
        let p = partitioner.partition().unwrap();
        // Each axis has at most 3 pooled ranges → at most 6-7 per-axis masks;
        // the region count stays far below the grid size.
        assert!(p.num_variables() < 150_000, "{} regions", p.num_variables());
        assert_eq!(p.total_volume(), space.volume());
    }
}
