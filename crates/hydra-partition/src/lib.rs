//! # hydra-partition
//!
//! The combinatorial core of HYDRA: partitioning a relation's attribute space
//! into the *regions* induced by the workload's predicate boxes.
//!
//! Every volumetric constraint on a relation is (after preprocessing) an
//! axis-aligned box — or a union of disjoint boxes, once foreign-key
//! conditions are projected onto the FK axis — over the relation's normalized
//! attribute space.  The LP that HYDRA solves per relation has **one variable
//! per region**, where a region is a maximal set of points that lie in exactly
//! the same subset of constraint boxes.  Two points with the same membership
//! signature are interchangeable in every constraint, so this encoding has the
//! minimum possible number of variables; the paper credits this
//! *region-partitioning* with the orders-of-magnitude reduction in LP size
//! over DataSynth's *grid-partitioning*, which instead splits every axis at
//! every predicate boundary and takes the cross product of the per-axis
//! elementary intervals.
//!
//! This crate implements both:
//!
//! * [`region::RegionPartitioner`] — the HYDRA encoding (used by the summary
//!   generator), which also retains the geometry of each region so that tuples
//!   can later be generated inside it;
//! * [`grid::GridPartition`] — the DataSynth baseline, used by the LP
//!   complexity experiment (E3).
//!
//! ## Example
//!
//! ```
//! use hydra_partition::interval::Interval;
//! use hydra_partition::nbox::NBox;
//! use hydra_partition::space::AttributeSpace;
//! use hydra_partition::region::RegionPartitioner;
//!
//! // A 1-D attribute with domain [0, 100) and two overlapping predicates.
//! let space = AttributeSpace::new(vec![("a".to_string(), Interval::new(0, 100))]);
//! let c1 = NBox::new(vec![Interval::new(20, 60)]);
//! let c2 = NBox::new(vec![Interval::new(40, 80)]);
//! let partition = RegionPartitioner::new(space)
//!     .add_constraint_box(c1)
//!     .add_constraint_box(c2)
//!     .partition()
//!     .unwrap();
//! // Regions: [0,20)∪[80,100) (no constraint), [20,40) (c1), [40,60) (both), [60,80) (c2).
//! assert_eq!(partition.regions().len(), 4);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod grid;
pub mod interval;
pub mod nbox;
pub mod refine;
pub mod region;
pub mod signature;
pub mod space;

pub use error::{PartitionError, PartitionResult};
pub use grid::GridPartition;
pub use interval::Interval;
pub use nbox::NBox;
pub use refine::PartitionRefinement;
pub use region::{Region, RegionPartition, RegionPartitioner};
pub use signature::Signature;
pub use space::AttributeSpace;
