//! The attribute space of one relation.
//!
//! An [`AttributeSpace`] is an ordered list of named axes, one per column of
//! the relation that the workload references (filter columns plus FK
//! "reference" axes), each with its normalized domain interval.

use crate::error::{PartitionError, PartitionResult};
use crate::interval::Interval;
use crate::nbox::NBox;
use serde::{Deserialize, Serialize};

/// An ordered set of named axes with their domains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeSpace {
    axes: Vec<(String, Interval)>,
}

impl AttributeSpace {
    /// Creates a space from `(axis name, domain interval)` pairs.
    pub fn new(axes: Vec<(String, Interval)>) -> Self {
        AttributeSpace { axes }
    }

    /// Number of axes.
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// Axis names in order.
    pub fn axis_names(&self) -> Vec<&str> {
        self.axes.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Index of a named axis.
    pub fn axis_index(&self, name: &str) -> Option<usize> {
        self.axes.iter().position(|(n, _)| n == name)
    }

    /// Domain interval of an axis.
    pub fn domain(&self, axis: usize) -> Interval {
        self.axes[axis].1
    }

    /// The full-domain box of the space.
    pub fn full_box(&self) -> NBox {
        NBox::new(self.axes.iter().map(|(_, d)| *d).collect())
    }

    /// Validates that every axis has a non-empty domain.
    pub fn validate(&self) -> PartitionResult<()> {
        for (name, domain) in &self.axes {
            if domain.is_empty() {
                return Err(PartitionError::EmptyAxis(name.clone()));
            }
        }
        Ok(())
    }

    /// Builds a box over this space from `(axis name, interval)` pairs;
    /// unmentioned axes span their full domain.  Unknown axis names are
    /// ignored (they do not constrain this relation).
    pub fn box_from_intervals<'a>(
        &self,
        intervals: impl IntoIterator<Item = (&'a str, Interval)>,
    ) -> NBox {
        let mut dims: Vec<Interval> = self.axes.iter().map(|(_, d)| *d).collect();
        for (name, interval) in intervals {
            if let Some(idx) = self.axis_index(name) {
                dims[idx] = dims[idx].intersect(&interval);
            }
        }
        NBox::new(dims)
    }

    /// Total number of points in the space.
    pub fn volume(&self) -> u128 {
        self.full_box().volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AttributeSpace {
        AttributeSpace::new(vec![
            ("a".to_string(), Interval::new(0, 100)),
            ("b".to_string(), Interval::new(0, 10)),
        ])
    }

    #[test]
    fn axis_lookup() {
        let s = space();
        assert_eq!(s.dims(), 2);
        assert_eq!(s.axis_names(), vec!["a", "b"]);
        assert_eq!(s.axis_index("b"), Some(1));
        assert_eq!(s.axis_index("zzz"), None);
        assert_eq!(s.domain(0), Interval::new(0, 100));
        assert_eq!(s.volume(), 1000);
    }

    #[test]
    fn full_box_and_validation() {
        let s = space();
        assert_eq!(s.full_box().volume(), 1000);
        assert!(s.validate().is_ok());
        let bad = AttributeSpace::new(vec![("x".to_string(), Interval::new(5, 5))]);
        assert!(matches!(bad.validate(), Err(PartitionError::EmptyAxis(_))));
    }

    #[test]
    fn box_from_intervals() {
        let s = space();
        let b = s.box_from_intervals(vec![("a", Interval::new(20, 60))]);
        assert_eq!(b.interval(0), Interval::new(20, 60));
        assert_eq!(b.interval(1), Interval::new(0, 10));
        // Unknown axes ignored; intervals clamped to the domain.
        let b = s.box_from_intervals(vec![
            ("zzz", Interval::new(0, 1)),
            ("b", Interval::new(-5, 3)),
        ]);
        assert_eq!(b.interval(0), Interval::new(0, 100));
        assert_eq!(b.interval(1), Interval::new(0, 3));
    }
}
