//! Constraint-membership signatures.
//!
//! A region of the attribute space is identified by *which constraints cover
//! it*.  The [`Signature`] is that membership set, stored as a growable
//! bitset so it can serve as a hash / ordering key when regions are grouped.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of constraint indices, implemented as a bitset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Signature {
    words: Vec<u64>,
}

impl Signature {
    /// The empty signature (covered by no constraint).
    pub fn empty() -> Self {
        Signature::default()
    }

    /// Builds a signature from a list of constraint indices.
    pub fn from_indices(indices: &[usize]) -> Self {
        let mut s = Signature::empty();
        for &i in indices {
            s.insert(i);
        }
        s
    }

    /// Adds a constraint index to the signature.
    pub fn insert(&mut self, index: usize) {
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (index % 64);
        self.normalize();
    }

    /// Returns a copy with the given index added.
    pub fn with(&self, index: usize) -> Self {
        let mut s = self.clone();
        s.insert(index);
        s
    }

    /// True if the signature contains the constraint index.
    pub fn contains(&self, index: usize) -> bool {
        let word = index / 64;
        self.words
            .get(word)
            .map(|w| w & (1u64 << (index % 64)) != 0)
            .unwrap_or(false)
    }

    /// Number of constraints in the signature.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no constraint covers this signature.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Set intersection of two signatures.
    pub fn intersect(&self, other: &Signature) -> Signature {
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| a & b)
            .collect();
        let mut s = Signature { words };
        s.normalize();
        s
    }

    /// The contained constraint indices, ascending.
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        for (wi, w) in self.words.iter().enumerate() {
            let mut bits = *w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Drops trailing zero words so equal sets compare equal regardless of
    /// how they were built.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}}}",
            self.indices()
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insert_contains_count() {
        let mut s = Signature::empty();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(70);
        s.insert(3);
        assert!(s.contains(3));
        assert!(s.contains(70));
        assert!(!s.contains(4));
        assert!(!s.contains(1000));
        assert_eq!(s.count(), 2);
        assert_eq!(s.indices(), vec![3, 70]);
        assert!(!s.is_empty());
        assert_eq!(s.to_string(), "{3,70}");
    }

    #[test]
    fn equality_independent_of_construction_order() {
        let a = Signature::from_indices(&[1, 65, 2]);
        let b = Signature::from_indices(&[65, 2, 1]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn with_does_not_mutate_original() {
        let a = Signature::from_indices(&[1]);
        let b = a.with(2);
        assert!(!a.contains(2));
        assert!(b.contains(1) && b.contains(2));
    }

    #[test]
    fn empty_signatures_are_equal_even_after_inserts_beyond_capacity() {
        // A signature that had a high bit checked but never set stays equal to empty.
        let a = Signature::empty();
        let b = Signature::from_indices(&[]);
        assert_eq!(a, b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.indices(), Vec::<usize>::new());
    }

    #[test]
    fn ordering_is_consistent() {
        let a = Signature::from_indices(&[0]);
        let b = Signature::from_indices(&[1]);
        assert!(a < b);
    }

    #[test]
    fn intersection() {
        let a = Signature::from_indices(&[0, 1, 70]);
        let b = Signature::from_indices(&[1, 70, 90]);
        assert_eq!(a.intersect(&b), Signature::from_indices(&[1, 70]));
        assert_eq!(a.intersect(&Signature::empty()), Signature::empty());
        // Intersection normalizes away trailing zero words.
        let c = Signature::from_indices(&[200]);
        assert_eq!(a.intersect(&c), Signature::empty());
        assert!(a.intersect(&c).is_empty());
    }
}
