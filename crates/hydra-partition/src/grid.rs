//! DataSynth-style grid partitioning (the baseline HYDRA improves on).
//!
//! Grid partitioning splits every axis at every predicate boundary occurring
//! anywhere in the workload and takes the cross product of the per-axis
//! elementary intervals.  Every grid cell becomes one LP variable, so the
//! variable count is the *product* of the per-axis boundary counts — compared
//! to region partitioning, whose variable count is the number of distinct
//! constraint-membership signatures.  Experiment E3 reproduces the paper's
//! orders-of-magnitude gap between the two.

use crate::error::{PartitionError, PartitionResult};
use crate::interval::Interval;
use crate::nbox::NBox;
use crate::space::AttributeSpace;
use serde::{Deserialize, Serialize};

/// The grid partition of an attribute space induced by a set of constraint
/// boxes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridPartition {
    space: AttributeSpace,
    /// Per-axis sorted cut points (including the domain bounds).
    boundaries: Vec<Vec<i64>>,
}

impl GridPartition {
    /// Builds the grid induced by the given constraint boxes (each constraint
    /// may be a union of boxes, exactly as for region partitioning).
    pub fn build(
        space: AttributeSpace,
        constraints: &[Vec<NBox>],
    ) -> PartitionResult<GridPartition> {
        space.validate()?;
        let dims = space.dims();
        for boxes in constraints {
            for b in boxes {
                if b.dims() != dims {
                    return Err(PartitionError::DimensionMismatch {
                        expected: dims,
                        got: b.dims(),
                    });
                }
            }
        }
        let mut boundaries: Vec<Vec<i64>> = (0..dims)
            .map(|axis| {
                let d = space.domain(axis);
                vec![d.lo, d.hi]
            })
            .collect();
        for boxes in constraints {
            for b in boxes {
                for (axis, axis_bounds) in boundaries.iter_mut().enumerate() {
                    let domain = space.domain(axis);
                    let iv = b.interval(axis).intersect(&domain);
                    if iv.is_empty() {
                        continue;
                    }
                    // Only boundaries strictly inside the domain create cuts.
                    if iv.lo > domain.lo && iv.lo < domain.hi {
                        axis_bounds.push(iv.lo);
                    }
                    if iv.hi > domain.lo && iv.hi < domain.hi {
                        axis_bounds.push(iv.hi);
                    }
                }
            }
        }
        for axis_bounds in &mut boundaries {
            axis_bounds.sort_unstable();
            axis_bounds.dedup();
        }
        Ok(GridPartition { space, boundaries })
    }

    /// Number of elementary intervals on each axis.
    pub fn intervals_per_axis(&self) -> Vec<usize> {
        self.boundaries
            .iter()
            .map(|b| b.len().saturating_sub(1))
            .collect()
    }

    /// Number of grid cells (= LP variables under grid partitioning).
    pub fn num_cells(&self) -> u128 {
        self.intervals_per_axis()
            .iter()
            .map(|&n| n as u128)
            .product()
    }

    /// Alias of [`GridPartition::num_cells`] mirroring the region API.
    pub fn num_variables(&self) -> u128 {
        self.num_cells()
    }

    /// Enumerates the grid cells as boxes, up to `limit` cells.  Returns
    /// `None` when the grid is larger than the limit (the usual case for the
    /// baseline at scale — precisely the point of experiment E3).
    pub fn cells(&self, limit: usize) -> Option<Vec<NBox>> {
        if self.num_cells() > limit as u128 {
            return None;
        }
        let per_axis: Vec<Vec<Interval>> = self
            .boundaries
            .iter()
            .map(|bounds| {
                bounds
                    .windows(2)
                    .map(|w| Interval::new(w[0], w[1]))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut cells = vec![Vec::<Interval>::new()];
        for axis_intervals in &per_axis {
            let mut next = Vec::with_capacity(cells.len() * axis_intervals.len());
            for prefix in &cells {
                for iv in axis_intervals {
                    let mut cell = prefix.clone();
                    cell.push(*iv);
                    next.push(cell);
                }
            }
            cells = next;
        }
        Some(cells.into_iter().map(NBox::new).collect())
    }

    /// The partitioned space.
    pub fn space(&self) -> &AttributeSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_2d() -> AttributeSpace {
        AttributeSpace::new(vec![
            ("a".to_string(), Interval::new(0, 100)),
            ("b".to_string(), Interval::new(0, 10)),
        ])
    }

    #[test]
    fn no_constraints_single_cell() {
        let g = GridPartition::build(space_2d(), &[]).unwrap();
        assert_eq!(g.num_cells(), 1);
        assert_eq!(g.intervals_per_axis(), vec![1, 1]);
        let cells = g.cells(10).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].volume(), 1000);
    }

    #[test]
    fn grid_is_cross_product_of_boundaries() {
        let space = space_2d();
        let c0 = vec![space.box_from_intervals(vec![("a", Interval::new(20, 60))])];
        let c1 = vec![space.box_from_intervals(vec![("b", Interval::new(0, 5))])];
        let g = GridPartition::build(space, &[c0, c1]).unwrap();
        // Axis a: cuts at 20, 60 → 3 intervals.  Axis b: cut at 5 → 2 intervals.
        assert_eq!(g.intervals_per_axis(), vec![3, 2]);
        assert_eq!(g.num_cells(), 6);
        let cells = g.cells(100).unwrap();
        assert_eq!(cells.len(), 6);
        let total: u128 = cells.iter().map(NBox::volume).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn grid_exceeds_region_count_with_independent_predicates() {
        // d independent axes each cut by k disjoint ranges:
        // grid = (2k+1)^d cells, regions = d*k + 1.
        let d = 3usize;
        let k = 4usize;
        let space = AttributeSpace::new(
            (0..d)
                .map(|i| (format!("x{i}"), Interval::new(0, 1000)))
                .collect(),
        );
        let mut constraints = Vec::new();
        for axis in 0..d {
            for j in 0..k {
                let lo = (j as i64 + 1) * 100;
                let b = space.box_from_intervals(vec![(
                    format!("x{axis}").as_str(),
                    Interval::new(lo, lo + 50),
                )]);
                constraints.push(vec![b]);
            }
        }
        let grid = GridPartition::build(space.clone(), &constraints).unwrap();
        assert_eq!(grid.num_cells(), ((2 * k + 1) as u128).pow(d as u32));

        let mut rp = crate::region::RegionPartitioner::new(space);
        for c in &constraints {
            rp = rp.add_constraint_union(c.clone());
        }
        let regions = rp.partition().unwrap();
        // Region count is far smaller than the grid (this is HYDRA's claim).
        assert!(
            (regions.num_variables() as u128) < grid.num_cells(),
            "regions {} should be < grid {}",
            regions.num_variables(),
            grid.num_cells()
        );
    }

    #[test]
    fn cells_refuses_to_enumerate_large_grids() {
        let space = space_2d();
        let mut constraints = Vec::new();
        for i in 0..40 {
            constraints.push(vec![
                space.box_from_intervals(vec![("a", Interval::new(i, i + 1))])
            ]);
        }
        let g = GridPartition::build(space, &constraints).unwrap();
        assert!(g.num_cells() > 10);
        assert!(g.cells(10).is_none());
    }

    #[test]
    fn boundaries_outside_domain_are_clamped() {
        let space = space_2d();
        let c = vec![vec![
            space.box_from_intervals(vec![("a", Interval::new(-50, 200))])
        ]];
        let g = GridPartition::build(space, &c).unwrap();
        // The constraint spans the whole domain: no internal cuts.
        assert_eq!(g.num_cells(), 1);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let err = GridPartition::build(space_2d(), &[vec![NBox::new(vec![Interval::new(0, 1)])]])
            .unwrap_err();
        assert!(matches!(err, PartitionError::DimensionMismatch { .. }));
    }
}
