//! Half-open integer intervals `[lo, hi)` on a normalized attribute axis.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open interval `[lo, hi)` over `i64`.  Empty when `lo >= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// Creates the interval `[lo, hi)`.
    pub fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// The canonical empty interval.
    pub fn empty() -> Self {
        Interval { lo: 0, hi: 0 }
    }

    /// True if the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Number of integer points in the interval (0 when empty).
    pub fn len(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi - self.lo) as u64
        }
    }

    /// True if the interval contains the point.
    pub fn contains(&self, point: i64) -> bool {
        point >= self.lo && point < self.hi
    }

    /// True if `other` is entirely inside `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (other.lo >= self.lo && other.hi <= self.hi)
    }

    /// Intersection of the two intervals (possibly empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// True if the intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The (up to two) parts of `self` that lie outside `other`:
    /// the part below `other` and the part above it.
    pub fn subtract(&self, other: &Interval) -> Vec<Interval> {
        if self.is_empty() {
            return Vec::new();
        }
        let inter = self.intersect(other);
        if inter.is_empty() {
            return vec![*self];
        }
        let mut out = Vec::new();
        if self.lo < inter.lo {
            out.push(Interval::new(self.lo, inter.lo));
        }
        if inter.hi < self.hi {
            out.push(Interval::new(inter.hi, self.hi));
        }
        out
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let i = Interval::new(10, 20);
        assert!(!i.is_empty());
        assert_eq!(i.len(), 10);
        assert!(i.contains(10));
        assert!(i.contains(19));
        assert!(!i.contains(20));
        assert!(!i.contains(9));
        assert!(Interval::empty().is_empty());
        assert_eq!(Interval::new(5, 5).len(), 0);
        assert_eq!(Interval::new(7, 3).len(), 0);
        assert_eq!(i.to_string(), "[10, 20)");
    }

    #[test]
    fn intersection_and_overlap() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        assert!(a.overlaps(&b));
        let c = Interval::new(10, 20);
        assert!(!a.overlaps(&c)); // half-open: they only touch
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn containment() {
        let a = Interval::new(0, 100);
        assert!(a.contains_interval(&Interval::new(10, 20)));
        assert!(a.contains_interval(&Interval::new(0, 100)));
        assert!(!a.contains_interval(&Interval::new(-1, 5)));
        assert!(!a.contains_interval(&Interval::new(90, 101)));
        // The empty interval is contained everywhere.
        assert!(a.contains_interval(&Interval::empty()));
        assert!(Interval::new(5, 6).contains_interval(&Interval::new(9, 9)));
    }

    #[test]
    fn subtraction() {
        let a = Interval::new(0, 100);
        let parts = a.subtract(&Interval::new(20, 60));
        assert_eq!(parts, vec![Interval::new(0, 20), Interval::new(60, 100)]);
        // Subtracting a disjoint interval leaves the original.
        assert_eq!(a.subtract(&Interval::new(200, 300)), vec![a]);
        // Subtracting a covering interval leaves nothing.
        assert!(a.subtract(&Interval::new(-5, 200)).is_empty());
        // Subtracting from an empty interval leaves nothing.
        assert!(Interval::empty().subtract(&a).is_empty());
        // Subtracting a prefix leaves the suffix.
        assert_eq!(
            a.subtract(&Interval::new(0, 30)),
            vec![Interval::new(30, 100)]
        );
    }
}
