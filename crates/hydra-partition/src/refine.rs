//! Incremental partition refinement for delta re-profiling.
//!
//! When a workload evolves, most relations' constraint boxes are unchanged —
//! and even on a changed relation, most of the attribute space keeps exactly
//! the predicate boundaries it had.  [`RegionPartitioner::refine`] exploits
//! both levels:
//!
//! * **identical boxes** (a pure cardinality re-annotation): the previous
//!   partition is reused outright — no axis sweep, no regridding, and every
//!   region carries over one-to-one;
//! * **changed boxes**: only the axes whose elementary cut sets actually
//!   moved contribute new boundaries; the sweep runs once over the new
//!   constraint set and the previous solution's *support* (the regions that
//!   actually held tuples — a basic LP solution has at most one per
//!   constraint, so this set is small regardless of how many regions the
//!   partition has) is mapped forward into the new partition, so a
//!   downstream LP warm start can inherit it instead of starting from
//!   nothing.
//!
//! The carry-over map is advisory (it feeds warm-start *hints*, never
//! correctness): a supported previous region maps to the new region
//! containing its representative point, and counts as *reused* when its
//! point set is provably the same (equal volume — a region no new boundary
//! split).  Mapping only the support keeps refinement linear in the support
//! size instead of quadratic in the region count.

use crate::nbox::NBox;
use crate::region::{RegionPartition, RegionPartitioner};
use crate::{PartitionError, PartitionResult};
use std::collections::BTreeSet;

/// The result of incrementally refining a partition against a previous one.
#[derive(Debug, Clone)]
pub struct PartitionRefinement {
    /// The partition of the *new* constraint set.
    pub partition: RegionPartition,
    /// `(old region, new region)` pairs: where each *supported* previous
    /// region's representative point landed in the new partition.
    pub carried: Vec<(usize, usize)>,
    /// Number of supported previous regions whose geometry is provably
    /// unchanged (carried into a new region of equal volume).
    pub reused_regions: usize,
    /// Axes whose elementary cut set changed between the previous and the
    /// new constraint boxes (empty on a pure re-annotation delta).
    pub changed_axes: Vec<usize>,
    /// True when the previous partition was reused outright (identical
    /// space and constraint boxes — no sweep ran at all).
    pub full_reuse: bool,
}

impl PartitionRefinement {
    /// Maps per-previous-region quantities (e.g. solved tuple counts) onto
    /// the new regions along the carry-over pairs; new regions nothing
    /// carried into get `0`.  The support of the result is the canonical LP
    /// warm-start hint.
    pub fn carry_values(&self, values: &[u64]) -> Vec<u64> {
        let mut carried = vec![0u64; self.partition.num_variables()];
        for &(old, new) in &self.carried {
            carried[new] = carried[new].saturating_add(values.get(old).copied().unwrap_or(0));
        }
        carried
    }

    /// The new-region indices to prioritize in a warm-started LP: the
    /// regions that inherit the previous solution's support.
    pub fn warm_columns(&self) -> Vec<usize> {
        let set: BTreeSet<usize> = self.carried.iter().map(|&(_, new)| new).collect();
        set.into_iter().collect()
    }
}

/// The per-axis elementary cut set a constraint collection induces (the same
/// cuts the axis sweep uses).
fn axis_cuts(
    space: &crate::space::AttributeSpace,
    constraints: &[Vec<NBox>],
    axis: usize,
) -> BTreeSet<i64> {
    let domain = space.domain(axis);
    let mut cuts: BTreeSet<i64> = BTreeSet::new();
    cuts.insert(domain.lo);
    cuts.insert(domain.hi);
    for boxes in constraints {
        for b in boxes {
            let iv = b.interval(axis).intersect(&domain);
            if iv.is_empty() {
                continue;
            }
            if iv.lo > domain.lo && iv.lo < domain.hi {
                cuts.insert(iv.lo);
            }
            if iv.hi > domain.lo && iv.hi < domain.hi {
                cuts.insert(iv.hi);
            }
        }
    }
    cuts
}

impl RegionPartitioner {
    /// Partitions the added constraints *incrementally* against a previous
    /// partition of the same relation (see the module docs for what is
    /// reused at each level).  `prev_support` lists the previous regions
    /// worth carrying forward — typically the indices whose solved tuple
    /// count is nonzero.  The resulting partition is bit-identical to what
    /// [`RegionPartitioner::partition`] would produce from scratch.
    pub fn refine(
        self,
        prev: &RegionPartition,
        prev_support: &[usize],
    ) -> PartitionResult<PartitionRefinement> {
        let (space, constraints, max_regions) = self.parts();

        // Level 1: identical space and boxes — a pure re-annotation delta.
        // The previous partition *is* the new partition (signatures are per
        // constraint index, and the indices line up because the boxes do).
        if space == *prev.space() && constraints == prev.constraint_unions() {
            let carried: Vec<(usize, usize)> = prev_support
                .iter()
                .filter(|&&r| r < prev.num_variables())
                .map(|&r| (r, r))
                .collect();
            let reused_regions = carried.len();
            return Ok(PartitionRefinement {
                partition: prev.clone(),
                carried,
                reused_regions,
                changed_axes: Vec::new(),
                full_reuse: true,
            });
        }

        // Which axes actually gained or lost predicate boundaries?
        let changed_axes: Vec<usize> = if space == *prev.space() {
            (0..space.dims())
                .filter(|&axis| {
                    axis_cuts(&space, &constraints, axis)
                        != axis_cuts(&space, prev.constraint_unions(), axis)
                })
                .collect()
        } else {
            (0..space.dims()).collect()
        };

        // Level 2: sweep the new constraint set once, then carry the
        // previous *support* forward — each supported old region's
        // representative point is located in the new partition (linear in
        // the support size, not in the region count).
        let mut partitioner = RegionPartitioner::new(space).with_max_regions(max_regions);
        for boxes in constraints {
            partitioner = partitioner.add_constraint_union(boxes);
        }
        let partition = partitioner.partition()?;
        let mut carried = Vec::with_capacity(prev_support.len());
        let mut reused_regions = 0usize;
        for &old in prev_support {
            let Some(region) = prev.regions().get(old) else {
                continue;
            };
            let point = region.representative_point();
            if let Some(new) = partition.region_containing(&point) {
                if partition.regions()[new].volume == region.volume {
                    reused_regions += 1;
                }
                carried.push((old, new));
            }
        }
        Ok(PartitionRefinement {
            partition,
            carried,
            reused_regions,
            changed_axes,
            full_reuse: false,
        })
    }
}

/// Guard against misuse: refinement only makes sense against a previous
/// partition of the same dimensionality (callers catch this as a stale
/// baseline and fall back to a cold partition + solve).
pub fn check_refinable(prev: &RegionPartition, dims: usize) -> PartitionResult<()> {
    if prev.space().dims() != dims {
        return Err(PartitionError::DimensionMismatch {
            expected: dims,
            got: prev.space().dims(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::space::AttributeSpace;

    fn space_1d() -> AttributeSpace {
        AttributeSpace::new(vec![("a".to_string(), Interval::new(0, 100))])
    }

    fn space_2d() -> AttributeSpace {
        AttributeSpace::new(vec![
            ("a".to_string(), Interval::new(0, 100)),
            ("b".to_string(), Interval::new(0, 100)),
        ])
    }

    #[test]
    fn identical_boxes_reuse_the_partition_outright() {
        let prev = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .add_constraint_box(NBox::new(vec![Interval::new(40, 80)]))
            .partition()
            .unwrap();
        let support: Vec<usize> = (0..prev.num_variables()).collect();
        let refinement = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .add_constraint_box(NBox::new(vec![Interval::new(40, 80)]))
            .refine(&prev, &support)
            .unwrap();
        assert!(refinement.full_reuse);
        assert_eq!(refinement.partition, prev);
        assert!(refinement.changed_axes.is_empty());
        assert_eq!(refinement.reused_regions, prev.num_variables());
        // Carried values are the identity here.
        let counts: Vec<u64> = (0..prev.num_variables() as u64).collect();
        assert_eq!(refinement.carry_values(&counts), counts);
        assert_eq!(refinement.warm_columns(), support);
    }

    #[test]
    fn only_the_touched_axis_is_reported_changed() {
        let c_a = |lo, hi| space_2d().box_from_intervals(vec![("a", Interval::new(lo, hi))]);
        let c_b = |lo, hi| space_2d().box_from_intervals(vec![("b", Interval::new(lo, hi))]);
        let prev = RegionPartitioner::new(space_2d())
            .add_constraint_box(c_a(20, 60))
            .add_constraint_box(c_b(10, 30))
            .partition()
            .unwrap();
        let support: Vec<usize> = (0..prev.num_variables()).collect();
        // A new predicate boundary on axis b only; axis a's cuts unchanged.
        let refinement = RegionPartitioner::new(space_2d())
            .add_constraint_box(c_a(20, 60))
            .add_constraint_box(c_b(10, 30))
            .add_constraint_box(c_b(50, 90))
            .refine(&prev, &support)
            .unwrap();
        assert!(!refinement.full_reuse);
        assert_eq!(refinement.changed_axes, vec![1]);
        // The subspace untouched by the new boundary carries over: regions
        // away from b∈[50,90) keep their exact geometry.
        assert!(refinement.reused_regions >= 2, "{refinement:?}");
        // Every supported old region lands somewhere in the new partition
        // (the space did not shrink).
        assert_eq!(refinement.carried.len(), support.len());
        // The refined partition equals a from-scratch partition.
        let scratch = RegionPartitioner::new(space_2d())
            .add_constraint_box(c_a(20, 60))
            .add_constraint_box(c_b(10, 30))
            .add_constraint_box(c_b(50, 90))
            .partition()
            .unwrap();
        assert_eq!(refinement.partition, scratch);
    }

    #[test]
    fn carried_support_feeds_warm_columns() {
        let prev = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .partition()
            .unwrap();
        // prev has 2 regions: outside {}, inside {0}. Give the inside
        // support and refine with an extra disjoint constraint.
        let inside = prev
            .regions()
            .iter()
            .position(|r| r.signature.contains(0))
            .unwrap();
        let mut counts = vec![0u64; prev.num_variables()];
        counts[inside] = 500;
        let refinement = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .add_constraint_box(NBox::new(vec![Interval::new(80, 90)]))
            .refine(&prev, &[inside])
            .unwrap();
        // The supported [20,60) region carries its 500 into the matching
        // new region; nothing else is mapped.
        let carried = refinement.carry_values(&counts);
        assert_eq!(carried.iter().sum::<u64>(), 500);
        let warm = refinement.warm_columns();
        assert_eq!(warm.len(), 1);
        let new_inside = refinement
            .partition
            .regions()
            .iter()
            .position(|r| r.signature.contains(0))
            .unwrap();
        assert_eq!(warm, vec![new_inside]);
        assert_eq!(carried[new_inside], 500);
    }

    #[test]
    fn domain_change_drops_unmappable_support() {
        let prev = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .partition()
            .unwrap();
        // A *narrower* new space: the old outside region's representative
        // (a = 0) no longer exists, so its support cannot carry.
        let narrow = AttributeSpace::new(vec![("a".to_string(), Interval::new(15, 70))]);
        let outside = prev
            .regions()
            .iter()
            .position(|r| r.signature.is_empty())
            .unwrap();
        let inside = prev
            .regions()
            .iter()
            .position(|r| r.signature.contains(0))
            .unwrap();
        let refinement = RegionPartitioner::new(narrow)
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .refine(&prev, &[outside, inside])
            .unwrap();
        assert!(!refinement.full_reuse);
        assert_eq!(refinement.changed_axes, vec![0]);
        // Only the inside region (representative a = 20) maps.
        assert_eq!(refinement.carried.len(), 1);
        assert_eq!(refinement.carried[0].0, inside);
        // Out-of-range support indices are ignored, not a panic.
        let refinement = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .refine(&prev, &[99])
            .unwrap();
        assert!(refinement.carried.is_empty() || refinement.full_reuse);
    }

    #[test]
    fn refine_honors_the_region_budget() {
        let prev = RegionPartitioner::new(space_1d())
            .add_constraint_box(NBox::new(vec![Interval::new(20, 60)]))
            .partition()
            .unwrap();
        // The refined sweep must enforce the caller's budget exactly like a
        // from-scratch partition would (10 disjoint ranges > 4 regions).
        let mut partitioner = RegionPartitioner::new(space_1d()).with_max_regions(4);
        for i in 0..10 {
            partitioner =
                partitioner.add_constraint_box(NBox::new(vec![Interval::new(i * 10, i * 10 + 5)]));
        }
        assert!(matches!(
            partitioner.refine(&prev, &[0]),
            Err(PartitionError::TooManyRegions { .. })
        ));
    }

    #[test]
    fn refinable_check_catches_dimension_drift() {
        let prev = RegionPartitioner::new(space_1d()).partition().unwrap();
        assert!(check_refinable(&prev, 1).is_ok());
        assert!(check_refinable(&prev, 2).is_err());
    }
}
