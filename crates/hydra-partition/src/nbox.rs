//! Axis-aligned n-dimensional boxes (products of per-axis intervals).

use crate::interval::Interval;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned box: the cartesian product of one interval per axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NBox {
    intervals: Vec<Interval>,
}

impl NBox {
    /// Creates a box from per-axis intervals.
    pub fn new(intervals: Vec<Interval>) -> Self {
        NBox { intervals }
    }

    /// Number of axes.
    pub fn dims(&self) -> usize {
        self.intervals.len()
    }

    /// Per-axis intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The interval on one axis.
    pub fn interval(&self, axis: usize) -> Interval {
        self.intervals[axis]
    }

    /// True if the box contains no points (any axis empty).
    pub fn is_empty(&self) -> bool {
        self.intervals.iter().any(Interval::is_empty)
    }

    /// Number of integer points in the box, saturating at `u128::MAX` for
    /// astronomically large boxes (exabyte-scale what-if scenarios).
    pub fn volume(&self) -> u128 {
        if self.is_empty() {
            return 0;
        }
        self.intervals
            .iter()
            .fold(1u128, |acc, i| acc.saturating_mul(i.len() as u128))
    }

    /// Intersection with another box of the same dimensionality.
    pub fn intersect(&self, other: &NBox) -> NBox {
        debug_assert_eq!(self.dims(), other.dims());
        NBox::new(
            self.intervals
                .iter()
                .zip(other.intervals.iter())
                .map(|(a, b)| a.intersect(b))
                .collect(),
        )
    }

    /// True if the boxes share at least one point.
    pub fn overlaps(&self, other: &NBox) -> bool {
        !self.intersect(other).is_empty()
    }

    /// True if `other` lies entirely inside `self`.
    pub fn contains_box(&self, other: &NBox) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        other.is_empty()
            || self
                .intervals
                .iter()
                .zip(other.intervals.iter())
                .all(|(a, b)| a.contains_interval(b))
    }

    /// True if the box contains the given point.
    pub fn contains_point(&self, point: &[i64]) -> bool {
        debug_assert_eq!(self.dims(), point.len());
        self.intervals
            .iter()
            .zip(point.iter())
            .all(|(iv, p)| iv.contains(*p))
    }

    /// The lexicographically smallest point of the box (its lower corner).
    /// `None` when the box is empty.
    pub fn lower_corner(&self) -> Option<Vec<i64>> {
        if self.is_empty() {
            return None;
        }
        Some(self.intervals.iter().map(|i| i.lo).collect())
    }

    /// Splits `self` against `other`, returning `(inside, outside)`: the part
    /// of `self` inside `other` (possibly empty) and a list of disjoint boxes
    /// covering the part of `self` outside `other`.
    ///
    /// The outside pieces are produced by sweeping one axis at a time: on each
    /// axis, the slabs of `self` below and above `other`'s interval are peeled
    /// off whole, and the remainder (clamped to `other` on that axis) proceeds
    /// to the next axis.  This yields at most `2 * dims` outside pieces.
    pub fn split_by(&self, other: &NBox) -> (NBox, Vec<NBox>) {
        debug_assert_eq!(self.dims(), other.dims());
        let mut outside = Vec::new();
        if self.is_empty() {
            return (NBox::new(vec![Interval::empty(); self.dims()]), outside);
        }
        let inter = self.intersect(other);
        if inter.is_empty() {
            return (inter, vec![self.clone()]);
        }
        let mut core = self.clone();
        for axis in 0..self.dims() {
            let own = core.intervals[axis];
            let target = other.intervals[axis];
            for part in own.subtract(&target) {
                let mut piece = core.clone();
                piece.intervals[axis] = part;
                if !piece.is_empty() {
                    outside.push(piece);
                }
            }
            core.intervals[axis] = own.intersect(&target);
        }
        (core, outside)
    }
}

impl fmt::Display for NBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.intervals.iter().map(|i| i.to_string()).collect();
        write!(f, "{}", parts.join(" x "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b2(a: (i64, i64), b: (i64, i64)) -> NBox {
        NBox::new(vec![Interval::new(a.0, a.1), Interval::new(b.0, b.1)])
    }

    #[test]
    fn volume_and_emptiness() {
        let b = b2((0, 10), (0, 5));
        assert_eq!(b.volume(), 50);
        assert!(!b.is_empty());
        assert!(b2((0, 0), (0, 5)).is_empty());
        assert_eq!(b2((0, 0), (0, 5)).volume(), 0);
        assert_eq!(b.dims(), 2);
        assert_eq!(b.interval(1), Interval::new(0, 5));
    }

    #[test]
    fn intersection_and_containment() {
        let a = b2((0, 10), (0, 10));
        let b = b2((5, 15), (2, 8));
        assert_eq!(a.intersect(&b), b2((5, 10), (2, 8)));
        assert!(a.overlaps(&b));
        assert!(a.contains_box(&b2((1, 2), (1, 2))));
        assert!(!a.contains_box(&b));
        assert!(a.contains_box(&b2((3, 3), (0, 10)))); // empty box contained anywhere
        assert!(a.contains_point(&[0, 9]));
        assert!(!a.contains_point(&[0, 10]));
    }

    #[test]
    fn lower_corner() {
        assert_eq!(b2((3, 10), (7, 9)).lower_corner(), Some(vec![3, 7]));
        assert_eq!(b2((3, 3), (7, 9)).lower_corner(), None);
    }

    #[test]
    fn split_fully_inside() {
        let piece = b2((0, 10), (0, 10));
        let constraint = b2((-5, 20), (-5, 20));
        let (inside, outside) = piece.split_by(&constraint);
        assert_eq!(inside, piece);
        assert!(outside.is_empty());
    }

    #[test]
    fn split_disjoint() {
        let piece = b2((0, 10), (0, 10));
        let constraint = b2((20, 30), (0, 10));
        let (inside, outside) = piece.split_by(&constraint);
        assert!(inside.is_empty());
        assert_eq!(outside, vec![piece]);
    }

    #[test]
    fn split_partial_overlap_preserves_volume() {
        let piece = b2((0, 10), (0, 10));
        let constraint = b2((3, 7), (4, 20));
        let (inside, outside) = piece.split_by(&constraint);
        assert_eq!(inside, b2((3, 7), (4, 10)));
        let outside_volume: u128 = outside.iter().map(NBox::volume).sum();
        assert_eq!(inside.volume() + outside_volume, piece.volume());
        // Outside pieces are pairwise disjoint.
        for i in 0..outside.len() {
            for j in (i + 1)..outside.len() {
                assert!(!outside[i].overlaps(&outside[j]));
            }
        }
        // And none of them overlaps the constraint ∩ piece.
        for o in &outside {
            assert!(!o.overlaps(&inside));
        }
    }

    #[test]
    fn split_produces_at_most_two_d_outside_pieces() {
        let piece = NBox::new(vec![Interval::new(0, 10); 4]);
        let constraint = NBox::new(vec![Interval::new(3, 6); 4]);
        let (inside, outside) = piece.split_by(&constraint);
        assert_eq!(inside.volume(), 81);
        assert!(outside.len() <= 8);
        let total: u128 = outside.iter().map(NBox::volume).sum::<u128>() + inside.volume();
        assert_eq!(total, piece.volume());
    }

    #[test]
    fn display() {
        assert_eq!(b2((0, 1), (2, 3)).to_string(), "[0, 1) x [2, 3)");
    }
}
