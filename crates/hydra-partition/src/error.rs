//! Error type for partitioning.

use std::fmt;

/// Errors raised while partitioning an attribute space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A constraint box has a different dimensionality than the space.
    DimensionMismatch {
        /// Dimensionality of the attribute space.
        expected: usize,
        /// Dimensionality of the offending box.
        got: usize,
    },
    /// The region budget was exceeded (the workload induces more regions —
    /// LP variables — than the configured limit).
    TooManyRegions {
        /// The configured region budget.
        limit: usize,
    },
    /// The space has an empty axis.
    EmptyAxis(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::DimensionMismatch { expected, got } => {
                write!(f, "constraint has {got} dimensions, space has {expected}")
            }
            PartitionError::TooManyRegions { limit } => {
                write!(
                    f,
                    "region partitioning exceeded the region budget of {limit}"
                )
            }
            PartitionError::EmptyAxis(a) => write!(f, "attribute `{a}` has an empty domain"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Convenience result alias.
pub type PartitionResult<T> = Result<T, PartitionError>;
