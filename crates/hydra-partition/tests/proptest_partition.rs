//! Property-based tests for region partitioning invariants.

use hydra_partition::interval::Interval;
use hydra_partition::nbox::NBox;
use hydra_partition::region::RegionPartitioner;
use hydra_partition::space::AttributeSpace;
use proptest::prelude::*;

/// Strategy: a small attribute space (1–3 axes) plus 1–6 constraint boxes.
fn space_and_constraints() -> impl Strategy<Value = (AttributeSpace, Vec<NBox>)> {
    (1usize..=3).prop_flat_map(|dims| {
        let axis = (10i64..60).prop_map(|hi| Interval::new(0, hi));
        let axes = proptest::collection::vec(axis, dims);
        axes.prop_flat_map(move |axes| {
            let space = AttributeSpace::new(
                axes.iter()
                    .enumerate()
                    .map(|(i, iv)| (format!("x{i}"), *iv))
                    .collect(),
            );
            let space_for_boxes = space.clone();
            let one_box =
                proptest::collection::vec((0i64..50, 1i64..30), dims).prop_map(move |ranges| {
                    let intervals: Vec<Interval> = ranges
                        .iter()
                        .zip(space_for_boxes.full_box().intervals())
                        .map(|((lo, len), domain)| Interval::new(*lo, lo + len).intersect(domain))
                        .collect();
                    NBox::new(intervals)
                });
            (Just(space), proptest::collection::vec(one_box, 1..6))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Regions cover the whole space exactly once (volumes add up) and are
    /// pairwise disjoint in signature.
    #[test]
    fn regions_partition_the_space((space, boxes) in space_and_constraints()) {
        let total = space.volume();
        let mut partitioner = RegionPartitioner::new(space);
        for b in &boxes {
            partitioner = partitioner.add_constraint_box(b.clone());
        }
        let p = partitioner.partition().unwrap();
        prop_assert_eq!(p.total_volume(), total);
        // Signatures are unique per region.
        for i in 0..p.regions().len() {
            for j in (i + 1)..p.regions().len() {
                prop_assert_ne!(&p.regions()[i].signature, &p.regions()[j].signature);
            }
        }
    }

    /// For every constraint, the volume of its member regions equals the
    /// volume of the constraint box clipped to the space.
    #[test]
    fn constraint_volumes_are_preserved((space, boxes) in space_and_constraints()) {
        let full = space.full_box();
        let mut partitioner = RegionPartitioner::new(space);
        for b in &boxes {
            partitioner = partitioner.add_constraint_box(b.clone());
        }
        let p = partitioner.partition().unwrap();
        for (ci, b) in boxes.iter().enumerate() {
            let expected = b.intersect(&full).volume();
            let got: u128 = p
                .regions_in_constraint(ci)
                .iter()
                .map(|&i| p.regions()[i].volume)
                .sum();
            prop_assert_eq!(got, expected, "constraint {} volume mismatch", ci);
        }
    }

    /// Any sampled point of a region carries exactly the region's signature:
    /// it is inside constraint i iff the signature contains i.
    #[test]
    fn region_points_match_signatures((space, boxes) in space_and_constraints()) {
        let mut partitioner = RegionPartitioner::new(space);
        for b in &boxes {
            partitioner = partitioner.add_constraint_box(b.clone());
        }
        let p = partitioner.partition().unwrap();
        for region in p.regions() {
            for k in [0u128, 1, 7] {
                if let Some(point) = region.point_at(k) {
                    for (ci, b) in boxes.iter().enumerate() {
                        let inside = b.contains_point(&point);
                        prop_assert_eq!(
                            inside,
                            region.signature.contains(ci),
                            "point {:?} of region {} disagrees with constraint {}",
                            point, region.signature, ci
                        );
                    }
                }
            }
        }
    }
}
