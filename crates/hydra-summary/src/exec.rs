//! Summary-direct aggregate query execution.
//!
//! The paper's central claim is that the LP-solved summary *is* the
//! database: every volumetric question in the closed SPJ workload class is
//! answerable from region cardinalities alone.  This module makes that claim
//! operational: [`SummaryExecutor`] evaluates COUNT / SUM / AVG / GROUP BY
//! aggregates with conjunctive predicates and key–FK joins **directly
//! against the block structure** of [`RelationSummary`] — O(blocks), never
//! O(tuples) — producing answers bit-identical to regenerating every tuple
//! and scanning it.
//!
//! Per root (fact) block the evaluation is closed-form:
//!
//! * predicates on the auto-numbered primary key become an **interval
//!   intersection** with the block's pk range `[start, start+count)`;
//! * predicates on value columns accept or reject the whole block (every
//!   tuple of a block shares its value vector);
//! * each foreign key is one value per block, so a join edge resolves by one
//!   `O(log B)` [`PkBlockIndex`] lookup into the referenced dimension — the
//!   paper's deterministic alignment is what makes this **fan-out** a point
//!   lookup rather than a scan;
//! * aggregate contributions are `value × multiplicity` (or an arithmetic
//!   series for aggregates over the pk axis), fed into the shared
//!   order-independent [`Aggregator`] kernel.
//!
//! ## The closed class, and what falls outside it
//!
//! Everything the parser can represent is summary-direct except queries that
//! would need per-tuple resolution of the fact table's auto-numbered primary
//! key: `GROUP BY` on the root pk (every tuple its own group) and pk
//! predicates whose literals are not exactly representable on the integer
//! pk axis.  [`SummaryExecutor::classify`] reports the reason; callers (the
//! `hydra-datagen` query engine) fall back to a sharded tuple scan.

use crate::error::{SummaryError, SummaryResult};
use crate::index::PkBlockIndex;
use crate::summary::{DatabaseSummary, RelationSummary, SummaryRow};
use hydra_catalog::schema::{Schema, Table};
use hydra_catalog::types::Value;
use hydra_query::exec::{
    AggFunc, AggInput, AggregateQuery, Aggregator, ColumnRef, ExecStrategy, QueryAnswer,
};
use hydra_query::predicate::{ColumnPredicate, CompareOp};
use std::collections::BTreeMap;

/// The primary-key column a generated tuple stream auto-numbers for a
/// relation: the summary's recorded pk column, falling back to the schema's
/// declared primary key.  (Identical to the resolution in
/// `hydra_datagen::stream::TupleStream` — the executor must agree with the
/// generator about which column is the pk axis.)
pub fn auto_pk_column(table: &Table, summary: &RelationSummary) -> Option<String> {
    summary
        .pk_column
        .clone()
        .or_else(|| table.primary_key_column().map(str::to_string))
}

/// One dimension relation reachable from the query's join tree.
struct DimAccess<'a> {
    summary: &'a RelationSummary,
    index: PkBlockIndex,
    pk_column: Option<String>,
    /// Dim-predicate conjuncts on the dim's pk column (evaluated against the
    /// joined pk value).
    pk_conjuncts: Vec<ColumnPredicate>,
    /// Remaining dim-predicate conjuncts (evaluated against block values).
    value_conjuncts: Vec<ColumnPredicate>,
}

/// One join edge, in an order where the fact side is always resolved first.
struct EdgeStep {
    fact_table: String,
    fk_column: String,
    dim_table: String,
}

/// A dimension row resolved for one fact-side context: the joined primary
/// key and the summary block that regenerates it.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedDim {
    /// The dimension primary key the fact side references.
    pub pk: i64,
    /// Index of the dim summary block containing `pk`.
    pub block: usize,
}

/// Resolves the dimension side of a query's join tree for one fact-side
/// lookup (a summary block or a single regenerated tuple).
///
/// Both evaluation strategies share this resolver — block-closed-form
/// summary execution and the per-tuple scan fallback — so join semantics
/// (inner joins over deterministic pk blocks, repeated edges into one
/// dimension constraining the same row) are identical by construction.
pub struct JoinResolver<'a> {
    dims: BTreeMap<String, DimAccess<'a>>,
    steps: Vec<EdgeStep>,
}

impl<'a> JoinResolver<'a> {
    /// Builds a resolver for `query` rooted at `root`.  Every non-root table
    /// must have a summary in `summary` and a table in `schema`.
    pub fn new(
        query: &AggregateQuery,
        root: &str,
        schema: &'a Schema,
        summary: &'a DatabaseSummary,
    ) -> SummaryResult<Self> {
        let mut dims = BTreeMap::new();
        for table in &query.spj.tables {
            if table == root {
                continue;
            }
            let t = schema
                .table(table)
                .ok_or_else(|| SummaryError::Catalog(format!("unknown table `{table}`")))?;
            let s = summary
                .relation(table)
                .ok_or_else(|| SummaryError::Catalog(format!("no summary for `{table}`")))?;
            let pk_column = auto_pk_column(t, s);
            let (pk_conjuncts, value_conjuncts) = split_conjuncts(
                query
                    .spj
                    .predicate(table)
                    .map(|p| p.conjuncts())
                    .unwrap_or(&[]),
                pk_column.as_deref(),
            );
            dims.insert(
                table.clone(),
                DimAccess {
                    summary: s,
                    index: s.block_index(),
                    pk_column,
                    pk_conjuncts,
                    value_conjuncts,
                },
            );
        }
        // Order the edges so that an edge's fact side is always the root or
        // an already-resolved dimension.
        let mut steps: Vec<EdgeStep> = Vec::new();
        let mut pending: Vec<&hydra_query::query::JoinEdge> = query.spj.joins.iter().collect();
        let mut reachable: Vec<String> = vec![root.to_string()];
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|edge| {
                if reachable.contains(&edge.fact_table) {
                    steps.push(EdgeStep {
                        fact_table: edge.fact_table.clone(),
                        fk_column: edge.fk_column.clone(),
                        dim_table: edge.dim_table.clone(),
                    });
                    false
                } else {
                    true
                }
            });
            for step in &steps {
                if !reachable.iter().any(|t| t == &step.dim_table) {
                    reachable.push(step.dim_table.clone());
                }
            }
            if pending.len() == before {
                return Err(SummaryError::Query(hydra_query::QueryError::Unsupported(
                    "join graph is not connected to the root fact table".into(),
                )));
            }
        }
        // Every FROM table must be reachable through a join edge: a table
        // with no edge would be a cross join, which neither evaluation
        // strategy implements — reject it instead of silently ignoring the
        // table (which would misanswer on both paths identically).
        for table in dims.keys() {
            if !steps.iter().any(|s| &s.dim_table == table) {
                return Err(SummaryError::Query(hydra_query::QueryError::Unsupported(
                    format!(
                        "table `{table}` has no join edge connecting it to `{root}` \
                         (cross joins are outside the SPJ class)"
                    ),
                )));
            }
        }
        Ok(JoinResolver { dims, steps })
    }

    /// Resolves every join for one fact-side context.  `root_lookup` reads a
    /// column of the fact block's value vector (or of the scanned tuple).
    /// Returns `None` when any edge fails to join (inner-join semantics) or
    /// any dimension predicate rejects the joined row.
    pub fn resolve<'v>(
        &self,
        root_lookup: impl Fn(&str) -> Option<&'v Value>,
    ) -> Option<BTreeMap<&str, ResolvedDim>> {
        let mut out: BTreeMap<&str, ResolvedDim> = BTreeMap::new();
        for step in &self.steps {
            let dim = &self.dims[&step.dim_table];
            // The fk value lives on the fact side: the root context or an
            // already-resolved dimension's block values.
            let fk_value: Option<i64> = if let Some(resolved) = out.get(step.fact_table.as_str()) {
                let fact_dim = &self.dims[&step.fact_table];
                fact_dim.summary.rows[resolved.block]
                    .values
                    .get(&step.fk_column)
                    .and_then(Value::as_i64)
            } else {
                root_lookup(&step.fk_column).and_then(Value::as_i64)
            };
            let pk = fk_value?;
            let block = if pk < 0 {
                return None;
            } else {
                dim.index.locate(pk as u64)?.block
            };
            if let Some(prior) = out.get(step.dim_table.as_str()) {
                // A second edge into the same dimension constrains the same
                // row: both fks must agree.
                if prior.pk != pk {
                    return None;
                }
                continue;
            }
            // Dimension predicate: pk conjuncts against the joined key,
            // value conjuncts against the block's shared value vector.
            let pk_value = Value::Integer(pk);
            if !dim.pk_conjuncts.iter().all(|c| c.matches(&pk_value)) {
                return None;
            }
            let values = &dim.summary.rows[block].values;
            if !dim
                .value_conjuncts
                .iter()
                .all(|c| values.get(&c.column).map(|v| c.matches(v)).unwrap_or(false))
            {
                return None;
            }
            out.insert(step.dim_table.as_str(), ResolvedDim { pk, block });
        }
        Some(out)
    }

    /// Reads a column of a resolved dimension: the pk column yields the
    /// joined key, every other column the block's shared value (NULL when
    /// the summary does not carry it — exactly what regeneration emits).
    pub fn dim_value(&self, table: &str, column: &str, resolved: &ResolvedDim) -> Value {
        let dim = &self.dims[table];
        if dim.pk_column.as_deref() == Some(column) {
            return Value::Integer(resolved.pk);
        }
        dim.summary.rows[resolved.block]
            .values
            .get(column)
            .cloned()
            .unwrap_or(Value::Null)
    }
}

/// Splits predicate conjuncts into those on the auto-numbered pk column and
/// the rest.
fn split_conjuncts(
    conjuncts: &[ColumnPredicate],
    pk_column: Option<&str>,
) -> (Vec<ColumnPredicate>, Vec<ColumnPredicate>) {
    let mut pk = Vec::new();
    let mut other = Vec::new();
    for c in conjuncts {
        if Some(c.column.as_str()) == pk_column {
            pk.push(c.clone());
        } else {
            other.push(c.clone());
        }
    }
    (pk, other)
}

/// The exact i128 bounds `[lo, hi)` a pk conjunct imposes on the integer pk
/// axis, matching [`Value`]'s numeric comparison semantics.  Returns `None`
/// for literal classes the closed form cannot represent (classification
/// routes those to the scan fallback).
fn conjunct_pk_bounds(c: &ColumnPredicate) -> Option<(i128, i128)> {
    const UNBOUNDED_LO: i128 = i128::MIN / 4;
    const UNBOUNDED_HI: i128 = i128::MAX / 4;
    let (floor, is_integral): (i128, bool) = match &c.value {
        Value::Integer(v) => (*v as i128, true),
        Value::Double(d) if d.is_nan() => return None,
        Value::Double(d) => {
            let f = d.floor();
            // `as` saturates on infinite / astronomically large literals;
            // clamp further into the unbounded sentinels so the `+ 1`
            // arithmetic below can never overflow i128.  Any literal this
            // far out dwarfs every possible pk (< 2^64), so the clamp
            // cannot change which rows match.
            ((f as i128).clamp(UNBOUNDED_LO, UNBOUNDED_HI), *d == f)
        }
        _ => return None,
    };
    Some(match (c.op, is_integral) {
        (CompareOp::Eq, true) => (floor, floor + 1),
        (CompareOp::Eq, false) => (1, 0), // empty
        (CompareOp::Lt, true) => (UNBOUNDED_LO, floor),
        (CompareOp::Lt, false) => (UNBOUNDED_LO, floor + 1),
        (CompareOp::Le, _) => (UNBOUNDED_LO, floor + 1),
        (CompareOp::Gt, _) => (floor + 1, UNBOUNDED_HI),
        (CompareOp::Ge, true) => (floor, UNBOUNDED_HI),
        (CompareOp::Ge, false) => (floor + 1, UNBOUNDED_HI),
    })
}

/// A summary-direct query executor over one database summary.
pub struct SummaryExecutor<'a> {
    schema: &'a Schema,
    summary: &'a DatabaseSummary,
}

impl<'a> SummaryExecutor<'a> {
    /// Creates an executor over a schema and its solved summary.
    pub fn new(schema: &'a Schema, summary: &'a DatabaseSummary) -> Self {
        SummaryExecutor { schema, summary }
    }

    fn root_of(
        &self,
        query: &AggregateQuery,
    ) -> SummaryResult<(String, &'a Table, &'a RelationSummary)> {
        let root = query
            .spj
            .root_table()
            .map_err(SummaryError::Query)?
            .to_string();
        let table = self
            .schema
            .table(&root)
            .ok_or_else(|| SummaryError::Catalog(format!("unknown table `{root}`")))?;
        let summary = self
            .summary
            .relation(&root)
            .ok_or_else(|| SummaryError::Catalog(format!("no summary for `{root}`")))?;
        Ok((root, table, summary))
    }

    /// Decides whether `query` is in the summary-direct class.  `Err(reason)`
    /// names the first construct that forces per-tuple evaluation.
    pub fn classify(&self, query: &AggregateQuery) -> SummaryResult<Result<(), String>> {
        let (root, table, summary) = self.root_of(query)?;
        let pk_column = auto_pk_column(table, summary);
        if let Some(pk) = &pk_column {
            for col in &query.group_by {
                if col.table == root && &col.column == pk {
                    return Ok(Err(format!(
                        "GROUP BY `{col}` keys on the fact table's auto-numbered primary \
                         key (every tuple its own group)"
                    )));
                }
            }
            let (pk_conjuncts, _) = split_conjuncts(
                query
                    .spj
                    .predicate(&root)
                    .map(|p| p.conjuncts())
                    .unwrap_or(&[]),
                Some(pk.as_str()),
            );
            for c in &pk_conjuncts {
                if conjunct_pk_bounds(c).is_none() {
                    return Ok(Err(format!(
                        "predicate `{c}` compares the auto-numbered primary key with a \
                         non-numeric literal"
                    )));
                }
            }
            // Beyond 2^53 tuples the scan's f64 comparison of pk-vs-double
            // literals rounds; stay exactly faithful by scanning (unreachable
            // at any practical scale, but the guarantee is "bit-equal").
            if summary.total_rows >= (1u64 << 53)
                && pk_conjuncts
                    .iter()
                    .any(|c| matches!(c.value, Value::Double(_)))
            {
                return Ok(Err(
                    "pk-axis double comparison beyond 2^53 rows is not exactly \
                     representable in closed form"
                        .into(),
                ));
            }
        }
        Ok(Ok(()))
    }

    /// Answers `query` from block structure alone.
    ///
    /// Errors with [`SummaryError::OutOfClass`] when the query is out of
    /// the summary-direct class ([`SummaryExecutor::classify`] explains
    /// why); callers that can regenerate tuples should fall back to a scan.
    pub fn execute(&self, query: &AggregateQuery) -> SummaryResult<QueryAnswer> {
        if let Err(reason) = self.classify(query)? {
            return Err(SummaryError::OutOfClass(reason));
        }
        let (root, table, root_summary) = self.root_of(query)?;
        let pk_column = auto_pk_column(table, root_summary);
        let (pk_conjuncts, value_conjuncts) = split_conjuncts(
            query
                .spj
                .predicate(&root)
                .map(|p| p.conjuncts())
                .unwrap_or(&[]),
            pk_column.as_deref(),
        );
        // Intersect every pk conjunct once, up front.
        let mut pk_lo = i128::MIN / 4;
        let mut pk_hi = i128::MAX / 4;
        for c in &pk_conjuncts {
            let (lo, hi) = conjunct_pk_bounds(c).expect("classified in-class");
            pk_lo = pk_lo.max(lo);
            pk_hi = pk_hi.min(hi);
        }
        let resolver = JoinResolver::new(query, &root, self.schema, self.summary)?;

        let mut aggregator = Aggregator::for_query(query);
        let mut start = 0u64;
        let mut blocks = 0u64;
        for row in &root_summary.rows {
            let block_lo = start as i128;
            let block_hi = (start + row.count) as i128;
            start += row.count;
            blocks += 1;
            // Interval intersection of pk predicates with the block's range.
            let lo = block_lo.max(pk_lo);
            let hi = block_hi.min(pk_hi);
            if lo >= hi {
                continue;
            }
            // Value predicates accept or reject the whole block.
            if !value_conjuncts.iter().all(|c| {
                row.values
                    .get(&c.column)
                    .map(|v| c.matches(v))
                    .unwrap_or(false)
            }) {
                continue;
            }
            // Join fan-out: one O(log B) index lookup per edge.
            let Some(resolved) = resolver.resolve(|col| row.values.get(col)) else {
                continue;
            };
            let n = (hi - lo) as u64;
            let key = self.group_key(query, &root, row, &resolver, &resolved);
            let inputs = self.agg_inputs(
                query,
                &root,
                pk_column.as_deref(),
                row,
                &resolver,
                &resolved,
                lo as i64,
                hi as i64,
                n,
            );
            let input_refs: Vec<AggInput<'_>> = inputs.iter().map(owned_input_as_ref).collect();
            aggregator.add(key, &input_refs);
        }
        Ok(aggregator.into_answer(query, ExecStrategy::SummaryDirect, blocks, 0))
    }

    /// The GROUP BY key for one root block under one join resolution.
    fn group_key(
        &self,
        query: &AggregateQuery,
        root: &str,
        row: &SummaryRow,
        resolver: &JoinResolver<'_>,
        resolved: &BTreeMap<&str, ResolvedDim>,
    ) -> Vec<Value> {
        query
            .group_by
            .iter()
            .map(|col| self.column_value(col, root, row, resolver, resolved))
            .collect()
    }

    /// Reads one referenced column for a root block context.
    fn column_value(
        &self,
        col: &ColumnRef,
        root: &str,
        row: &SummaryRow,
        resolver: &JoinResolver<'_>,
        resolved: &BTreeMap<&str, ResolvedDim>,
    ) -> Value {
        if col.table == root {
            return row.values.get(&col.column).cloned().unwrap_or(Value::Null);
        }
        match resolved.get(col.table.as_str()) {
            Some(dim) => resolver.dim_value(&col.table, &col.column, dim),
            None => Value::Null,
        }
    }

    /// Builds the per-aggregate contributions of one root block.
    #[allow(clippy::too_many_arguments)]
    fn agg_inputs(
        &self,
        query: &AggregateQuery,
        root: &str,
        pk_column: Option<&str>,
        row: &SummaryRow,
        resolver: &JoinResolver<'_>,
        resolved: &BTreeMap<&str, ResolvedDim>,
        lo: i64,
        hi: i64,
        n: u64,
    ) -> Vec<OwnedInput> {
        query
            .aggregates
            .iter()
            .map(|agg| match (&agg.func, &agg.target) {
                (AggFunc::Count, _) | (_, None) => OwnedInput::Tuples { n },
                (_, Some(col)) => {
                    if col.table == root && Some(col.column.as_str()) == pk_column {
                        OwnedInput::IntRange { lo, hi }
                    } else {
                        OwnedInput::Repeat {
                            value: self.column_value(col, root, row, resolver, resolved),
                            n,
                        }
                    }
                }
            })
            .collect()
    }
}

/// Owned variant of [`AggInput`] (block evaluation materializes dim values).
enum OwnedInput {
    Tuples { n: u64 },
    Repeat { value: Value, n: u64 },
    IntRange { lo: i64, hi: i64 },
}

fn owned_input_as_ref(input: &OwnedInput) -> AggInput<'_> {
    match input {
        OwnedInput::Tuples { n } => AggInput::Tuples { n: *n },
        OwnedInput::Repeat { value, n } => AggInput::Repeat { value, n: *n },
        OwnedInput::IntRange { lo, hi } => AggInput::IntRange { lo: *lo, hi: *hi },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;
    use hydra_query::exec::AggExpr;
    use hydra_query::parser::parse_aggregate_query_for_schema;

    /// A two-relation star: `sales` references `item`.
    fn fixture() -> (Schema, DatabaseSummary) {
        let schema = SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_cat", DataType::Varchar(None)))
                    .column(ColumnBuilder::new("i_price", DataType::Double))
            })
            .table("sales", |t| {
                t.column(ColumnBuilder::new("s_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("s_item_fk", DataType::BigInt)
                            .references("item", "i_pk"),
                    )
                    .column(ColumnBuilder::new("s_qty", DataType::Integer))
            })
            .build()
            .unwrap();

        let mut item = RelationSummary::new("item", Some("i_pk".to_string()));
        for (count, cat, price) in [
            (10u64, "Music", 1.5),
            (5, "Books", 2.0),
            (20, "Music", 0.25),
        ] {
            let mut v = BTreeMap::new();
            v.insert("i_cat".to_string(), Value::str(cat));
            v.insert("i_price".to_string(), Value::Double(price));
            item.push_row(count, v);
        }
        // item pk blocks: [0,10) Music/1.5, [10,15) Books/2.0, [15,35) Music/0.25
        let mut sales = RelationSummary::new("sales", Some("s_pk".to_string()));
        for (count, fk, qty) in [
            (100u64, 3i64, 2i64), // joins Music/1.5
            (50, 12, 4),          // joins Books/2.0
            (25, 20, 1),          // joins Music/0.25
            (7, 99, 9),           // dangling fk: never joins
        ] {
            let mut v = BTreeMap::new();
            v.insert("s_item_fk".to_string(), Value::Integer(fk));
            v.insert("s_qty".to_string(), Value::Integer(qty));
            sales.push_row(count, v);
        }
        let mut db = DatabaseSummary::new();
        db.insert(item);
        db.insert(sales);
        (schema, db)
    }

    fn run(sql: &str) -> QueryAnswer {
        let (schema, db) = fixture();
        let q = parse_aggregate_query_for_schema("q", sql, &schema).unwrap();
        SummaryExecutor::new(&schema, &db).execute(&q).unwrap()
    }

    #[test]
    fn count_star_single_table() {
        let answer = run("select count(*) from sales");
        assert_eq!(answer.strategy(), ExecStrategy::SummaryDirect);
        assert_eq!(answer.single().unwrap().aggregates[0], Value::Integer(182));
        assert_eq!(answer.fact_blocks, 4);
        assert_eq!(answer.scanned_tuples, 0);
    }

    #[test]
    fn predicate_selects_whole_blocks() {
        let answer = run("select count(*) from sales where sales.s_qty >= 2");
        assert_eq!(answer.single().unwrap().aggregates[0], Value::Integer(157));
    }

    #[test]
    fn pk_predicate_splits_a_block() {
        // [0,100) is block 0; restrict to pks [40, 60).
        let answer =
            run("select count(*), sum(sales.s_pk) from sales where sales.s_pk >= 40 and sales.s_pk < 60");
        let row = answer.single().unwrap();
        assert_eq!(row.aggregates[0], Value::Integer(20));
        let expected: i64 = (40..60).sum();
        assert_eq!(row.aggregates[1], Value::Integer(expected));
    }

    #[test]
    fn join_fan_out_and_group_by_dim_column() {
        let answer = run("select count(*), sum(sales.s_qty) from sales, item \
             where sales.s_item_fk = item.i_pk group by item.i_cat");
        // Books ← block 1 (50 × qty 4); Music ← blocks 0 and 2 (100×2 + 25×1).
        assert_eq!(answer.rows.len(), 2);
        assert_eq!(answer.rows[0].key[0], Value::str("Books"));
        assert_eq!(answer.rows[0].aggregates[0], Value::Integer(50));
        assert_eq!(answer.rows[0].aggregates[1], Value::Integer(200));
        assert_eq!(answer.rows[1].key[0], Value::str("Music"));
        assert_eq!(answer.rows[1].aggregates[0], Value::Integer(125));
        assert_eq!(answer.rows[1].aggregates[1], Value::Integer(225));
    }

    #[test]
    fn dim_predicate_filters_fact_blocks() {
        let answer = run("select count(*), avg(item.i_price) from sales, item \
             where sales.s_item_fk = item.i_pk and item.i_cat = 'Music'");
        let row = answer.single().unwrap();
        assert_eq!(row.aggregates[0], Value::Integer(125));
        // 100 × 1.5 + 25 × 0.25 over 125 tuples.
        let expected = (100.0 * 1.5 + 25.0 * 0.25) / 125.0;
        assert_eq!(row.aggregates[1], Value::Double(expected));
    }

    #[test]
    fn empty_relation_and_empty_selection() {
        let (schema, mut db) = fixture();
        db.insert(RelationSummary::new("sales", Some("s_pk".to_string())));
        let q = parse_aggregate_query_for_schema(
            "q",
            "select count(*), sum(sales.s_qty), avg(sales.s_qty) from sales",
            &schema,
        )
        .unwrap();
        let answer = SummaryExecutor::new(&schema, &db).execute(&q).unwrap();
        let row = answer.single().unwrap();
        assert_eq!(row.aggregates[0], Value::Integer(0));
        assert_eq!(row.aggregates[1], Value::Null);
        assert_eq!(row.aggregates[2], Value::Null);

        // A predicate selecting zero blocks behaves the same.
        let answer = run("select avg(sales.s_qty) from sales where sales.s_qty > 1000");
        assert_eq!(answer.single().unwrap().aggregates[0], Value::Null);

        // A grouped query over nothing returns no rows.
        let answer =
            run("select count(*) from sales where sales.s_qty > 1000 group by sales.s_qty");
        assert!(answer.is_empty());
    }

    #[test]
    fn group_by_root_pk_is_out_of_class() {
        let (schema, db) = fixture();
        let q = parse_aggregate_query_for_schema(
            "q",
            "select count(*) from sales group by sales.s_pk",
            &schema,
        )
        .unwrap();
        let exec = SummaryExecutor::new(&schema, &db);
        let reason = exec.classify(&q).unwrap().unwrap_err();
        assert!(reason.contains("auto-numbered primary key"), "{reason}");
        assert!(matches!(exec.execute(&q), Err(SummaryError::OutOfClass(_))));

        // GROUP BY a *dimension* pk stays in class (it is the fk value).
        let q = parse_aggregate_query_for_schema(
            "q",
            "select count(*) from sales, item where sales.s_item_fk = item.i_pk \
             group by item.i_pk",
            &schema,
        )
        .unwrap();
        assert!(exec.classify(&q).unwrap().is_ok());
        let answer = exec.execute(&q).unwrap();
        assert_eq!(answer.rows.len(), 3);
        assert_eq!(answer.rows[0].key[0], Value::Integer(3));
    }

    #[test]
    fn double_literals_on_the_pk_axis() {
        let answer = run("select count(*) from sales where sales.s_pk < 10.5");
        assert_eq!(answer.single().unwrap().aggregates[0], Value::Integer(11));
        let answer = run("select count(*) from sales where sales.s_pk = 10.5");
        assert_eq!(answer.single().unwrap().aggregates[0], Value::Integer(0));
        let answer = run("select count(*) from sales where sales.s_pk >= 99.0");
        assert_eq!(answer.single().unwrap().aggregates[0], Value::Integer(83));
    }

    #[test]
    fn sum_over_doubles_uses_the_multiset_definition() {
        let answer =
            run("select sum(item.i_price) from sales, item where sales.s_item_fk = item.i_pk");
        // The multiset: 1.5 × 100, 2.0 × 50, 0.25 × 25 summed ascending.
        let expected = 0.25 * 25.0 + (1.5 * 100.0 + 2.0 * 50.0);
        assert_eq!(
            answer.single().unwrap().aggregates[0],
            Value::Double(expected)
        );
    }

    #[test]
    fn astronomically_large_pk_literals_do_not_overflow() {
        // Literals beyond i128 saturate + clamp instead of overflowing the
        // `+ 1` interval arithmetic (previously a debug-build panic).
        for (op, huge, expect_all) in [
            (CompareOp::Gt, 2e40, false),
            (CompareOp::Ge, 2e40, false),
            (CompareOp::Eq, 2e40, false),
            (CompareOp::Lt, 2e40, true),
            (CompareOp::Le, 2e40, true),
            (CompareOp::Gt, -2e40, true),
            (CompareOp::Lt, -2e40, false),
            (CompareOp::Gt, f64::INFINITY, false),
            (CompareOp::Lt, f64::INFINITY, true),
            (CompareOp::Gt, f64::NEG_INFINITY, true),
        ] {
            let (schema, db) = fixture();
            let mut spj = hydra_query::SpjQuery::new("huge");
            spj.set_predicate(
                "sales",
                hydra_query::TablePredicate::always_true()
                    .with(ColumnPredicate::new("s_pk", op, huge)),
            );
            let q = AggregateQuery::new(spj, vec![AggExpr::count()], vec![]);
            let answer = SummaryExecutor::new(&schema, &db).execute(&q).unwrap();
            let count = answer.single().unwrap().aggregates[0].as_i64().unwrap();
            let expected = if expect_all { 182 } else { 0 };
            assert_eq!(count, expected, "s_pk {op} {huge}");
        }
    }

    #[test]
    fn cross_joins_are_rejected_not_silently_dropped() {
        // Two FROM tables with no join edge: neither strategy implements a
        // cross join, so the resolver must refuse instead of ignoring the
        // dangling table (which would misanswer identically on both paths).
        let (schema, db) = fixture();
        let mut spj = hydra_query::SpjQuery::new("cross");
        spj.add_table("sales");
        spj.add_table("item");
        let q = AggregateQuery::new(
            spj,
            vec![AggExpr::count(), AggExpr::sum("item", "i_price")],
            vec![],
        );
        let err = SummaryExecutor::new(&schema, &db).execute(&q).unwrap_err();
        assert!(
            err.to_string().contains("no join edge"),
            "cross join must be reported: {err}"
        );
    }

    #[test]
    fn missing_summary_is_an_error_not_a_misanswer() {
        let (schema, db) = fixture();
        let mut spj = hydra_query::SpjQuery::new("q");
        spj.add_table("ghost");
        let q = AggregateQuery::new(spj, vec![AggExpr::count()], vec![]);
        assert!(matches!(
            SummaryExecutor::new(&schema, &db).execute(&q),
            Err(SummaryError::Catalog(_))
        ));
    }
}
