//! The database summary data structures.
//!
//! A [`RelationSummary`] is the paper's per-relation summary table: the
//! primary-key column is replaced by a `#TUPLES` count, and every row records
//! one value vector shared by that many tuples (Figure 4 / Table 1).  Because
//! rows are laid out in deterministic order, row *i*'s tuples occupy a
//! contiguous block of auto-numbered primary keys — which is what lets
//! foreign-key conditions on referencing relations be expressed as intervals
//! over the primary-key axis.

use crate::error::{SummaryError, SummaryResult};
use hydra_catalog::types::Value;
use hydra_partition::interval::Interval;
use hydra_query::aqp::FkCondition;
use hydra_query::predicate::TablePredicate;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row of a relation summary: `#TUPLES` tuples sharing the same value
/// vector on every non-primary-key column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// Number of tuples sharing this value vector (the `#TUPLES` column).
    pub count: u64,
    /// Values for every non-primary-key column.
    pub values: BTreeMap<String, Value>,
}

/// One contiguous run of regenerated row positions covered by a single
/// summary row, produced by [`RelationSummary::block_runs`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRun<'a> {
    /// Index of the backing summary row (the block ordinal).
    pub block: usize,
    /// The run's row positions `[start, end)`, clamped to the query range.
    pub rows: std::ops::Range<u64>,
    /// The backing summary row (`#TUPLES` count + constant value vector).
    pub row: &'a SummaryRow,
}

/// The summary of one relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationSummary {
    /// Relation name.
    pub table: String,
    /// Name of the primary-key column that is regenerated as an auto-number.
    pub pk_column: Option<String>,
    /// Total number of tuples the summary regenerates (sum of row counts).
    pub total_rows: u64,
    /// Summary rows in deterministic (primary-key block) order.
    pub rows: Vec<SummaryRow>,
}

impl RelationSummary {
    /// Creates an empty summary for a relation.
    pub fn new(table: impl Into<String>, pk_column: Option<String>) -> Self {
        RelationSummary {
            table: table.into(),
            pk_column,
            total_rows: 0,
            rows: Vec::new(),
        }
    }

    /// Appends a summary row (ignores rows with zero count).
    pub fn push_row(&mut self, count: u64, values: BTreeMap<String, Value>) {
        if count == 0 {
            return;
        }
        self.total_rows += count;
        self.rows.push(SummaryRow { count, values });
    }

    /// Builds a [`crate::index::PkBlockIndex`] over the summary's current
    /// rows: O(log B) mapping from any primary key (row position) to its
    /// `(block, offset)` coordinate, used by range-based tuple streams to
    /// seek without replaying from row 0.
    pub fn block_index(&self) -> crate::index::PkBlockIndex {
        crate::index::PkBlockIndex::new(self)
    }

    /// The primary-key block `[start, start+count)` occupied by summary row `i`.
    pub fn pk_block(&self, row: usize) -> Option<Interval> {
        if row >= self.rows.len() {
            return None;
        }
        let start: u64 = self.rows[..row].iter().map(|r| r.count).sum();
        let end = start + self.rows[row].count;
        Some(Interval::new(start as i64, end as i64))
    }

    /// Iterates the contiguous pk-block runs that intersect `range` (clamped
    /// to `[0, total_rows)`), in block order.
    ///
    /// Each [`BlockRun`] covers the intersection of one summary row's pk
    /// block with the range, so concatenating the runs tiles the (clamped)
    /// range exactly — the block-granular dual of the tuple streams built on
    /// this summary, and the shape the columnar generation path consumes.
    /// Runs are never empty; blocks that don't intersect the range are
    /// skipped.
    ///
    /// ```
    /// use hydra_summary::summary::RelationSummary;
    /// use std::collections::BTreeMap;
    ///
    /// let mut s = RelationSummary::new("item", Some("i_item_sk".to_string()));
    /// s.push_row(917, BTreeMap::new());
    /// s.push_row(21, BTreeMap::new());
    /// let runs: Vec<_> = s.block_runs(900..930).map(|r| (r.block, r.rows)).collect();
    /// assert_eq!(runs, vec![(0, 900..917), (1, 917..930)]);
    /// ```
    pub fn block_runs(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = BlockRun<'_>> {
        let lo = range.start.min(self.total_rows);
        let hi = range.end.clamp(lo, self.total_rows);
        let mut start = 0u64;
        self.rows
            .iter()
            .enumerate()
            .filter_map(move |(block, row)| {
                let block_start = start;
                start += row.count;
                let run_lo = block_start.max(lo);
                let run_hi = start.min(hi);
                (run_lo < run_hi).then_some(BlockRun {
                    block,
                    rows: run_lo..run_hi,
                    row,
                })
            })
    }

    /// Number of summary rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Approximate in-memory footprint of the summary in bytes (the paper's
    /// "few KB" claim is measured with this).
    pub fn size_bytes(&self) -> usize {
        let mut size = self.table.len() + 16;
        for row in &self.rows {
            size += 8; // count
            for (k, v) in &row.values {
                size += k.len() + v.byte_size();
            }
        }
        size
    }

    /// The primary-key intervals whose regenerated tuples satisfy the given
    /// predicate and foreign-key conditions.
    ///
    /// This is the *foreign-key projection* used when formulating the LP of a
    /// referencing (fact) relation: because of deterministic alignment, the
    /// tuples of each summary row occupy one contiguous block of primary keys,
    /// so the satisfying set is a union of intervals.  Nested conditions
    /// (snowflake schemas) are resolved recursively against `others`.
    pub fn satisfying_pk_intervals(
        &self,
        predicate: &TablePredicate,
        nested: &[FkCondition],
        others: &BTreeMap<String, RelationSummary>,
    ) -> SummaryResult<Vec<Interval>> {
        let mut intervals: Vec<Interval> = Vec::new();
        let mut start: u64 = 0;
        for row in &self.rows {
            let block = Interval::new(start as i64, (start + row.count) as i64);
            start += row.count;
            if !predicate.evaluate(|col| row.values.get(col)) {
                continue;
            }
            let mut nested_ok = true;
            for cond in nested {
                let dim = others.get(&cond.dim_table).ok_or_else(|| {
                    SummaryError::DimensionNotSummarized {
                        table: self.table.clone(),
                        dimension: cond.dim_table.clone(),
                    }
                })?;
                let dim_intervals =
                    dim.satisfying_pk_intervals(&cond.dim_predicate, &cond.nested, others)?;
                let fk_value = row.values.get(&cond.fk_column).and_then(Value::as_i64);
                let inside = fk_value
                    .map(|v| dim_intervals.iter().any(|iv| iv.contains(v)))
                    .unwrap_or(false);
                if !inside {
                    nested_ok = false;
                    break;
                }
            }
            if !nested_ok {
                continue;
            }
            // Merge with the previous interval when contiguous.
            if let Some(last) = intervals.last_mut() {
                if last.hi == block.lo {
                    last.hi = block.hi;
                    continue;
                }
            }
            intervals.push(block);
        }
        Ok(intervals)
    }

    /// Renders the summary as a text table (vendor-screen style).
    pub fn to_display_table(&self, max_rows: usize) -> String {
        let mut columns: Vec<&str> = self
            .rows
            .first()
            .map(|r| r.values.keys().map(String::as_str).collect())
            .unwrap_or_default();
        columns.sort();
        let mut out = String::new();
        out.push_str(&format!(
            "relation: {} (rows regenerated: {})\n",
            self.table, self.total_rows
        ));
        out.push_str("#TUPLES");
        for c in &columns {
            out.push_str(&format!(" | {c}"));
        }
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            out.push_str(&row.count.to_string());
            for c in &columns {
                let v = row.values.get(*c).cloned().unwrap_or(Value::Null);
                out.push_str(&format!(" | {v}"));
            }
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!(
                "... ({} more summary rows)\n",
                self.rows.len() - max_rows
            ));
        }
        out
    }
}

/// The full database summary: one relation summary per table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DatabaseSummary {
    /// Relation summaries keyed by table name.
    pub relations: BTreeMap<String, RelationSummary>,
}

impl DatabaseSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        DatabaseSummary::default()
    }

    /// Adds (or replaces) a relation summary.
    pub fn insert(&mut self, summary: RelationSummary) {
        self.relations.insert(summary.table.clone(), summary);
    }

    /// Looks up a relation summary.
    pub fn relation(&self, table: &str) -> Option<&RelationSummary> {
        self.relations.get(table)
    }

    /// Total number of tuples regenerable from the summary.
    pub fn total_rows(&self) -> u64 {
        self.relations.values().map(|r| r.total_rows).sum()
    }

    /// Total number of summary rows across relations.
    pub fn total_summary_rows(&self) -> usize {
        self.relations
            .values()
            .map(RelationSummary::row_count)
            .sum()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.relations
            .values()
            .map(RelationSummary::size_bytes)
            .sum()
    }

    /// The compression ratio: regenerated tuples per summary byte.
    pub fn rows_per_byte(&self) -> f64 {
        let bytes = self.size_bytes();
        if bytes == 0 {
            return 0.0;
        }
        self.total_rows() as f64 / bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_query::predicate::{ColumnPredicate, CompareOp};

    fn item_summary() -> RelationSummary {
        // The Table-1 style ITEM summary: three value groups.
        let mut s = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_manager_id".to_string(), Value::Integer(40));
        v1.insert("i_category".to_string(), Value::str("Music"));
        s.push_row(917, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("i_manager_id".to_string(), Value::Integer(91));
        v2.insert("i_category".to_string(), Value::str("Women"));
        s.push_row(21, v2);
        let mut v3 = BTreeMap::new();
        v3.insert("i_manager_id".to_string(), Value::Integer(0));
        v3.insert("i_category".to_string(), Value::str("Men"));
        s.push_row(25, v3);
        s
    }

    #[test]
    fn pk_blocks_are_contiguous() {
        let s = item_summary();
        assert_eq!(s.total_rows, 963);
        assert_eq!(s.pk_block(0), Some(Interval::new(0, 917)));
        assert_eq!(s.pk_block(1), Some(Interval::new(917, 938)));
        assert_eq!(s.pk_block(2), Some(Interval::new(938, 963)));
        assert_eq!(s.pk_block(3), None);
    }

    #[test]
    fn block_runs_tile_the_range() {
        let s = item_summary();
        // Full range: one run per block, matching pk_block exactly.
        let full: Vec<_> = s.block_runs(0..s.total_rows).collect();
        assert_eq!(full.len(), 3);
        for run in &full {
            let iv = s.pk_block(run.block).unwrap();
            assert_eq!((iv.lo as u64, iv.hi as u64), (run.rows.start, run.rows.end));
            assert_eq!(run.row, &s.rows[run.block]);
        }
        // A range straddling two block boundaries: clamped runs, exact tiling.
        let runs: Vec<_> = s.block_runs(900..940).map(|r| (r.block, r.rows)).collect();
        assert_eq!(runs, vec![(0, 900..917), (1, 917..938), (2, 938..940)]);
        // Ranges beyond the relation are clamped; empty ranges yield nothing.
        assert_eq!(s.block_runs(950..10_000).count(), 1);
        assert_eq!(s.block_runs(963..970).count(), 0);
        assert_eq!(s.block_runs(10..10).count(), 0);
    }

    #[test]
    fn zero_count_rows_are_dropped() {
        let mut s = RelationSummary::new("t", None);
        s.push_row(0, BTreeMap::new());
        assert_eq!(s.row_count(), 0);
        assert_eq!(s.total_rows, 0);
    }

    #[test]
    fn satisfying_pk_intervals_for_predicate() {
        let s = item_summary();
        let others = BTreeMap::new();
        // Predicate matching the first and third groups (manager id < 50).
        let pred = TablePredicate::always_true().with(ColumnPredicate::new(
            "i_manager_id",
            CompareOp::Lt,
            50,
        ));
        let ivs = s.satisfying_pk_intervals(&pred, &[], &others).unwrap();
        assert_eq!(ivs, vec![Interval::new(0, 917), Interval::new(938, 963)]);
        // A predicate matching consecutive groups merges the blocks.
        let pred = TablePredicate::always_true().with(ColumnPredicate::new(
            "i_manager_id",
            CompareOp::Ge,
            0,
        ));
        let ivs = s.satisfying_pk_intervals(&pred, &[], &others).unwrap();
        assert_eq!(ivs, vec![Interval::new(0, 963)]);
        // Non-matching predicate.
        let pred = TablePredicate::always_true().with(ColumnPredicate::new(
            "i_manager_id",
            CompareOp::Gt,
            1000,
        ));
        assert!(s
            .satisfying_pk_intervals(&pred, &[], &others)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn satisfying_pk_intervals_with_nested_condition() {
        // fact "sales" references "item"; item summary above.
        let mut sales = RelationSummary::new("store_sales", Some("ss_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("ss_item_fk".to_string(), Value::Integer(100)); // inside item block 0
        sales.push_row(10, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("ss_item_fk".to_string(), Value::Integer(950)); // inside item block 2
        sales.push_row(5, v2);

        let mut others = BTreeMap::new();
        others.insert("item".to_string(), item_summary());

        let nested = vec![FkCondition {
            fk_column: "ss_item_fk".to_string(),
            dim_table: "item".to_string(),
            dim_predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                "i_category",
                CompareOp::Eq,
                "Music",
            )),
            nested: vec![],
        }];
        let ivs = sales
            .satisfying_pk_intervals(&TablePredicate::always_true(), &nested, &others)
            .unwrap();
        // Only the first sales group references a Music item.
        assert_eq!(ivs, vec![Interval::new(0, 10)]);

        // Unknown dimension produces an error.
        let bad = vec![FkCondition {
            fk_column: "ss_item_fk".to_string(),
            dim_table: "missing".to_string(),
            dim_predicate: TablePredicate::always_true(),
            nested: vec![],
        }];
        assert!(sales
            .satisfying_pk_intervals(&TablePredicate::always_true(), &bad, &others)
            .is_err());
    }

    #[test]
    fn database_summary_accounting() {
        let mut db = DatabaseSummary::new();
        db.insert(item_summary());
        assert_eq!(db.total_rows(), 963);
        assert_eq!(db.total_summary_rows(), 3);
        assert!(db.relation("item").is_some());
        assert!(db.relation("missing").is_none());
        assert!(db.size_bytes() > 0);
        assert!(
            db.size_bytes() < 1024,
            "a 3-row summary must be far below 1 KB"
        );
        assert!(db.rows_per_byte() > 1.0);
    }

    #[test]
    fn display_table_contains_tuple_counts() {
        let s = item_summary();
        let text = s.to_display_table(2);
        assert!(text.contains("#TUPLES"));
        assert!(text.contains("917"));
        assert!(text.contains("Music"));
        assert!(text.contains("more summary rows"));
    }

    #[test]
    fn serde_round_trip() {
        let mut db = DatabaseSummary::new();
        db.insert(item_summary());
        let json = serde_json::to_string(&db).unwrap();
        let back: DatabaseSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(db, back);
    }
}
