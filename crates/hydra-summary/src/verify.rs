//! Volumetric-similarity verification.
//!
//! Replays every volumetric constraint of the workload against the database
//! summary and reports the achieved vs. target cardinalities.  This is the
//! data behind the vendor screen's accuracy plot ("percentage of volumetric
//! constraints satisfied within a given relative error") and experiments
//! E2 / E7.

use crate::error::{SummaryError, SummaryResult};
use crate::summary::DatabaseSummary;
use hydra_catalog::types::Value;
use hydra_query::aqp::VolumetricConstraint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of checking one volumetric constraint against the summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintCheck {
    /// Constraint label (query + plan edge).
    pub label: String,
    /// Constrained relation.
    pub table: String,
    /// Target cardinality from the AQP annotation.
    pub target: u64,
    /// Cardinality achieved by the regenerated data.
    pub achieved: u64,
    /// `|achieved - target|`.
    pub absolute_error: u64,
    /// `absolute_error / max(target, 1)`.
    pub relative_error: f64,
}

/// Accuracy report across all constraints of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct VolumetricAccuracyReport {
    /// One check per constraint.
    pub checks: Vec<ConstraintCheck>,
}

impl VolumetricAccuracyReport {
    /// Number of constraints checked.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True when no constraints were checked.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Fraction of constraints with relative error at most `threshold`.
    pub fn fraction_within(&self, threshold: f64) -> f64 {
        if self.checks.is_empty() {
            return 1.0;
        }
        let n = self
            .checks
            .iter()
            .filter(|c| c.relative_error <= threshold + 1e-12)
            .count();
        n as f64 / self.checks.len() as f64
    }

    /// Fraction of constraints satisfied exactly.
    pub fn fraction_exact(&self) -> f64 {
        self.fraction_within(0.0)
    }

    /// Largest relative error observed.
    pub fn max_relative_error(&self) -> f64 {
        self.checks
            .iter()
            .map(|c| c.relative_error)
            .fold(0.0, f64::max)
    }

    /// Mean relative error.
    pub fn mean_relative_error(&self) -> f64 {
        if self.checks.is_empty() {
            return 0.0;
        }
        self.checks.iter().map(|c| c.relative_error).sum::<f64>() / self.checks.len() as f64
    }

    /// `(threshold, fraction satisfied)` pairs — the vendor screen's CDF plot.
    pub fn error_cdf(&self, thresholds: &[f64]) -> Vec<(f64, f64)> {
        thresholds
            .iter()
            .map(|t| (*t, self.fraction_within(*t)))
            .collect()
    }

    /// Renders the CDF as a small text table.
    pub fn to_display_table(&self) -> String {
        let mut out = String::from("relative error <= | fraction of constraints\n");
        for (t, f) in self.error_cdf(&[0.0, 0.01, 0.05, 0.10, 0.25, 1.0]) {
            out.push_str(&format!("{:>17} | {:.3}\n", format!("{:.2}", t), f));
        }
        out.push_str(&format!(
            "constraints: {}, exact: {:.1}%, max rel err: {:.4}\n",
            self.len(),
            100.0 * self.fraction_exact(),
            self.max_relative_error()
        ));
        out
    }
}

/// Checks every constraint against the summary.
pub fn verify_summary(
    summary: &DatabaseSummary,
    constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
) -> SummaryResult<VolumetricAccuracyReport> {
    let mut checks = Vec::new();
    for (table, constraints) in constraints_by_table {
        if summary.relation(table).is_none() {
            return Err(SummaryError::Catalog(format!(
                "no summary for relation `{table}`"
            )));
        }
        for c in constraints {
            let achieved = achieved_cardinality(summary, table, c)?;
            let target = c.cardinality;
            let absolute_error = achieved.abs_diff(target);
            checks.push(ConstraintCheck {
                label: c.label.clone(),
                table: table.clone(),
                target,
                achieved,
                absolute_error,
                relative_error: absolute_error as f64 / (target.max(1)) as f64,
            });
        }
    }
    Ok(VolumetricAccuracyReport { checks })
}

/// Computes the cardinality the regenerated relation achieves for one
/// constraint: the number of tuples whose value vector satisfies the local
/// predicate and whose foreign keys land in satisfying dimension blocks.
pub fn achieved_cardinality(
    summary: &DatabaseSummary,
    table: &str,
    constraint: &VolumetricConstraint,
) -> SummaryResult<u64> {
    let relation = summary
        .relation(table)
        .ok_or_else(|| SummaryError::Catalog(format!("no summary for relation `{table}`")))?;

    // Resolve FK conditions to PK interval sets once.
    let mut fk_intervals = Vec::with_capacity(constraint.fk_conditions.len());
    for cond in &constraint.fk_conditions {
        let dim = summary.relation(&cond.dim_table).ok_or_else(|| {
            SummaryError::DimensionNotSummarized {
                table: table.to_string(),
                dimension: cond.dim_table.clone(),
            }
        })?;
        let intervals =
            dim.satisfying_pk_intervals(&cond.dim_predicate, &cond.nested, &summary.relations)?;
        fk_intervals.push((cond.fk_column.clone(), intervals));
    }

    let mut achieved = 0u64;
    for row in &relation.rows {
        if !constraint.predicate.evaluate(|c| row.values.get(c)) {
            continue;
        }
        let fks_ok = fk_intervals.iter().all(|(fk_column, intervals)| {
            row.values
                .get(fk_column)
                .and_then(Value::as_i64)
                .map(|v| intervals.iter().any(|iv| iv.contains(v)))
                .unwrap_or(false)
        });
        if fks_ok {
            achieved += row.count;
        }
    }
    Ok(achieved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::RelationSummary;
    use hydra_query::aqp::FkCondition;
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

    fn sample_summary() -> DatabaseSummary {
        let mut item = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_category".to_string(), Value::str("Music"));
        item.push_row(600, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("i_category".to_string(), Value::str("Books"));
        item.push_row(400, v2);

        let mut sales = RelationSummary::new("store_sales", Some("ss_sk".to_string()));
        let mut s1 = BTreeMap::new();
        s1.insert("ss_item_fk".to_string(), Value::Integer(10)); // Music block
        s1.insert("ss_quantity".to_string(), Value::Integer(5));
        sales.push_row(70, s1);
        let mut s2 = BTreeMap::new();
        s2.insert("ss_item_fk".to_string(), Value::Integer(700)); // Books block
        s2.insert("ss_quantity".to_string(), Value::Integer(20));
        sales.push_row(30, s2);

        let mut db = DatabaseSummary::new();
        db.insert(item);
        db.insert(sales);
        db
    }

    fn constraints() -> BTreeMap<String, Vec<VolumetricConstraint>> {
        let mut map: BTreeMap<String, Vec<VolumetricConstraint>> = BTreeMap::new();
        map.entry("item".into())
            .or_default()
            .push(VolumetricConstraint {
                table: "item".into(),
                predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                    "i_category",
                    CompareOp::Eq,
                    "Music",
                )),
                fk_conditions: vec![],
                cardinality: 600,
                label: "q1#1".into(),
            });
        map.entry("store_sales".into())
            .or_default()
            .push(VolumetricConstraint {
                table: "store_sales".into(),
                predicate: TablePredicate::always_true(),
                fk_conditions: vec![FkCondition {
                    fk_column: "ss_item_fk".into(),
                    dim_table: "item".into(),
                    dim_predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                        "i_category",
                        CompareOp::Eq,
                        "Music",
                    )),
                    nested: vec![],
                }],
                cardinality: 75,
                label: "q1#0".into(),
            });
        map.entry("store_sales".into())
            .or_default()
            .push(VolumetricConstraint {
                table: "store_sales".into(),
                predicate: TablePredicate::always_true(),
                fk_conditions: vec![],
                cardinality: 100,
                label: "q1#scan".into(),
            });
        map
    }

    #[test]
    fn verification_computes_achieved_and_errors() {
        let report = verify_summary(&sample_summary(), &constraints()).unwrap();
        assert_eq!(report.len(), 3);
        let by_label: BTreeMap<&str, &ConstraintCheck> = report
            .checks
            .iter()
            .map(|c| (c.label.as_str(), c))
            .collect();
        // item Music constraint is exact.
        assert_eq!(by_label["q1#1"].achieved, 600);
        assert_eq!(by_label["q1#1"].relative_error, 0.0);
        // join constraint: 70 achieved vs 75 target → rel err ≈ 6.7%.
        assert_eq!(by_label["q1#0"].achieved, 70);
        assert_eq!(by_label["q1#0"].absolute_error, 5);
        assert!((by_label["q1#0"].relative_error - 5.0 / 75.0).abs() < 1e-12);
        // scan constraint exact.
        assert_eq!(by_label["q1#scan"].achieved, 100);
    }

    #[test]
    fn report_summaries_and_cdf() {
        let report = verify_summary(&sample_summary(), &constraints()).unwrap();
        assert!((report.fraction_exact() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.fraction_within(0.10), 1.0);
        assert!(report.max_relative_error() < 0.10);
        assert!(report.mean_relative_error() > 0.0);
        let cdf = report.error_cdf(&[0.0, 0.1]);
        assert_eq!(cdf[1].1, 1.0);
        let text = report.to_display_table();
        assert!(text.contains("relative error"));
        assert!(text.contains("constraints: 3"));
    }

    #[test]
    fn empty_report() {
        let report = VolumetricAccuracyReport::default();
        assert!(report.is_empty());
        assert_eq!(report.fraction_within(0.0), 1.0);
        assert_eq!(report.max_relative_error(), 0.0);
        assert_eq!(report.mean_relative_error(), 0.0);
    }

    #[test]
    fn missing_relation_is_an_error() {
        let mut map: BTreeMap<String, Vec<VolumetricConstraint>> = BTreeMap::new();
        map.entry("missing".into())
            .or_default()
            .push(VolumetricConstraint {
                table: "missing".into(),
                predicate: TablePredicate::always_true(),
                fk_conditions: vec![],
                cardinality: 1,
                label: "x".into(),
            });
        assert!(verify_summary(&sample_summary(), &map).is_err());
    }
}
