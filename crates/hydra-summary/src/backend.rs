//! Pluggable LP solve backends — the first of the vendor pipeline's swappable
//! stages.
//!
//! The paper formulates one LP per relation over a *region* partition of the
//! attribute space and hands it to a solver (Z3 there, a two-phase simplex
//! here). The baseline it improves on — DataSynth — uses a *grid* partition
//! whose variable count is the product of per-axis boundary counts. Both now
//! live behind the [`LpBackend`] trait so a session can select either at
//! runtime ([`SimplexBackend`] is HYDRA, [`GridBackend`] is the baseline) and
//! future backends (ILP, sampling, external solvers) can slot in without
//! touching the builder.

use crate::axes::RelationAxes;
use crate::error::{SummaryError, SummaryResult};
use crate::solve::{boxed_constraints, formulate_lp, solve_formulated, SolvedRelation};
use crate::summary::RelationSummary;
use hydra_catalog::schema::Table;
use hydra_lp::solver::LpSolver;
use hydra_partition::grid::GridPartition;
use hydra_partition::region::{RegionPartition, RegionPartitioner};
use hydra_query::aqp::VolumetricConstraint;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Everything a backend needs to solve one relation's tuple placement.
pub struct SolveRequest<'a> {
    /// The relation being solved.
    pub table: &'a Table,
    /// Its partitioning axes (workload-referenced columns).
    pub axes: &'a RelationAxes,
    /// The volumetric constraints on this relation.
    pub constraints: &'a [VolumetricConstraint],
    /// Target row count.
    pub row_target: u64,
    /// Already-built summaries of every referenced dimension.
    pub summaries: &'a BTreeMap<String, RelationSummary>,
    /// Budget on LP variables (regions or grid cells).
    pub max_regions: usize,
    /// Whether other relations reference this one (request an interior
    /// solution so FK projections keep distinguishing blocks).
    pub referenced: bool,
    /// The relation's previous solve, when this is a delta re-profile: a
    /// warm-start hint for partitioning and the LP.  Backends are free to
    /// ignore it; honoring it must not change which problems are solvable.
    pub warm: Option<&'a SolvedRelation>,
}

/// A strategy for turning one relation's constraints into an integral tuple
/// placement across partition regions.
pub trait LpBackend: fmt::Debug + Send + Sync {
    /// Stable backend name (used in reports and summary-cache keys).
    fn name(&self) -> &'static str;

    /// A fingerprint of the backend's parameters, mixed into summary-cache
    /// keys so differently-configured backends (e.g. strict vs. recovering
    /// solvers) never share cache entries.
    fn fingerprint(&self) -> u64 {
        0
    }

    /// Solves one relation.
    fn solve_relation(&self, request: &SolveRequest<'_>) -> SummaryResult<SolvedRelation>;
}

/// Fingerprint of an [`LpSolver`]'s behaviour-relevant settings.
fn solver_fingerprint(solver: &LpSolver) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    solver.recover_least_violation.hash(&mut hasher);
    solver.tolerance.to_bits().hash(&mut hasher);
    solver.simplex.max_pivots.hash(&mut hasher);
    hasher.finish()
}

/// HYDRA's pipeline: region partitioning (one LP variable per constraint
/// signature class) + two-phase simplex.
#[derive(Debug, Clone, Default)]
pub struct SimplexBackend {
    /// Solver settings (recovering by default; strict for feasibility probes).
    pub solver: LpSolver,
}

impl SimplexBackend {
    /// Backend with explicit solver settings.
    pub fn new(solver: LpSolver) -> Self {
        SimplexBackend { solver }
    }

    /// Backend that fails on infeasible systems instead of recovering with a
    /// least-violation solution (scenario feasibility probes).
    pub fn strict() -> Self {
        SimplexBackend {
            solver: LpSolver::strict(),
        }
    }
}

impl LpBackend for SimplexBackend {
    fn name(&self) -> &'static str {
        "simplex-region"
    }

    fn fingerprint(&self) -> u64 {
        solver_fingerprint(&self.solver)
    }

    fn solve_relation(&self, request: &SolveRequest<'_>) -> SummaryResult<SolvedRelation> {
        crate::solve::formulate_and_solve_delta(
            request.table,
            request.axes,
            request.constraints,
            request.row_target,
            request.summaries,
            &self.solver,
            request.max_regions,
            request.referenced,
            request.warm,
        )
    }
}

/// The DataSynth-style grid baseline: every axis is cut at every predicate
/// boundary and every grid cell becomes one LP variable.
///
/// Variable counts grow with the *product* of per-axis boundary counts, so
/// this backend refuses workloads whose grid exceeds `max_regions` cells
/// (reproducing the paper's E3 blow-up argument) — use [`SimplexBackend`]
/// there.
#[derive(Debug, Clone, Default)]
pub struct GridBackend {
    /// Solver settings.
    pub solver: LpSolver,
}

impl GridBackend {
    /// Backend with explicit solver settings.
    pub fn new(solver: LpSolver) -> Self {
        GridBackend { solver }
    }
}

impl LpBackend for GridBackend {
    fn name(&self) -> &'static str {
        "grid-baseline"
    }

    fn fingerprint(&self) -> u64 {
        solver_fingerprint(&self.solver)
    }

    fn solve_relation(&self, request: &SolveRequest<'_>) -> SummaryResult<SolvedRelation> {
        let partition_start = Instant::now();
        let pre = boxed_constraints(
            request.table,
            request.axes,
            request.constraints,
            request.summaries,
        )?;
        let unions: Vec<Vec<hydra_partition::nbox::NBox>> =
            pre.boxed.iter().map(|(_, boxes)| boxes.clone()).collect();

        let partition = if unions.is_empty() && request.axes.space.dims() == 0 {
            // Degenerate: no referenced columns at all. Fall back to the
            // region partitioner, which handles the empty space.
            RegionPartitioner::new(request.axes.space.clone()).partition()?
        } else {
            let grid = GridPartition::build(request.axes.space.clone(), &unions)?;
            let cells = grid.cells(request.max_regions).ok_or_else(|| {
                SummaryError::Invalid(format!(
                    "grid partition of `{}` needs {} cells (budget {}); \
                     the grid baseline cannot encode this workload — use the simplex backend",
                    request.table.name,
                    grid.num_cells(),
                    request.max_regions
                ))
            })?;
            RegionPartition::from_elementary_cells(request.axes.space.clone(), unions, cells)?
        };
        let partition_time = partition_start.elapsed();

        let lp = formulate_lp(request.table, &partition, &pre.boxed, request.row_target);
        solve_formulated(
            partition,
            &lp,
            request.row_target,
            &self.solver,
            request.referenced,
            partition_time,
            &pre,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
    use hydra_catalog::types::DataType;
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

    fn schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
                    .column(
                        ColumnBuilder::new("B", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
            })
            .build()
            .unwrap()
    }

    fn constraint(column: &str, lo: i64, hi: i64, card: u64, label: &str) -> VolumetricConstraint {
        VolumetricConstraint {
            table: "S".into(),
            predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new(column, CompareOp::Ge, lo))
                .with(ColumnPredicate::new(column, CompareOp::Lt, hi)),
            fk_conditions: vec![],
            cardinality: card,
            label: label.into(),
        }
    }

    fn solve_with(backend: &dyn LpBackend, cs: &[VolumetricConstraint]) -> SolvedRelation {
        let schema = schema();
        let table = schema.table("S").unwrap();
        let axes = RelationAxes::build(table, cs, &BTreeMap::new()).unwrap();
        backend
            .solve_relation(&SolveRequest {
                table,
                axes: &axes,
                constraints: cs,
                row_target: 1000,
                summaries: &BTreeMap::new(),
                max_regions: 100_000,
                referenced: false,
                warm: None,
            })
            .unwrap()
    }

    #[test]
    fn both_backends_satisfy_the_same_constraints() {
        let cs = vec![
            constraint("A", 20, 60, 400, "q1#1"),
            constraint("B", 0, 50, 300, "q2#1"),
        ];
        for backend in [
            &SimplexBackend::default() as &dyn LpBackend,
            &GridBackend::default() as &dyn LpBackend,
        ] {
            let solved = solve_with(backend, &cs);
            assert_eq!(
                solved.region_counts.iter().sum::<u64>(),
                1000,
                "{} total",
                backend.name()
            );
            for (ci, c) in cs.iter().enumerate() {
                let achieved: u64 = solved
                    .partition
                    .regions_in_constraint(ci)
                    .iter()
                    .map(|&r| solved.region_counts[r])
                    .sum();
                assert_eq!(achieved, c.cardinality, "{} {}", backend.name(), c.label);
            }
        }
    }

    #[test]
    fn grid_uses_at_least_as_many_variables_as_regions() {
        // Two independent axes, each with two disjoint ranges: regions stay
        // linear in the predicate count, the grid is the cross product.
        let cs = vec![
            constraint("A", 10, 20, 50, "a1"),
            constraint("A", 40, 60, 100, "a2"),
            constraint("B", 5, 15, 80, "b1"),
            constraint("B", 50, 90, 200, "b2"),
        ];
        let simplex = solve_with(&SimplexBackend::default(), &cs);
        let grid = solve_with(&GridBackend::default(), &cs);
        assert!(
            grid.stats.variables >= simplex.stats.variables,
            "grid {} < regions {}",
            grid.stats.variables,
            simplex.stats.variables
        );
        assert_eq!(grid.region_counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn grid_refuses_oversized_grids() {
        let schema = schema();
        let table = schema.table("S").unwrap();
        let cs: Vec<VolumetricConstraint> = (0..12)
            .map(|i| constraint("A", i * 8, i * 8 + 4, 10, &format!("q{i}")))
            .chain((0..12).map(|i| constraint("B", i * 8, i * 8 + 4, 10, &format!("p{i}"))))
            .collect();
        let axes = RelationAxes::build(table, &cs, &BTreeMap::new()).unwrap();
        let err = GridBackend::default()
            .solve_relation(&SolveRequest {
                table,
                axes: &axes,
                constraints: &cs,
                row_target: 1000,
                summaries: &BTreeMap::new(),
                max_regions: 16,
                referenced: false,
                warm: None,
            })
            .unwrap_err();
        assert!(matches!(err, SummaryError::Invalid(_)), "got {err:?}");
    }
}
