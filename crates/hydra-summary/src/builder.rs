//! End-to-end summary construction across all relations.
//!
//! The builder processes relations in referential topological order
//! (dimensions before facts) so that every foreign-key axis can point at the
//! already-aligned primary-key blocks of the referenced relation.  This
//! ordering *is* the referential post-processing of the paper's architecture:
//! by construction, every regenerated foreign key lands on an existing
//! auto-numbered primary key.
//!
//! Within one stratum of that order (relations whose dimensions are all
//! already built) the per-relation preprocess → solve → summarize work is
//! independent — the paper's LP decomposition — so the builder fans it out
//! across threads under [`SummaryBuilderConfig::parallelism`].  Results are
//! merged back in deterministic relation order, so parallel construction is
//! bit-identical to sequential.
//!
//! Solved relations can also be reused across builds through a
//! [`SummaryCache`]: entries are keyed by a fingerprint of everything that
//! determines the result (constraints, row target, FK domain widths, backend,
//! strategy, statistics), which is what makes what-if scenario sweeps cheap —
//! only relations whose constraint signature changed are re-solved.

use crate::axes::RelationAxes;
use crate::backend::{LpBackend, SimplexBackend, SolveRequest};
use crate::delta::{
    DeltaAction, DeltaBuild, DeltaBuildReport, RelationBaseline, RelationDeltaStats, SolveBaseline,
    SummaryDiff,
};
use crate::error::{SummaryError, SummaryResult};
use crate::solve::LpStats;
use crate::strategy::{AlignedSummary, SummaryStrategy};
use crate::summary::{DatabaseSummary, RelationSummary};
use hydra_catalog::metadata::DatabaseMetadata;
use hydra_catalog::schema::{Schema, Table};
use hydra_lp::simplex::WarmOutcome;
use hydra_query::aqp::VolumetricConstraint;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::align::AlignmentStrategy;
use hydra_partition::region::DEFAULT_MAX_REGIONS;

/// Configuration of the summary builder.
#[derive(Debug, Clone)]
pub struct SummaryBuilderConfig {
    /// The LP solve backend (HYDRA's region+simplex by default; the grid
    /// baseline and custom backends plug in here).
    pub lp_backend: Arc<dyn LpBackend>,
    /// The summary-generation strategy (deterministic alignment by default;
    /// sampled for the E10 ablation).
    pub strategy: Arc<dyn SummaryStrategy>,
    /// Piece budget for partitioning (regions or grid cells).
    pub max_regions: usize,
    /// Whether to fill unreferenced columns from client statistics.
    pub use_statistics_fillers: bool,
    /// Worker threads for per-relation solving within a referential stratum
    /// (1 = sequential; results are identical either way).
    pub parallelism: usize,
}

impl Default for SummaryBuilderConfig {
    fn default() -> Self {
        SummaryBuilderConfig {
            lp_backend: Arc::new(SimplexBackend::default()),
            strategy: Arc::new(AlignedSummary::default()),
            max_regions: DEFAULT_MAX_REGIONS,
            use_statistics_fillers: true,
            parallelism: 1,
        }
    }
}

impl SummaryBuilderConfig {
    /// Replaces the LP backend.
    pub fn with_backend(mut self, backend: Arc<dyn LpBackend>) -> Self {
        self.lp_backend = backend;
        self
    }

    /// Replaces the summary strategy with alignment of the given flavour.
    pub fn with_alignment(mut self, alignment: AlignmentStrategy) -> Self {
        self.strategy = Arc::new(AlignedSummary::new(alignment));
        self
    }

    /// Sets the per-stratum worker thread count.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Sets the partitioning piece budget.
    pub fn with_max_regions(mut self, max_regions: usize) -> Self {
        self.max_regions = max_regions;
        self
    }
}

/// A reusable store of solved per-relation summaries, keyed by constraint
/// signature (see [`SummaryBuilder::build_with_cache`]).
pub trait SummaryCache: std::fmt::Debug + Send + Sync {
    /// Looks up a solved relation.
    fn get(&self, key: u64) -> Option<(RelationSummary, RelationBuildStats)>;
    /// Stores a solved relation.
    fn put(&self, key: u64, summary: RelationSummary, stats: RelationBuildStats);
}

/// The default in-memory, thread-safe summary cache.
#[derive(Debug, Default)]
pub struct InMemorySummaryCache {
    entries: Mutex<HashMap<u64, (RelationSummary, RelationBuildStats)>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl InMemorySummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

impl SummaryCache for InMemorySummaryCache {
    fn get(&self, key: u64) -> Option<(RelationSummary, RelationBuildStats)> {
        let found = self.entries.lock().unwrap().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: u64, summary: RelationSummary, stats: RelationBuildStats) {
        self.entries.lock().unwrap().insert(key, (summary, stats));
    }
}

/// Per-relation construction statistics (vendor-screen LP table; experiments
/// E1/E3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationBuildStats {
    /// Relation name.
    pub table: String,
    /// Number of columns the workload references on this relation.
    pub referenced_columns: usize,
    /// Number of volumetric constraints on this relation (before dedup).
    pub workload_constraints: usize,
    /// LP statistics.
    pub lp: LpStats,
    /// Number of summary rows produced.
    pub summary_rows: usize,
    /// Number of tuples the summary regenerates.
    pub total_rows: u64,
    /// Whether this relation was served from a [`SummaryCache`].
    pub from_cache: bool,
}

/// The overall construction report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SummaryBuildReport {
    /// Per-relation statistics, in processing order.
    pub relations: Vec<RelationBuildStats>,
    /// Total wall-clock construction time.
    pub total_time: Duration,
    /// Final summary size in bytes.
    pub summary_bytes: usize,
    /// How many relations were served from the summary cache.
    pub cached_relations: usize,
}

impl SummaryBuildReport {
    /// Total number of LP variables across relations.
    pub fn total_lp_variables(&self) -> usize {
        self.relations.iter().map(|r| r.lp.variables).sum()
    }

    /// Total number of LP constraints across relations.
    pub fn total_lp_constraints(&self) -> usize {
        self.relations.iter().map(|r| r.lp.constraints).sum()
    }

    /// Total LP solve time across relations.
    pub fn total_solve_time(&self) -> Duration {
        self.relations.iter().map(|r| r.lp.solve_time).sum()
    }

    /// Renders a vendor-screen style text table of the LP statistics.
    pub fn to_display_table(&self) -> String {
        let mut out = String::from(
            "relation | referenced cols | constraints | LP vars | LP constraints | solve time (ms) | summary rows\n",
        );
        for r in &self.relations {
            out.push_str(&format!(
                "{} | {} | {} | {} | {} | {:.2} | {}{}\n",
                r.table,
                r.referenced_columns,
                r.workload_constraints,
                r.lp.variables,
                r.lp.constraints,
                r.lp.solve_time.as_secs_f64() * 1e3,
                r.summary_rows,
                if r.from_cache { " (cached)" } else { "" }
            ));
        }
        out.push_str(&format!(
            "total: {} vars, {} constraints, {:.2} ms construction, {} bytes\n",
            self.total_lp_variables(),
            self.total_lp_constraints(),
            self.total_time.as_secs_f64() * 1e3,
            self.summary_bytes
        ));
        out
    }
}

/// Builds database summaries from per-relation volumetric constraints.
#[derive(Debug, Clone, Default)]
pub struct SummaryBuilder {
    /// Builder configuration.
    pub config: SummaryBuilderConfig,
}

impl SummaryBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: SummaryBuilderConfig) -> Self {
        SummaryBuilder { config }
    }

    /// Builds the database summary.
    ///
    /// * `schema` — the client schema;
    /// * `row_targets` — target row count per relation (the client's row
    ///   counts, or scaled counts for what-if scenarios);
    /// * `constraints_by_table` — the preprocessed volumetric constraints;
    /// * `metadata` — optional client statistics used to fill columns the
    ///   workload never references.
    pub fn build(
        &self,
        schema: &Schema,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
    ) -> SummaryResult<(DatabaseSummary, SummaryBuildReport)> {
        self.build_with_cache(schema, row_targets, constraints_by_table, metadata, None)
    }

    /// [`SummaryBuilder::build`] with a summary cache: relations whose
    /// constraint signature (constraints, row target, FK domain widths,
    /// backend, strategy, statistics) matches a cached entry are reused
    /// instead of re-solved.
    pub fn build_with_cache(
        &self,
        schema: &Schema,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
        cache: Option<&dyn SummaryCache>,
    ) -> SummaryResult<(DatabaseSummary, SummaryBuildReport)> {
        let start = Instant::now();
        let order = schema
            .topological_order()
            .map_err(|e| SummaryError::Catalog(e.to_string()))?;
        let referenced = referenced_set(&order);
        let strata = referential_strata(&order);

        let mut summaries: BTreeMap<String, RelationSummary> = BTreeMap::new();
        let mut report = SummaryBuildReport::default();

        for stratum in &strata {
            let built = self.build_stratum(
                stratum,
                &summaries,
                row_targets,
                constraints_by_table,
                metadata,
                cache,
                &referenced,
            )?;
            for (summary, stats) in built {
                if stats.from_cache {
                    report.cached_relations += 1;
                }
                report.relations.push(stats);
                summaries.insert(summary.table.clone(), summary);
            }
        }

        let mut db = DatabaseSummary::new();
        for (_, s) in summaries {
            db.insert(s);
        }
        report.total_time = start.elapsed();
        report.summary_bytes = db.size_bytes();
        Ok((db, report))
    }

    /// Builds every relation of one referential stratum, in parallel when
    /// configured.  Results come back in stratum order regardless of thread
    /// scheduling.
    #[allow(clippy::too_many_arguments)]
    fn build_stratum(
        &self,
        stratum: &[&Table],
        summaries: &BTreeMap<String, RelationSummary>,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
        cache: Option<&dyn SummaryCache>,
        referenced: &std::collections::BTreeSet<&str>,
    ) -> SummaryResult<Vec<(RelationSummary, RelationBuildStats)>> {
        self.run_stratum(stratum.len(), |index| {
            self.build_relation(
                stratum[index],
                summaries,
                row_targets,
                constraints_by_table,
                metadata,
                cache,
                referenced.contains(stratum[index].name.as_str()),
            )
        })
    }

    /// Runs `f(0..count)` across the configured worker threads, returning
    /// results in index order regardless of thread scheduling (the shared
    /// fan-out under both the cache-based and the delta build flows).
    fn run_stratum<T: Send>(
        &self,
        count: usize,
        f: impl Fn(usize) -> SummaryResult<T> + Sync,
    ) -> SummaryResult<Vec<T>> {
        let workers = self.config.parallelism.min(count).max(1);
        if workers == 1 {
            return (0..count).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<SummaryResult<T>>>> =
            Mutex::new((0..count).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= count {
                        break;
                    }
                    let outcome = f(index);
                    results.lock().unwrap()[index] = Some(outcome);
                });
            }
        });
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("worker completed every claimed index"))
            .collect()
    }

    /// Solves and summarizes one relation (through the cache when provided).
    #[allow(clippy::too_many_arguments)]
    fn build_relation(
        &self,
        table: &Table,
        summaries: &BTreeMap<String, RelationSummary>,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
        cache: Option<&dyn SummaryCache>,
        is_referenced: bool,
    ) -> SummaryResult<(RelationSummary, RelationBuildStats)> {
        let empty: Vec<VolumetricConstraint> = Vec::new();
        let row_target = row_targets.get(&table.name).copied().unwrap_or(0);
        let constraints = constraints_by_table.get(&table.name).unwrap_or(&empty);

        // Foreign-key axis widths come from the already-built dimension
        // summaries (falling back to the row target when a dimension has
        // no constraints of its own but a known size).
        let mut fk_domains: BTreeMap<String, u64> = BTreeMap::new();
        for fk in table.foreign_keys() {
            let width = summaries
                .get(&fk.referenced_table)
                .map(|s| s.total_rows)
                .or_else(|| row_targets.get(&fk.referenced_table).copied())
                .unwrap_or(0);
            fk_domains.insert(fk.referenced_table.clone(), width.max(1));
        }

        let stats_source = if self.config.use_statistics_fillers {
            metadata.and_then(|m| m.tables.get(&table.name))
        } else {
            None
        };

        let cache_key = cache.map(|_| {
            self.cache_key(
                table,
                row_target,
                &fk_domains,
                constraints,
                stats_source,
                summaries,
                is_referenced,
            )
        });
        if let (Some(cache), Some(key)) = (cache, cache_key) {
            if let Some((summary, mut stats)) = cache.get(key) {
                stats.from_cache = true;
                return Ok((summary, stats));
            }
        }

        let axes = RelationAxes::build(table, constraints, &fk_domains)?;
        let solved = self.config.lp_backend.solve_relation(&SolveRequest {
            table,
            axes: &axes,
            constraints,
            row_target,
            summaries,
            max_regions: self.config.max_regions,
            referenced: is_referenced,
            warm: None,
        })?;
        let summary = self
            .config
            .strategy
            .summarize(table, &axes, &solved, stats_source);

        let stats = RelationBuildStats {
            table: table.name.clone(),
            referenced_columns: axes.columns.len(),
            workload_constraints: constraints.len(),
            lp: solved.stats.clone(),
            summary_rows: summary.row_count(),
            total_rows: summary.total_rows,
            from_cache: false,
        };
        if let (Some(cache), Some(key)) = (cache, cache_key) {
            cache.put(key, summary.clone(), stats.clone());
        }
        Ok((summary, stats))
    }

    /// The cache key of one relation: a fingerprint of every input that
    /// determines its solved summary.
    #[allow(clippy::too_many_arguments)]
    fn cache_key(
        &self,
        table: &Table,
        row_target: u64,
        fk_domains: &BTreeMap<String, u64>,
        constraints: &[VolumetricConstraint],
        stats: Option<&hydra_catalog::stats::TableStatistics>,
        summaries: &BTreeMap<String, RelationSummary>,
        is_referenced: bool,
    ) -> u64 {
        let mut hasher = DefaultHasher::new();
        table.name.hash(&mut hasher);
        row_target.hash(&mut hasher);
        fk_domains.hash(&mut hasher);
        // Constraints and statistics hash through their canonical JSON
        // encoding (they do not implement Hash themselves).
        serde_json::to_string(&constraints.to_vec())
            .unwrap_or_default()
            .hash(&mut hasher);
        if let Some(stats) = stats {
            serde_json::to_string(stats)
                .unwrap_or_default()
                .hash(&mut hasher);
        }
        // FK projections read the referenced dimension summaries, so their
        // content is part of the signature.
        for fk in table.foreign_keys() {
            if let Some(dim) = summaries.get(&fk.referenced_table) {
                serde_json::to_string(dim)
                    .unwrap_or_default()
                    .hash(&mut hasher);
            }
        }
        self.config.lp_backend.name().hash(&mut hasher);
        self.config.lp_backend.fingerprint().hash(&mut hasher);
        self.config.strategy.name().hash(&mut hasher);
        self.config.strategy.fingerprint().hash(&mut hasher);
        self.config.max_regions.hash(&mut hasher);
        self.config.use_statistics_fillers.hash(&mut hasher);
        // Whether this relation is referenced toggles interior refinement,
        // which changes the solved summary; two packages can disagree on it
        // for the same table name.
        is_referenced.hash(&mut hasher);
        hasher.finish()
    }

    /// [`SummaryBuilder::build`] that additionally *retains* every
    /// relation's solve artifacts (constraint signature, region partition,
    /// solved region counts) as a [`SolveBaseline`] — the seed for later
    /// [`SummaryBuilder::build_delta`] calls.
    pub fn build_retaining(
        &self,
        schema: &Schema,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
    ) -> SummaryResult<(DatabaseSummary, SummaryBuildReport, SolveBaseline)> {
        let built =
            self.build_evolving(schema, row_targets, constraints_by_table, metadata, None)?;
        Ok((built.summary, built.report, built.baseline))
    }

    /// Rebuilds the summary *incrementally* against a previous baseline:
    /// relations whose constraint signature is unchanged are reused outright
    /// (bit-identical, no partitioning, no LP), and changed relations
    /// re-solve with the previous partition refined in place and the
    /// previous solution's support warm-starting the simplex.
    ///
    /// The result satisfies the new constraint set exactly as a from-scratch
    /// [`SummaryBuilder::build`] over it does (the `delta_differential`
    /// harness pins this down property by property).
    pub fn build_delta(
        &self,
        schema: &Schema,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
        prev: &SolveBaseline,
    ) -> SummaryResult<DeltaBuild> {
        self.build_evolving(
            schema,
            row_targets,
            constraints_by_table,
            metadata,
            Some(prev),
        )
    }

    /// The shared driver behind [`SummaryBuilder::build_retaining`]
    /// (`prev = None`) and [`SummaryBuilder::build_delta`].
    fn build_evolving(
        &self,
        schema: &Schema,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
        prev: Option<&SolveBaseline>,
    ) -> SummaryResult<DeltaBuild> {
        let start = Instant::now();
        let order = schema
            .topological_order()
            .map_err(|e| SummaryError::Catalog(e.to_string()))?;
        let referenced = referenced_set(&order);
        let strata = referential_strata(&order);

        let mut summaries: BTreeMap<String, RelationSummary> = BTreeMap::new();
        let mut report = SummaryBuildReport::default();
        let mut delta_report = DeltaBuildReport::default();
        let mut baseline = SolveBaseline::default();

        for stratum in &strata {
            let built = self.run_stratum(stratum.len(), |index| {
                let table = stratum[index];
                self.build_relation_evolving(
                    table,
                    &summaries,
                    row_targets,
                    constraints_by_table,
                    metadata,
                    referenced.contains(table.name.as_str()),
                    prev.and_then(|p| p.relations.get(&table.name)),
                )
            })?;
            for (summary, stats, rel_baseline, action) in built {
                if stats.from_cache {
                    report.cached_relations += 1;
                }
                let (lp_variables, solve_micros) = match action {
                    DeltaAction::Reused => (0, 0),
                    _ => (stats.lp.variables, stats.lp.solve_time.as_micros() as u64),
                };
                delta_report.relations.push(RelationDeltaStats {
                    table: stats.table.clone(),
                    action,
                    lp_variables,
                    solve_micros,
                });
                report.relations.push(stats);
                baseline
                    .relations
                    .insert(summary.table.clone(), rel_baseline);
                summaries.insert(summary.table.clone(), summary);
            }
        }

        let mut db = DatabaseSummary::new();
        for (_, s) in summaries {
            db.insert(s);
        }
        report.total_time = start.elapsed();
        report.summary_bytes = db.size_bytes();
        delta_report.total_micros = report.total_time.as_micros() as u64;
        // A full build has no previous summary to diff against; skip the
        // block census instead of diffing against an empty database (the
        // caller discards it anyway — see `build_retaining`).
        let diff = match prev {
            Some(p) => SummaryDiff::between(&p.to_summary(), &db),
            None => SummaryDiff::default(),
        };
        Ok(DeltaBuild {
            summary: db,
            report,
            delta_report,
            baseline,
            diff,
        })
    }

    /// Solves or reuses one relation under the delta flow (see
    /// [`SummaryBuilder::build_delta`] for the decision rules).
    #[allow(clippy::too_many_arguments)]
    fn build_relation_evolving(
        &self,
        table: &Table,
        summaries: &BTreeMap<String, RelationSummary>,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
        is_referenced: bool,
        prev: Option<&RelationBaseline>,
    ) -> SummaryResult<(
        RelationSummary,
        RelationBuildStats,
        RelationBaseline,
        DeltaAction,
    )> {
        let row_target = row_targets.get(&table.name).copied().unwrap_or(0);
        let constraints = constraints_by_table
            .get(&table.name)
            .map(Vec::as_slice)
            .unwrap_or(&[]);

        let mut fk_domains: BTreeMap<String, u64> = BTreeMap::new();
        for fk in table.foreign_keys() {
            let width = summaries
                .get(&fk.referenced_table)
                .map(|s| s.total_rows)
                .or_else(|| row_targets.get(&fk.referenced_table).copied())
                .unwrap_or(0);
            fk_domains.insert(fk.referenced_table.clone(), width.max(1));
        }
        let stats_source = if self.config.use_statistics_fillers {
            metadata.and_then(|m| m.tables.get(&table.name))
        } else {
            None
        };

        let signature = self.cache_key(
            table,
            row_target,
            &fk_domains,
            constraints,
            stats_source,
            summaries,
            is_referenced,
        );

        // Unchanged constraint signature: skip the relation entirely — no
        // partitioning, no LP, and the reused summary is bit-identical, so
        // referencing relations with unchanged constraints reuse in turn
        // (their signatures hash the dimension summaries they project onto).
        if let Some(prev) = prev {
            if prev.signature == signature {
                let mut stats = prev.stats.clone();
                stats.from_cache = true;
                let baseline = RelationBaseline {
                    signature,
                    solved: prev.solved.clone(),
                    summary: prev.summary.clone(),
                    stats: stats.clone(),
                };
                return Ok((prev.summary.clone(), stats, baseline, DeltaAction::Reused));
            }
        }

        let axes = RelationAxes::build(table, constraints, &fk_domains)?;
        let solved = self.config.lp_backend.solve_relation(&SolveRequest {
            table,
            axes: &axes,
            constraints,
            row_target,
            summaries,
            max_regions: self.config.max_regions,
            referenced: is_referenced,
            warm: prev.map(|p| &p.solved),
        })?;
        let summary = self
            .config
            .strategy
            .summarize(table, &axes, &solved, stats_source);
        let stats = RelationBuildStats {
            table: table.name.clone(),
            referenced_columns: axes.columns.len(),
            workload_constraints: constraints.len(),
            lp: solved.stats.clone(),
            summary_rows: summary.row_count(),
            total_rows: summary.total_rows,
            from_cache: false,
        };
        let action = match (prev, solved.stats.warm) {
            (Some(_), WarmOutcome::Hit) => DeltaAction::WarmSolved,
            _ => DeltaAction::ColdSolved,
        };
        let baseline = RelationBaseline {
            signature,
            solved,
            summary: summary.clone(),
            stats: stats.clone(),
        };
        Ok((summary, stats, baseline, action))
    }
}

/// The set of relations that are the target of some foreign key (those get
/// interior LP solutions; see `solve::solve_formulated`).
fn referenced_set<'a>(order: &[&'a Table]) -> std::collections::BTreeSet<&'a str> {
    order
        .iter()
        .flat_map(|t| {
            t.foreign_keys()
                .iter()
                .map(|fk| fk.referenced_table.as_str())
        })
        .collect()
}

/// Referential strata of a topological order: a relation's depth is one more
/// than the deepest relation it references; relations within one stratum are
/// mutually independent and safe to solve concurrently.
fn referential_strata<'a>(order: &[&'a Table]) -> Vec<Vec<&'a Table>> {
    let mut depth: BTreeMap<&str, usize> = BTreeMap::new();
    let mut strata: Vec<Vec<&'a Table>> = Vec::new();
    for &table in order {
        let d = table
            .foreign_keys()
            .iter()
            .map(|fk| depth.get(fk.referenced_table.as_str()).map_or(0, |d| d + 1))
            .max()
            .unwrap_or(0);
        depth.insert(table.name.as_str(), d);
        if strata.len() <= d {
            strata.resize_with(d + 1, Vec::new);
        }
        strata[d].push(table);
    }
    strata
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::GridBackend;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;
    use hydra_query::aqp::FkCondition;
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

    /// The Figure-1 toy schema.
    fn toy_schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
                    .column(
                        ColumnBuilder::new("B", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
            })
            .table("T", |t| {
                t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)),
                    )
            })
            .table("R", |t| {
                t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                    .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
            })
            .build()
            .unwrap()
    }

    fn figure1_constraints() -> BTreeMap<String, Vec<VolumetricConstraint>> {
        let mut map: BTreeMap<String, Vec<VolumetricConstraint>> = BTreeMap::new();
        // σ_{20<=A<60}(S) = 40
        map.entry("S".into())
            .or_default()
            .push(VolumetricConstraint {
                table: "S".into(),
                predicate: TablePredicate::always_true()
                    .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
                    .with(ColumnPredicate::new("A", CompareOp::Lt, 60)),
                fk_conditions: vec![],
                cardinality: 40,
                label: "fig1#3".into(),
            });
        // σ_{2<=C<3}(T) = 1
        map.entry("T".into())
            .or_default()
            .push(VolumetricConstraint {
                table: "T".into(),
                predicate: TablePredicate::always_true()
                    .with(ColumnPredicate::new("C", CompareOp::Ge, 2))
                    .with(ColumnPredicate::new("C", CompareOp::Lt, 3)),
                fk_conditions: vec![],
                cardinality: 1,
                label: "fig1#5".into(),
            });
        // R ⋈ σ(S) = 400
        let s_cond = FkCondition {
            fk_column: "S_fk".into(),
            dim_table: "S".into(),
            dim_predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
                .with(ColumnPredicate::new("A", CompareOp::Lt, 60)),
            nested: vec![],
        };
        map.entry("R".into())
            .or_default()
            .push(VolumetricConstraint {
                table: "R".into(),
                predicate: TablePredicate::always_true(),
                fk_conditions: vec![s_cond.clone()],
                cardinality: 400,
                label: "fig1#1".into(),
            });
        // (R ⋈ σ(S)) ⋈ σ(T) = 40
        let t_cond = FkCondition {
            fk_column: "T_fk".into(),
            dim_table: "T".into(),
            dim_predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new("C", CompareOp::Ge, 2))
                .with(ColumnPredicate::new("C", CompareOp::Lt, 3)),
            nested: vec![],
        };
        map.entry("R".into())
            .or_default()
            .push(VolumetricConstraint {
                table: "R".into(),
                predicate: TablePredicate::always_true(),
                fk_conditions: vec![s_cond, t_cond],
                cardinality: 40,
                label: "fig1#0".into(),
            });
        map
    }

    fn row_targets() -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        m.insert("R".to_string(), 1000);
        m.insert("S".to_string(), 100);
        m.insert("T".to_string(), 10);
        m
    }

    #[test]
    fn figure1_end_to_end_summary() {
        let schema = toy_schema();
        let builder = SummaryBuilder::default();
        let (db, report) = builder
            .build(&schema, &row_targets(), &figure1_constraints(), None)
            .unwrap();

        // Every relation regenerates exactly its target row count.
        assert_eq!(db.relation("R").unwrap().total_rows, 1000);
        assert_eq!(db.relation("S").unwrap().total_rows, 100);
        assert_eq!(db.relation("T").unwrap().total_rows, 10);

        // The summary is tiny compared to the data it regenerates.
        assert!(
            db.size_bytes() < 4096,
            "summary is {} bytes",
            db.size_bytes()
        );
        assert!(db.total_summary_rows() <= 12);

        // Constraint satisfaction spot checks.
        let s = db.relation("S").unwrap();
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        let achieved: u64 = s
            .rows
            .iter()
            .filter(|r| pred.evaluate(|c| r.values.get(c)))
            .map(|r| r.count)
            .sum();
        assert_eq!(achieved, 40);

        // Every R summary row references valid PK positions of S and T.
        let r = db.relation("R").unwrap();
        for row in &r.rows {
            let s_fk = row.values["S_fk"].as_i64().unwrap();
            let t_fk = row.values["T_fk"].as_i64().unwrap();
            assert!(s_fk >= 0 && (s_fk as u64) < 100);
            assert!(t_fk >= 0 && (t_fk as u64) < 10);
        }

        // Report accounting.
        assert_eq!(report.relations.len(), 3);
        assert!(report.total_lp_variables() > 0);
        assert!(report.summary_bytes > 0);
        assert_eq!(report.cached_relations, 0);
        let text = report.to_display_table();
        assert!(text.contains("R |"));
        assert!(text.contains("total:"));
    }

    #[test]
    fn relations_without_constraints_still_get_summaries() {
        let schema = toy_schema();
        let builder = SummaryBuilder::default();
        let (db, _) = builder
            .build(&schema, &row_targets(), &BTreeMap::new(), None)
            .unwrap();
        assert_eq!(db.relation("R").unwrap().total_rows, 1000);
        assert_eq!(db.relation("R").unwrap().row_count(), 1);
        assert_eq!(db.relation("T").unwrap().total_rows, 10);
    }

    #[test]
    fn zero_row_targets_produce_empty_summaries() {
        let schema = toy_schema();
        let builder = SummaryBuilder::default();
        let (db, _) = builder
            .build(&schema, &BTreeMap::new(), &BTreeMap::new(), None)
            .unwrap();
        assert_eq!(db.total_rows(), 0);
        assert_eq!(db.relation("R").unwrap().row_count(), 0);
    }

    #[test]
    fn join_constraint_satisfied_by_fact_summary() {
        let schema = toy_schema();
        let builder = SummaryBuilder::default();
        let constraints = figure1_constraints();
        let (db, _) = builder
            .build(&schema, &row_targets(), &constraints, None)
            .unwrap();

        // Verify the R ⋈ σ(S) = 400 constraint against the generated summary:
        // count R rows whose S_fk lands in a satisfying S block.
        let s = db.relation("S").unwrap();
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        let intervals = s
            .satisfying_pk_intervals(&pred, &[], &db.relations)
            .unwrap();
        let r = db.relation("R").unwrap();
        let achieved: u64 = r
            .rows
            .iter()
            .filter(|row| {
                row.values["S_fk"]
                    .as_i64()
                    .map(|v| intervals.iter().any(|iv| iv.contains(v)))
                    .unwrap_or(false)
            })
            .map(|row| row.count)
            .sum();
        assert_eq!(achieved, 400);
    }

    #[test]
    fn sampled_alignment_config_builds() {
        let schema = toy_schema();
        let builder = SummaryBuilder::new(
            SummaryBuilderConfig::default().with_alignment(AlignmentStrategy::Sampled { seed: 99 }),
        );
        let (db, _) = builder
            .build(&schema, &row_targets(), &figure1_constraints(), None)
            .unwrap();
        assert_eq!(db.relation("R").unwrap().total_rows, 1000);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let schema = toy_schema();
        let constraints = figure1_constraints();
        let sequential = SummaryBuilder::default()
            .build(&schema, &row_targets(), &constraints, None)
            .unwrap();
        let parallel = SummaryBuilder::new(SummaryBuilderConfig::default().with_parallelism(4))
            .build(&schema, &row_targets(), &constraints, None)
            .unwrap();
        assert_eq!(sequential.0, parallel.0, "summaries must be bit-identical");
        // Reports match too, modulo wall-clock timings.
        for (a, b) in sequential.1.relations.iter().zip(&parallel.1.relations) {
            assert_eq!(a.table, b.table);
            assert_eq!(a.lp.variables, b.lp.variables);
            assert_eq!(a.lp.constraints, b.lp.constraints);
            assert_eq!(a.lp.status, b.lp.status);
            assert_eq!(a.summary_rows, b.summary_rows);
            assert_eq!(a.total_rows, b.total_rows);
        }
    }

    #[test]
    fn grid_backend_builds_the_toy_summary() {
        let schema = toy_schema();
        let builder = SummaryBuilder::new(
            SummaryBuilderConfig::default().with_backend(Arc::new(GridBackend::default())),
        );
        let (db, report) = builder
            .build(&schema, &row_targets(), &figure1_constraints(), None)
            .unwrap();
        assert_eq!(db.relation("R").unwrap().total_rows, 1000);
        assert_eq!(db.relation("S").unwrap().total_rows, 100);
        assert!(report.total_lp_variables() > 0);
        // The same spot check as the simplex path: the S constraint holds.
        let s = db.relation("S").unwrap();
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        let achieved: u64 = s
            .rows
            .iter()
            .filter(|r| pred.evaluate(|c| r.values.get(c)))
            .map(|r| r.count)
            .sum();
        assert_eq!(achieved, 40);
    }

    #[test]
    fn delta_build_reuses_unchanged_and_warm_solves_changed() {
        let schema = toy_schema();
        let constraints = figure1_constraints();
        let builder = SummaryBuilder::default();
        let (first, report1, baseline) = builder
            .build_retaining(&schema, &row_targets(), &constraints, None)
            .unwrap();
        assert_eq!(report1.cached_relations, 0);
        assert_eq!(baseline.len(), 3);
        assert_eq!(baseline.to_summary(), first);

        // Identity delta: every relation reused, bit-identical summary,
        // structurally empty diff.
        let built = builder
            .build_delta(&schema, &row_targets(), &constraints, None, &baseline)
            .unwrap();
        assert_eq!(built.summary, first);
        assert_eq!(built.delta_report.reused(), 3);
        assert!(built.diff.is_unchanged());
        assert_eq!(built.report.cached_relations, 3);

        // A cardinality re-annotation on S only (same boxes, new demand):
        // S re-solves (warm — the previous partition is reused outright and
        // the old support closes phase 1), T is untouched, and R re-solves
        // because its FK projection reads the changed S summary.
        let mut revised = constraints.clone();
        revised.get_mut("S").unwrap()[0].cardinality = 50;
        let built = builder
            .build_delta(&schema, &row_targets(), &revised, None, &baseline)
            .unwrap();
        let by_table: BTreeMap<&str, &crate::delta::RelationDeltaStats> = built
            .delta_report
            .relations
            .iter()
            .map(|r| (r.table.as_str(), r))
            .collect();
        assert_eq!(by_table["T"].action, crate::delta::DeltaAction::Reused);
        assert_ne!(by_table["S"].action, crate::delta::DeltaAction::Reused);
        assert_ne!(by_table["R"].action, crate::delta::DeltaAction::Reused);
        assert_eq!(
            by_table["S"].action,
            crate::delta::DeltaAction::WarmSolved,
            "re-annotation keeps the partition and the old support feasible-adjacent"
        );
        // The incremental result satisfies the revised constraints exactly
        // as a from-scratch build does.
        let (scratch, _) = builder
            .build(&schema, &row_targets(), &revised, None)
            .unwrap();
        for table in ["R", "S", "T"] {
            assert_eq!(
                built.summary.relation(table).unwrap().total_rows,
                scratch.relation(table).unwrap().total_rows,
                "{table} row count"
            );
        }
        let s = built.summary.relation("S").unwrap();
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        let achieved: u64 = s
            .rows
            .iter()
            .filter(|r| pred.evaluate(|c| r.values.get(c)))
            .map(|r| r.count)
            .sum();
        assert_eq!(achieved, 50);
        // T carried over bit-identically; S shows up in the diff.
        assert_eq!(
            built.summary.relation("T").unwrap(),
            first.relation("T").unwrap()
        );
        assert!(built.diff.changed_relations().contains(&"S"));
        let diff_t = built
            .diff
            .relations
            .iter()
            .find(|r| r.table == "T")
            .unwrap();
        assert!(diff_t.is_unchanged());
    }

    #[test]
    fn delta_build_matches_parallel_and_sequential() {
        let schema = toy_schema();
        let constraints = figure1_constraints();
        let sequential = SummaryBuilder::default();
        let parallel = SummaryBuilder::new(SummaryBuilderConfig::default().with_parallelism(4));
        let (_, _, base_seq) = sequential
            .build_retaining(&schema, &row_targets(), &constraints, None)
            .unwrap();
        let (_, _, base_par) = parallel
            .build_retaining(&schema, &row_targets(), &constraints, None)
            .unwrap();
        let mut revised = constraints.clone();
        revised.get_mut("S").unwrap()[0].cardinality = 55;
        let a = sequential
            .build_delta(&schema, &row_targets(), &revised, None, &base_seq)
            .unwrap();
        let b = parallel
            .build_delta(&schema, &row_targets(), &revised, None, &base_par)
            .unwrap();
        assert_eq!(
            a.summary, b.summary,
            "delta builds must be parallelism-invariant"
        );
    }

    #[test]
    fn summary_cache_reuses_solved_relations() {
        let schema = toy_schema();
        let constraints = figure1_constraints();
        let cache = InMemorySummaryCache::new();
        let builder = SummaryBuilder::default();

        let (first, report1) = builder
            .build_with_cache(&schema, &row_targets(), &constraints, None, Some(&cache))
            .unwrap();
        assert_eq!(report1.cached_relations, 0);
        assert_eq!(cache.len(), 3);

        // Identical build: everything comes from the cache.
        let (second, report2) = builder
            .build_with_cache(&schema, &row_targets(), &constraints, None, Some(&cache))
            .unwrap();
        assert_eq!(report2.cached_relations, 3);
        assert_eq!(first, second);

        // Changing one relation's row target only re-solves the affected
        // relations (R changes; S and T are reused).
        let mut targets = row_targets();
        targets.insert("R".to_string(), 2000);
        let (third, report3) = builder
            .build_with_cache(&schema, &targets, &constraints, None, Some(&cache))
            .unwrap();
        assert_eq!(report3.cached_relations, 2);
        assert_eq!(third.relation("R").unwrap().total_rows, 2000);
        assert_eq!(third.relation("S").unwrap(), first.relation("S").unwrap());
    }
}
