//! End-to-end summary construction across all relations.
//!
//! The builder processes relations in referential topological order
//! (dimensions before facts) so that every foreign-key axis can point at the
//! already-aligned primary-key blocks of the referenced relation.  This
//! ordering *is* the referential post-processing of the paper's architecture:
//! by construction, every regenerated foreign key lands on an existing
//! auto-numbered primary key.

use crate::align::{build_relation_summary, AlignmentStrategy};
use crate::axes::RelationAxes;
use crate::error::{SummaryError, SummaryResult};
use crate::solve::{formulate_and_solve, LpStats};
use crate::summary::{DatabaseSummary, RelationSummary};
use hydra_catalog::metadata::DatabaseMetadata;
use hydra_catalog::schema::Schema;
use hydra_lp::solver::LpSolver;
use hydra_partition::region::DEFAULT_MAX_REGIONS;
use hydra_query::aqp::VolumetricConstraint;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Configuration of the summary builder.
#[derive(Debug, Clone)]
pub struct SummaryBuilderConfig {
    /// LP solver settings.
    pub solver: LpSolver,
    /// Alignment strategy (deterministic by default; sampled for the E10
    /// ablation).
    pub alignment: AlignmentStrategy,
    /// Piece budget for region partitioning.
    pub max_regions: usize,
    /// Whether to fill unreferenced columns from client statistics.
    pub use_statistics_fillers: bool,
}

impl Default for SummaryBuilderConfig {
    fn default() -> Self {
        SummaryBuilderConfig {
            solver: LpSolver::default(),
            alignment: AlignmentStrategy::Deterministic,
            max_regions: DEFAULT_MAX_REGIONS,
            use_statistics_fillers: true,
        }
    }
}

/// Per-relation construction statistics (vendor-screen LP table; experiments
/// E1/E3).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationBuildStats {
    /// Relation name.
    pub table: String,
    /// Number of columns the workload references on this relation.
    pub referenced_columns: usize,
    /// Number of volumetric constraints on this relation (before dedup).
    pub workload_constraints: usize,
    /// LP statistics.
    pub lp: LpStats,
    /// Number of summary rows produced.
    pub summary_rows: usize,
    /// Number of tuples the summary regenerates.
    pub total_rows: u64,
}

/// The overall construction report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SummaryBuildReport {
    /// Per-relation statistics, in processing order.
    pub relations: Vec<RelationBuildStats>,
    /// Total wall-clock construction time.
    pub total_time: Duration,
    /// Final summary size in bytes.
    pub summary_bytes: usize,
}

impl SummaryBuildReport {
    /// Total number of LP variables across relations.
    pub fn total_lp_variables(&self) -> usize {
        self.relations.iter().map(|r| r.lp.variables).sum()
    }

    /// Total number of LP constraints across relations.
    pub fn total_lp_constraints(&self) -> usize {
        self.relations.iter().map(|r| r.lp.constraints).sum()
    }

    /// Total LP solve time across relations.
    pub fn total_solve_time(&self) -> Duration {
        self.relations.iter().map(|r| r.lp.solve_time).sum()
    }

    /// Renders a vendor-screen style text table of the LP statistics.
    pub fn to_display_table(&self) -> String {
        let mut out = String::from(
            "relation | referenced cols | constraints | LP vars | LP constraints | solve time (ms) | summary rows\n",
        );
        for r in &self.relations {
            out.push_str(&format!(
                "{} | {} | {} | {} | {} | {:.2} | {}\n",
                r.table,
                r.referenced_columns,
                r.workload_constraints,
                r.lp.variables,
                r.lp.constraints,
                r.lp.solve_time.as_secs_f64() * 1e3,
                r.summary_rows
            ));
        }
        out.push_str(&format!(
            "total: {} vars, {} constraints, {:.2} ms construction, {} bytes\n",
            self.total_lp_variables(),
            self.total_lp_constraints(),
            self.total_time.as_secs_f64() * 1e3,
            self.summary_bytes
        ));
        out
    }
}

/// Builds database summaries from per-relation volumetric constraints.
#[derive(Debug, Clone, Default)]
pub struct SummaryBuilder {
    /// Builder configuration.
    pub config: SummaryBuilderConfig,
}

impl SummaryBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: SummaryBuilderConfig) -> Self {
        SummaryBuilder { config }
    }

    /// Builds the database summary.
    ///
    /// * `schema` — the client schema;
    /// * `row_targets` — target row count per relation (the client's row
    ///   counts, or scaled counts for what-if scenarios);
    /// * `constraints_by_table` — the preprocessed volumetric constraints;
    /// * `metadata` — optional client statistics used to fill columns the
    ///   workload never references.
    pub fn build(
        &self,
        schema: &Schema,
        row_targets: &BTreeMap<String, u64>,
        constraints_by_table: &BTreeMap<String, Vec<VolumetricConstraint>>,
        metadata: Option<&DatabaseMetadata>,
    ) -> SummaryResult<(DatabaseSummary, SummaryBuildReport)> {
        let start = Instant::now();
        let order = schema
            .topological_order()
            .map_err(|e| SummaryError::Catalog(e.to_string()))?;

        let mut summaries: BTreeMap<String, RelationSummary> = BTreeMap::new();
        let mut report = SummaryBuildReport::default();
        let empty: Vec<VolumetricConstraint> = Vec::new();

        for table in order {
            let row_target = row_targets.get(&table.name).copied().unwrap_or(0);
            let constraints = constraints_by_table.get(&table.name).unwrap_or(&empty);

            // Foreign-key axis widths come from the already-built dimension
            // summaries (falling back to the row target when a dimension has
            // no constraints of its own but a known size).
            let mut fk_domains: BTreeMap<String, u64> = BTreeMap::new();
            for fk in table.foreign_keys() {
                let width = summaries
                    .get(&fk.referenced_table)
                    .map(|s| s.total_rows)
                    .or_else(|| row_targets.get(&fk.referenced_table).copied())
                    .unwrap_or(0);
                fk_domains.insert(fk.referenced_table.clone(), width.max(1));
            }

            let axes = RelationAxes::build(table, constraints, &fk_domains)?;
            let solved = formulate_and_solve(
                table,
                &axes,
                constraints,
                row_target,
                &summaries,
                &self.config.solver,
                self.config.max_regions,
            )?;
            let stats = if self.config.use_statistics_fillers {
                metadata.and_then(|m| m.tables.get(&table.name))
            } else {
                None
            };
            let summary =
                build_relation_summary(table, &axes, &solved, stats, self.config.alignment);

            report.relations.push(RelationBuildStats {
                table: table.name.clone(),
                referenced_columns: axes.columns.len(),
                workload_constraints: constraints.len(),
                lp: solved.stats.clone(),
                summary_rows: summary.row_count(),
                total_rows: summary.total_rows,
            });
            summaries.insert(table.name.clone(), summary);
        }

        let mut db = DatabaseSummary::new();
        for (_, s) in summaries {
            db.insert(s);
        }
        report.total_time = start.elapsed();
        report.summary_bytes = db.size_bytes();
        Ok((db, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;
    use hydra_query::aqp::FkCondition;
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

    /// The Figure-1 toy schema.
    fn toy_schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)))
                    .column(ColumnBuilder::new("B", DataType::BigInt).domain(Domain::integer(0, 100)))
            })
            .table("T", |t| {
                t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)))
            })
            .table("R", |t| {
                t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                    .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
            })
            .build()
            .unwrap()
    }

    use hydra_catalog::schema::Schema;

    fn figure1_constraints() -> BTreeMap<String, Vec<VolumetricConstraint>> {
        let mut map: BTreeMap<String, Vec<VolumetricConstraint>> = BTreeMap::new();
        // σ_{20<=A<60}(S) = 40
        map.entry("S".into()).or_default().push(VolumetricConstraint {
            table: "S".into(),
            predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
                .with(ColumnPredicate::new("A", CompareOp::Lt, 60)),
            fk_conditions: vec![],
            cardinality: 40,
            label: "fig1#3".into(),
        });
        // σ_{2<=C<3}(T) = 1
        map.entry("T".into()).or_default().push(VolumetricConstraint {
            table: "T".into(),
            predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new("C", CompareOp::Ge, 2))
                .with(ColumnPredicate::new("C", CompareOp::Lt, 3)),
            fk_conditions: vec![],
            cardinality: 1,
            label: "fig1#5".into(),
        });
        // R ⋈ σ(S) = 400
        let s_cond = FkCondition {
            fk_column: "S_fk".into(),
            dim_table: "S".into(),
            dim_predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
                .with(ColumnPredicate::new("A", CompareOp::Lt, 60)),
            nested: vec![],
        };
        map.entry("R".into()).or_default().push(VolumetricConstraint {
            table: "R".into(),
            predicate: TablePredicate::always_true(),
            fk_conditions: vec![s_cond.clone()],
            cardinality: 400,
            label: "fig1#1".into(),
        });
        // (R ⋈ σ(S)) ⋈ σ(T) = 40
        let t_cond = FkCondition {
            fk_column: "T_fk".into(),
            dim_table: "T".into(),
            dim_predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new("C", CompareOp::Ge, 2))
                .with(ColumnPredicate::new("C", CompareOp::Lt, 3)),
            nested: vec![],
        };
        map.entry("R".into()).or_default().push(VolumetricConstraint {
            table: "R".into(),
            predicate: TablePredicate::always_true(),
            fk_conditions: vec![s_cond, t_cond],
            cardinality: 40,
            label: "fig1#0".into(),
        });
        map
    }

    fn row_targets() -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        m.insert("R".to_string(), 1000);
        m.insert("S".to_string(), 100);
        m.insert("T".to_string(), 10);
        m
    }

    #[test]
    fn figure1_end_to_end_summary() {
        let schema = toy_schema();
        let builder = SummaryBuilder::default();
        let (db, report) = builder
            .build(&schema, &row_targets(), &figure1_constraints(), None)
            .unwrap();

        // Every relation regenerates exactly its target row count.
        assert_eq!(db.relation("R").unwrap().total_rows, 1000);
        assert_eq!(db.relation("S").unwrap().total_rows, 100);
        assert_eq!(db.relation("T").unwrap().total_rows, 10);

        // The summary is tiny compared to the data it regenerates.
        assert!(db.size_bytes() < 4096, "summary is {} bytes", db.size_bytes());
        assert!(db.total_summary_rows() <= 12);

        // Constraint satisfaction spot checks.
        let s = db.relation("S").unwrap();
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        let achieved: u64 = s
            .rows
            .iter()
            .filter(|r| pred.evaluate(|c| r.values.get(c)))
            .map(|r| r.count)
            .sum();
        assert_eq!(achieved, 40);

        // Every R summary row references valid PK positions of S and T.
        let r = db.relation("R").unwrap();
        for row in &r.rows {
            let s_fk = row.values["S_fk"].as_i64().unwrap();
            let t_fk = row.values["T_fk"].as_i64().unwrap();
            assert!(s_fk >= 0 && (s_fk as u64) < 100);
            assert!(t_fk >= 0 && (t_fk as u64) < 10);
        }

        // Report accounting.
        assert_eq!(report.relations.len(), 3);
        assert!(report.total_lp_variables() > 0);
        assert!(report.summary_bytes > 0);
        let text = report.to_display_table();
        assert!(text.contains("R |"));
        assert!(text.contains("total:"));
    }

    #[test]
    fn relations_without_constraints_still_get_summaries() {
        let schema = toy_schema();
        let builder = SummaryBuilder::default();
        let (db, _) = builder
            .build(&schema, &row_targets(), &BTreeMap::new(), None)
            .unwrap();
        assert_eq!(db.relation("R").unwrap().total_rows, 1000);
        assert_eq!(db.relation("R").unwrap().row_count(), 1);
        assert_eq!(db.relation("T").unwrap().total_rows, 10);
    }

    #[test]
    fn zero_row_targets_produce_empty_summaries() {
        let schema = toy_schema();
        let builder = SummaryBuilder::default();
        let (db, _) = builder
            .build(&schema, &BTreeMap::new(), &BTreeMap::new(), None)
            .unwrap();
        assert_eq!(db.total_rows(), 0);
        assert_eq!(db.relation("R").unwrap().row_count(), 0);
    }

    #[test]
    fn join_constraint_satisfied_by_fact_summary() {
        let schema = toy_schema();
        let builder = SummaryBuilder::default();
        let constraints = figure1_constraints();
        let (db, _) = builder.build(&schema, &row_targets(), &constraints, None).unwrap();

        // Verify the R ⋈ σ(S) = 400 constraint against the generated summary:
        // count R rows whose S_fk lands in a satisfying S block.
        let s = db.relation("S").unwrap();
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        let intervals = s
            .satisfying_pk_intervals(&pred, &[], &db.relations)
            .unwrap();
        let r = db.relation("R").unwrap();
        let achieved: u64 = r
            .rows
            .iter()
            .filter(|row| {
                row.values["S_fk"]
                    .as_i64()
                    .map(|v| intervals.iter().any(|iv| iv.contains(v)))
                    .unwrap_or(false)
            })
            .map(|row| row.count)
            .sum();
        assert_eq!(achieved, 400);
    }

    #[test]
    fn sampled_alignment_config_builds() {
        let schema = toy_schema();
        let builder = SummaryBuilder::new(SummaryBuilderConfig {
            alignment: AlignmentStrategy::Sampled { seed: 99 },
            ..Default::default()
        });
        let (db, _) = builder
            .build(&schema, &row_targets(), &figure1_constraints(), None)
            .unwrap();
        assert_eq!(db.relation("R").unwrap().total_rows, 1000);
    }
}
