//! Per-relation LP formulation and solving.
//!
//! One LP variable per region of the relation's region partition, one equality
//! constraint per (deduplicated) volumetric constraint, plus the relation's
//! total row count.  The LP is solved by `hydra-lp`'s simplex; if the workload
//! is inconsistent (which can happen for what-if scenarios with injected
//! cardinalities) the solver falls back to a least-violation solution, exactly
//! the "minor additive errors" the paper tolerates.

use crate::axes::RelationAxes;
use crate::error::SummaryResult;
use crate::summary::RelationSummary;
use hydra_catalog::schema::Table;
use hydra_lp::problem::{ConstraintOp, LpProblem};
use hydra_lp::rounding::largest_remainder_round;
use hydra_lp::solver::{LpSolver, SolveStatus};
use hydra_partition::region::{RegionPartition, RegionPartitioner};
use hydra_query::aqp::VolumetricConstraint;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Statistics about one relation's LP (reported on the vendor screen and used
/// by experiments E1/E3).
#[derive(Debug, Clone, PartialEq)]
pub struct LpStats {
    /// Number of LP variables (= regions).
    pub variables: usize,
    /// Number of LP constraints (volumetric + total row count).
    pub constraints: usize,
    /// Time spent partitioning the attribute space.
    pub partition_time: Duration,
    /// Time spent in the simplex solver.
    pub solve_time: Duration,
    /// Whether the LP was satisfied exactly or by least violation.
    pub status: SolveStatus,
    /// Total absolute violation of the LP solution (0 when feasible).
    pub total_violation: f64,
    /// Number of workload constraints whose FK projection had to be coalesced
    /// (an approximation; usually 0).
    pub coalesced_constraints: usize,
    /// Number of workload constraints dropped because their constraint region
    /// was empty (unsatisfiable against the dimension summaries).
    pub empty_constraints: usize,
}

/// The solved placement of a relation's rows across its regions.
#[derive(Debug, Clone)]
pub struct SolvedRelation {
    /// The region partition of the relation's attribute space.
    pub partition: RegionPartition,
    /// Integral tuple count assigned to each region (same order as
    /// `partition.regions()`); sums to the relation's row target.
    pub region_counts: Vec<u64>,
    /// LP statistics.
    pub stats: LpStats,
}

/// Formulates and solves the LP for one relation.
///
/// `summaries` must already contain the summaries of every dimension this
/// relation references (dimensions-first processing order).
pub fn formulate_and_solve(
    table: &Table,
    axes: &RelationAxes,
    constraints: &[VolumetricConstraint],
    row_target: u64,
    summaries: &BTreeMap<String, RelationSummary>,
    solver: &LpSolver,
    max_regions: usize,
) -> SummaryResult<SolvedRelation> {
    let partition_start = Instant::now();

    // Translate constraints to boxes, dropping total-row-count duplicates and
    // unsatisfiable (empty-region) constraints.
    let mut boxed: Vec<(&VolumetricConstraint, Vec<hydra_partition::nbox::NBox>)> = Vec::new();
    let mut coalesced_constraints = 0usize;
    let mut empty_constraints = 0usize;
    let mut seen: Vec<(Vec<hydra_partition::nbox::NBox>, u64)> = Vec::new();
    for c in constraints {
        if c.is_total_row_count() {
            continue;
        }
        let (boxes, coalesced) = axes.constraint_boxes(table, c, summaries)?;
        if coalesced {
            coalesced_constraints += 1;
        }
        if boxes.is_empty() {
            empty_constraints += 1;
            continue;
        }
        // Deduplicate identical (boxes, cardinality) pairs.
        if seen.iter().any(|(b, card)| *b == boxes && *card == c.cardinality) {
            continue;
        }
        seen.push((boxes.clone(), c.cardinality));
        boxed.push((c, boxes));
    }

    // Partition the space against the constraint boxes.
    let mut partitioner = RegionPartitioner::new(axes.space.clone()).with_max_regions(max_regions);
    for (_, boxes) in &boxed {
        partitioner = partitioner.add_constraint_union(boxes.clone());
    }
    let partition = partitioner.partition()?;
    let partition_time = partition_start.elapsed();

    // Formulate the LP.
    let num_regions = partition.num_variables();
    let mut lp = LpProblem::new(num_regions);
    for (ci, (c, _)) in boxed.iter().enumerate() {
        let terms: Vec<(usize, f64)> = partition
            .regions_in_constraint(ci)
            .into_iter()
            .map(|r| (r, 1.0))
            .collect();
        lp.add_labeled_constraint(terms, ConstraintOp::Eq, c.cardinality as f64, c.label.clone());
    }
    lp.add_labeled_constraint(
        (0..num_regions).map(|r| (r, 1.0)).collect(),
        ConstraintOp::Eq,
        row_target as f64,
        format!("{}.total_rows", table.name),
    );

    // Solve and round.
    let solution = solver.solve(&lp)?;
    let region_counts = largest_remainder_round(&solution.values, row_target);

    Ok(SolvedRelation {
        partition,
        region_counts,
        stats: LpStats {
            variables: num_regions,
            constraints: lp.num_constraints(),
            partition_time,
            solve_time: solution.solve_time,
            status: solution.status,
            total_violation: solution.total_violation,
            coalesced_constraints,
            empty_constraints,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

    fn schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", big_int()).primary_key())
                    .column(ColumnBuilder::new("A", big_int()).domain(Domain::integer(0, 100)))
                    .column(ColumnBuilder::new("B", big_int()).domain(Domain::integer(0, 100)))
            })
            .build()
            .unwrap()
    }

    fn big_int() -> hydra_catalog::types::DataType {
        hydra_catalog::types::DataType::BigInt
    }

    fn constraint(label: &str, column: &str, lo: i64, hi: i64, card: u64) -> VolumetricConstraint {
        VolumetricConstraint {
            table: "S".into(),
            predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new(column, CompareOp::Ge, lo))
                .with(ColumnPredicate::new(column, CompareOp::Lt, hi)),
            fk_conditions: vec![],
            cardinality: card,
            label: label.into(),
        }
    }

    fn solve(constraints: &[VolumetricConstraint], total: u64) -> SolvedRelation {
        let schema = schema();
        let table = schema.table("S").unwrap();
        let axes = RelationAxes::build(table, constraints, &BTreeMap::new()).unwrap();
        formulate_and_solve(
            table,
            &axes,
            constraints,
            total,
            &BTreeMap::new(),
            &LpSolver::default(),
            1_000_000,
        )
        .unwrap()
    }

    #[test]
    fn feasible_system_is_satisfied_exactly() {
        let cs = vec![
            constraint("q1#1", "A", 20, 60, 400),
            constraint("q2#1", "A", 40, 80, 300),
        ];
        let solved = solve(&cs, 1000);
        assert_eq!(solved.stats.status, SolveStatus::Feasible);
        assert_eq!(solved.region_counts.iter().sum::<u64>(), 1000);
        // Check the two constraints against the rounded counts.
        for (ci, c) in cs.iter().enumerate() {
            let achieved: u64 = solved
                .partition
                .regions_in_constraint(ci)
                .iter()
                .map(|&r| solved.region_counts[r])
                .sum();
            assert_eq!(achieved, c.cardinality, "constraint {}", c.label);
        }
    }

    #[test]
    fn total_row_count_always_respected_after_rounding() {
        let cs = vec![constraint("q1#1", "A", 0, 10, 333)];
        let solved = solve(&cs, 997);
        assert_eq!(solved.region_counts.iter().sum::<u64>(), 997);
    }

    #[test]
    fn duplicate_constraints_are_deduplicated() {
        let cs = vec![
            constraint("q1#1", "A", 20, 60, 400),
            constraint("q7#3", "A", 20, 60, 400),
        ];
        let solved = solve(&cs, 1000);
        // 1 deduped volumetric constraint + 1 total row constraint.
        assert_eq!(solved.stats.constraints, 2);
    }

    #[test]
    fn infeasible_system_recovers_with_small_violation() {
        // Two contradictory cardinalities for the same box.
        let cs = vec![
            constraint("q1#1", "A", 20, 60, 400),
            constraint("q2#1", "A", 20, 60, 500),
        ];
        let solved = solve(&cs, 1000);
        assert_eq!(solved.stats.status, SolveStatus::LeastViolation);
        assert!(solved.stats.total_violation >= 99.0);
        assert_eq!(solved.region_counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn multi_column_constraints() {
        let cs = vec![
            constraint("q1#1", "A", 0, 50, 600),
            constraint("q2#1", "B", 0, 50, 300),
        ];
        let solved = solve(&cs, 1000);
        assert_eq!(solved.stats.status, SolveStatus::Feasible);
        assert!(solved.stats.variables <= 4);
        let total: u64 = solved.region_counts.iter().sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn stats_capture_problem_size() {
        let cs = vec![
            constraint("q1#1", "A", 20, 60, 400),
            constraint("q2#1", "A", 40, 80, 300),
        ];
        let solved = solve(&cs, 1000);
        assert_eq!(solved.stats.variables, solved.partition.num_variables());
        assert_eq!(solved.stats.constraints, 3);
        assert_eq!(solved.stats.empty_constraints, 0);
        assert_eq!(solved.stats.coalesced_constraints, 0);
    }
}
