//! Per-relation LP formulation and solving.
//!
//! One LP variable per region of the relation's region partition, one equality
//! constraint per (deduplicated) volumetric constraint, plus the relation's
//! total row count.  The LP is solved by `hydra-lp`'s simplex; if the workload
//! is inconsistent (which can happen for what-if scenarios with injected
//! cardinalities) the solver falls back to a least-violation solution, exactly
//! the "minor additive errors" the paper tolerates.

use crate::axes::RelationAxes;
use crate::error::SummaryResult;
use crate::summary::RelationSummary;
use hydra_catalog::schema::Table;
use hydra_lp::problem::{ConstraintOp, LpProblem};
use hydra_lp::rounding::largest_remainder_round;
use hydra_lp::simplex::{WarmOutcome, WarmStart};
use hydra_lp::solver::{LpSolver, SolveStatus};
use hydra_partition::refine::check_refinable;
use hydra_partition::region::{RegionPartition, RegionPartitioner};
use hydra_query::aqp::VolumetricConstraint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Statistics about one relation's LP (reported on the vendor screen and used
/// by experiments E1/E3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpStats {
    /// Number of LP variables (= regions).
    pub variables: usize,
    /// Number of LP constraints (volumetric + total row count).
    pub constraints: usize,
    /// Time spent partitioning the attribute space.
    pub partition_time: Duration,
    /// Time spent in the simplex solver.
    pub solve_time: Duration,
    /// Whether the LP was satisfied exactly or by least violation.
    pub status: SolveStatus,
    /// Total absolute violation of the LP solution (0 when feasible).
    pub total_violation: f64,
    /// Number of workload constraints whose FK projection had to be coalesced
    /// (an approximation; usually 0).
    pub coalesced_constraints: usize,
    /// Number of workload constraints dropped because their constraint region
    /// was empty (unsatisfiable against the dimension summaries).
    pub empty_constraints: usize,
    /// Number of workload constraints that collided with another constraint
    /// on an identical box set at a different cardinality and were merged at
    /// the group median (their residual error is part of
    /// [`LpStats::total_violation`]).
    pub conflicting_constraints: usize,
    /// What a warm-start hint contributed to this solve
    /// ([`WarmOutcome::NotAttempted`] on cold, from-scratch builds).
    pub warm: WarmOutcome,
}

/// The solved placement of a relation's rows across its regions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolvedRelation {
    /// The region partition of the relation's attribute space.
    pub partition: RegionPartition,
    /// Integral tuple count assigned to each region (same order as
    /// `partition.regions()`); sums to the relation's row target.
    pub region_counts: Vec<u64>,
    /// LP statistics.
    pub stats: LpStats,
}

/// A constraint translated to its boxes over the relation's attribute space,
/// after dedup, conflict merging, and dropping of empty/total-row
/// constraints.
pub(crate) struct BoxedConstraints {
    /// Surviving constraints with their box unions, in input order.
    pub boxed: Vec<(VolumetricConstraint, Vec<hydra_partition::nbox::NBox>)>,
    /// Constraints whose FK projection was coalesced (approximation count).
    pub coalesced_constraints: usize,
    /// Constraints dropped because their region was empty.
    pub empty_constraints: usize,
    /// Constraints that mapped to an identical box set as another constraint
    /// but demanded a different cardinality — irreconcilable in this encoding
    /// (the classic FK-projection granularity loss).  Each group is replaced
    /// by one constraint at the group's median cardinality, which is exactly
    /// the least-violation optimum for the group.
    pub conflicting_constraints: usize,
    /// Total absolute violation the conflict merges pre-committed to
    /// (`Σ |cardinality - group median|`); added to the LP's own violation.
    pub conflict_violation: f64,
}

/// Translates constraints to boxes, dropping total-row-count duplicates and
/// unsatisfiable (empty-region) constraints, and merging identical-box
/// conflicts at their median.  Shared by every LP backend.
pub(crate) fn boxed_constraints(
    table: &Table,
    axes: &RelationAxes,
    constraints: &[VolumetricConstraint],
    summaries: &BTreeMap<String, RelationSummary>,
) -> SummaryResult<BoxedConstraints> {
    let mut coalesced_constraints = 0usize;
    let mut empty_constraints = 0usize;

    // Group surviving constraints by their box set, preserving first-seen
    // order for determinism.
    let mut groups: Vec<(Vec<hydra_partition::nbox::NBox>, Vec<VolumetricConstraint>)> = Vec::new();
    for c in constraints {
        if c.is_total_row_count() {
            continue;
        }
        let (boxes, coalesced) = axes.constraint_boxes(table, c, summaries)?;
        if coalesced {
            coalesced_constraints += 1;
        }
        if boxes.is_empty() {
            empty_constraints += 1;
            continue;
        }
        match groups.iter_mut().find(|(b, _)| *b == boxes) {
            Some((_, members)) => members.push(c.clone()),
            None => groups.push((boxes, vec![c.clone()])),
        }
    }

    let mut boxed = Vec::with_capacity(groups.len());
    let mut conflicting_constraints = 0usize;
    let mut conflict_violation = 0.0f64;
    for (boxes, members) in groups {
        let mut cards: Vec<u64> = members.iter().map(|m| m.cardinality).collect();
        cards.sort_unstable();
        let median = cards[(cards.len() - 1) / 2];
        if cards.iter().any(|&c| c != median) {
            conflicting_constraints += members.len();
            conflict_violation += cards
                .iter()
                .map(|&c| (c as f64 - median as f64).abs())
                .sum::<f64>();
        }
        let mut merged = members[0].clone();
        merged.cardinality = median;
        boxed.push((merged, boxes));
    }
    Ok(BoxedConstraints {
        boxed,
        coalesced_constraints,
        empty_constraints,
        conflicting_constraints,
        conflict_violation,
    })
}

/// Formulates the per-relation LP over an already-built partition (one
/// variable per region/cell, one equality per surviving constraint, plus the
/// total row count).  Shared by every LP backend.
pub(crate) fn formulate_lp(
    table: &Table,
    partition: &RegionPartition,
    boxed: &[(VolumetricConstraint, Vec<hydra_partition::nbox::NBox>)],
    row_target: u64,
) -> LpProblem {
    let num_regions = partition.num_variables();
    let mut lp = LpProblem::new(num_regions);
    for (ci, (c, _)) in boxed.iter().enumerate() {
        let terms: Vec<(usize, f64)> = partition
            .regions_in_constraint(ci)
            .into_iter()
            .map(|r| (r, 1.0))
            .collect();
        lp.add_labeled_constraint(
            terms,
            ConstraintOp::Eq,
            c.cardinality as f64,
            c.label.clone(),
        );
    }
    lp.add_labeled_constraint(
        (0..num_regions).map(|r| (r, 1.0)).collect(),
        ConstraintOp::Eq,
        row_target as f64,
        format!("{}.total_rows", table.name),
    );
    lp
}

/// Iteration budget for post-rounding integral repair.
const REPAIR_MAX_MOVES: usize = 2_000;

/// Solves a formulated per-relation LP, optionally refines the solution into
/// the interior of the feasible set, rounds to integral counts, and repairs
/// rounding drift.  Shared by every LP backend.
///
/// `interior` should be set for relations that other relations reference
/// (dimensions): vertex solutions collapse regions that distinguish different
/// workload predicates, which makes their foreign-key projections collide on
/// the primary-key axis and turns consistent fact constraints into
/// contradictions.  Moving to the volume-proportional interior point keeps
/// distinguishing regions populated.  Fact relations keep vertex solutions —
/// they give the smallest summaries and nothing projects *onto* them.
pub(crate) fn solve_formulated(
    partition: RegionPartition,
    lp: &LpProblem,
    row_target: u64,
    solver: &LpSolver,
    interior: bool,
    partition_time: Duration,
    pre: &BoxedConstraints,
) -> SummaryResult<SolvedRelation> {
    solve_formulated_warm(
        partition,
        lp,
        row_target,
        solver,
        interior,
        partition_time,
        pre,
        None,
    )
}

/// [`solve_formulated`] with an optional LP warm-start hint (the previous
/// solution's support mapped into this partition's column space by
/// [`hydra_partition::refine`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_formulated_warm(
    partition: RegionPartition,
    lp: &LpProblem,
    row_target: u64,
    solver: &LpSolver,
    interior: bool,
    partition_time: Duration,
    pre: &BoxedConstraints,
    warm_hint: Option<&WarmStart>,
) -> SummaryResult<SolvedRelation> {
    let (solution, warm) = solver.solve_warm(lp, warm_hint)?;
    let mut values = solution.values.clone();
    if interior && solution.status == SolveStatus::Feasible {
        let volumes: Vec<f64> = partition
            .regions()
            .iter()
            .map(|r| r.volume as f64)
            .collect();
        let total_volume: f64 = volumes.iter().sum();
        let num_regions = volumes.len();
        if total_volume > 0.0 && num_regions > 0 {
            // Blend volume-proportional with uniform-per-region mass: the
            // volume term approximates attribute independence, the uniform
            // term keeps *small* dimensions from rounding their
            // predicate-distinguishing regions down to zero.
            let attractor: Vec<f64> = volumes
                .iter()
                .map(|v| row_target as f64 * 0.5 * (v / total_volume + 1.0 / num_regions as f64))
                .collect();
            values = hydra_lp::refine::refine_toward(lp, &values, &attractor);
        }
    }
    let mut region_counts = largest_remainder_round(&values, row_target);
    hydra_lp::refine::repair_rounded_counts(lp, &mut region_counts, REPAIR_MAX_MOVES);

    // Conflict merges pre-committed some violation before the LP ever ran;
    // report it honestly (status and total).
    let total_violation = solution.total_violation + pre.conflict_violation;
    let status = if pre.conflict_violation > 0.0 {
        SolveStatus::LeastViolation
    } else {
        solution.status
    };

    Ok(SolvedRelation {
        region_counts,
        stats: LpStats {
            variables: partition.num_variables(),
            constraints: lp.num_constraints(),
            partition_time,
            solve_time: solution.solve_time,
            status,
            total_violation,
            coalesced_constraints: pre.coalesced_constraints,
            empty_constraints: pre.empty_constraints,
            conflicting_constraints: pre.conflicting_constraints,
            warm,
        },
        partition,
    })
}

/// Formulates and solves the LP for one relation using HYDRA's region
/// partitioning and the two-phase simplex (the classic pipeline; LP backends
/// wrap this or replace the partitioning stage).
///
/// `summaries` must already contain the summaries of every dimension this
/// relation references (dimensions-first processing order).
pub fn formulate_and_solve(
    table: &Table,
    axes: &RelationAxes,
    constraints: &[VolumetricConstraint],
    row_target: u64,
    summaries: &BTreeMap<String, RelationSummary>,
    solver: &LpSolver,
    max_regions: usize,
) -> SummaryResult<SolvedRelation> {
    formulate_and_solve_with(
        table,
        axes,
        constraints,
        row_target,
        summaries,
        solver,
        max_regions,
        false,
    )
}

/// [`formulate_and_solve`] with control over interior refinement (used by
/// [`crate::backend::SimplexBackend`] for dimension relations).
#[allow(clippy::too_many_arguments)]
pub fn formulate_and_solve_with(
    table: &Table,
    axes: &RelationAxes,
    constraints: &[VolumetricConstraint],
    row_target: u64,
    summaries: &BTreeMap<String, RelationSummary>,
    solver: &LpSolver,
    max_regions: usize,
    interior: bool,
) -> SummaryResult<SolvedRelation> {
    formulate_and_solve_delta(
        table,
        axes,
        constraints,
        row_target,
        summaries,
        solver,
        max_regions,
        interior,
        None,
    )
}

/// [`formulate_and_solve_with`] for delta re-profiling: when the relation
/// was solved before, its previous partition and region counts seed both the
/// partitioning (the previous partition is reused outright if the constraint
/// boxes are unchanged; otherwise only the moved boundaries re-cut the
/// space) and the LP (the previous solution's support warm-starts the
/// simplex).  A stale or dimensionally incompatible previous solve is
/// silently ignored — the build degrades to a cold partition + solve.
#[allow(clippy::too_many_arguments)]
pub fn formulate_and_solve_delta(
    table: &Table,
    axes: &RelationAxes,
    constraints: &[VolumetricConstraint],
    row_target: u64,
    summaries: &BTreeMap<String, RelationSummary>,
    solver: &LpSolver,
    max_regions: usize,
    interior: bool,
    previous: Option<&SolvedRelation>,
) -> SummaryResult<SolvedRelation> {
    let partition_start = Instant::now();
    let pre = boxed_constraints(table, axes, constraints, summaries)?;

    // Partition the space against the constraint boxes — incrementally when
    // a compatible previous partition is available.
    let mut partitioner = RegionPartitioner::new(axes.space.clone()).with_max_regions(max_regions);
    for (_, boxes) in &pre.boxed {
        partitioner = partitioner.add_constraint_union(boxes.clone());
    }
    let usable_previous =
        previous.filter(|prev| check_refinable(&prev.partition, axes.space.dims()).is_ok());
    let (partition, warm_hint) = match usable_previous {
        Some(prev) => {
            // The previous solution's support (nonzero regions) is all the
            // warm start needs; a basic solution keeps it small no matter
            // how many regions the partition has.
            let support: Vec<usize> = prev
                .region_counts
                .iter()
                .enumerate()
                .filter(|(_, count)| **count > 0)
                .map(|(region, _)| region)
                .collect();
            let refinement = partitioner.refine(&prev.partition, &support)?;
            let hint = WarmStart::new(refinement.warm_columns());
            (refinement.partition, Some(hint))
        }
        None => (partitioner.partition()?, None),
    };
    let partition_time = partition_start.elapsed();

    let lp = formulate_lp(table, &partition, &pre.boxed, row_target);
    solve_formulated_warm(
        partition,
        &lp,
        row_target,
        solver,
        interior,
        partition_time,
        &pre,
        warm_hint.as_ref(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

    fn schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", big_int()).primary_key())
                    .column(ColumnBuilder::new("A", big_int()).domain(Domain::integer(0, 100)))
                    .column(ColumnBuilder::new("B", big_int()).domain(Domain::integer(0, 100)))
            })
            .build()
            .unwrap()
    }

    fn big_int() -> hydra_catalog::types::DataType {
        hydra_catalog::types::DataType::BigInt
    }

    fn constraint(label: &str, column: &str, lo: i64, hi: i64, card: u64) -> VolumetricConstraint {
        VolumetricConstraint {
            table: "S".into(),
            predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new(column, CompareOp::Ge, lo))
                .with(ColumnPredicate::new(column, CompareOp::Lt, hi)),
            fk_conditions: vec![],
            cardinality: card,
            label: label.into(),
        }
    }

    fn solve(constraints: &[VolumetricConstraint], total: u64) -> SolvedRelation {
        let schema = schema();
        let table = schema.table("S").unwrap();
        let axes = RelationAxes::build(table, constraints, &BTreeMap::new()).unwrap();
        formulate_and_solve(
            table,
            &axes,
            constraints,
            total,
            &BTreeMap::new(),
            &LpSolver::default(),
            1_000_000,
        )
        .unwrap()
    }

    #[test]
    fn feasible_system_is_satisfied_exactly() {
        let cs = vec![
            constraint("q1#1", "A", 20, 60, 400),
            constraint("q2#1", "A", 40, 80, 300),
        ];
        let solved = solve(&cs, 1000);
        assert_eq!(solved.stats.status, SolveStatus::Feasible);
        assert_eq!(solved.region_counts.iter().sum::<u64>(), 1000);
        // Check the two constraints against the rounded counts.
        for (ci, c) in cs.iter().enumerate() {
            let achieved: u64 = solved
                .partition
                .regions_in_constraint(ci)
                .iter()
                .map(|&r| solved.region_counts[r])
                .sum();
            assert_eq!(achieved, c.cardinality, "constraint {}", c.label);
        }
    }

    #[test]
    fn total_row_count_always_respected_after_rounding() {
        let cs = vec![constraint("q1#1", "A", 0, 10, 333)];
        let solved = solve(&cs, 997);
        assert_eq!(solved.region_counts.iter().sum::<u64>(), 997);
    }

    #[test]
    fn duplicate_constraints_are_deduplicated() {
        let cs = vec![
            constraint("q1#1", "A", 20, 60, 400),
            constraint("q7#3", "A", 20, 60, 400),
        ];
        let solved = solve(&cs, 1000);
        // 1 deduped volumetric constraint + 1 total row constraint.
        assert_eq!(solved.stats.constraints, 2);
    }

    #[test]
    fn infeasible_system_recovers_with_small_violation() {
        // Two contradictory cardinalities for the same box.
        let cs = vec![
            constraint("q1#1", "A", 20, 60, 400),
            constraint("q2#1", "A", 20, 60, 500),
        ];
        let solved = solve(&cs, 1000);
        assert_eq!(solved.stats.status, SolveStatus::LeastViolation);
        assert!(solved.stats.total_violation >= 99.0);
        assert_eq!(solved.region_counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn multi_column_constraints() {
        let cs = vec![
            constraint("q1#1", "A", 0, 50, 600),
            constraint("q2#1", "B", 0, 50, 300),
        ];
        let solved = solve(&cs, 1000);
        assert_eq!(solved.stats.status, SolveStatus::Feasible);
        assert!(solved.stats.variables <= 4);
        let total: u64 = solved.region_counts.iter().sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn stats_capture_problem_size() {
        let cs = vec![
            constraint("q1#1", "A", 20, 60, 400),
            constraint("q2#1", "A", 40, 80, 300),
        ];
        let solved = solve(&cs, 1000);
        assert_eq!(solved.stats.variables, solved.partition.num_variables());
        assert_eq!(solved.stats.constraints, 3);
        assert_eq!(solved.stats.empty_constraints, 0);
        assert_eq!(solved.stats.coalesced_constraints, 0);
    }
}
