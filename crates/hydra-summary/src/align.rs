//! Deterministic alignment: turning region solutions into summary rows.
//!
//! Regions are laid out in canonical (signature-sorted) order; each non-empty
//! region contributes **one summary row** whose `#TUPLES` is the region's LP
//! count and whose value vector is a point of the region.  Because the layout
//! is deterministic and contiguous, the tuples of a region occupy one block of
//! auto-numbered primary keys, which is what lets foreign-key conditions on
//! referencing relations resolve to primary-key intervals.
//!
//! The paper contrasts this *deterministic alignment* with DataSynth's
//! sampling-based instantiation; [`AlignmentStrategy::Sampled`] reproduces the
//! latter for the ablation experiment (E10): value vectors are drawn at random
//! from each region instead of canonically, which breaks none of the
//! per-relation constraints but loses the reproducibility and (for predicates
//! that were not part of this relation's own constraint set) the exactness of
//! the FK projection.

use crate::axes::RelationAxes;
use crate::solve::SolvedRelation;
use crate::summary::RelationSummary;
use hydra_catalog::schema::Table;
use hydra_catalog::stats::TableStatistics;
use hydra_catalog::types::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// How representative value vectors are chosen inside each region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlignmentStrategy {
    /// HYDRA's deterministic alignment: the canonical first point of each
    /// region, identical across runs.
    #[default]
    Deterministic,
    /// DataSynth-style sampling: a pseudo-random point of each region,
    /// parameterized by a seed (the ablation baseline).
    Sampled {
        /// RNG seed.
        seed: u64,
    },
}

/// Builds the relation summary from a solved region placement.
///
/// * `axes` — the partitioning axes (referenced columns);
/// * `solved` — region partition plus integral per-region tuple counts;
/// * `stats` — optional client statistics used to fill columns the workload
///   never references (most-common value when available);
/// * `strategy` — deterministic or sampled value placement.
pub fn build_relation_summary(
    table: &Table,
    axes: &RelationAxes,
    solved: &SolvedRelation,
    stats: Option<&TableStatistics>,
    strategy: AlignmentStrategy,
) -> RelationSummary {
    let pk_column = table.primary_key_column().map(str::to_string);
    let mut summary = RelationSummary::new(table.name.clone(), pk_column.clone());
    let mut rng = match strategy {
        AlignmentStrategy::Sampled { seed } => Some(StdRng::seed_from_u64(seed)),
        AlignmentStrategy::Deterministic => None,
    };

    // Pre-compute filler values for columns not referenced by the workload.
    let filler: BTreeMap<String, Value> = table
        .columns()
        .iter()
        .filter(|c| {
            Some(c.name.as_str()) != pk_column.as_deref() && !axes.columns.contains(&c.name)
        })
        .map(|c| {
            (
                c.name.clone(),
                filler_value(table, &c.name, &c.data_type, stats),
            )
        })
        .collect();

    // Emit regions in geometric (representative-point) order rather than
    // signature order: range predicates then select *contiguous* runs of
    // primary-key blocks, so downstream foreign-key projections produce few
    // intervals and the referencing relation's region partition stays small.
    let mut order: Vec<usize> = (0..solved.partition.regions().len()).collect();
    order.sort_by_key(|&i| solved.partition.regions()[i].representative_point());

    for &index in &order {
        let region = &solved.partition.regions()[index];
        let count = solved.region_counts[index];
        if count == 0 {
            continue;
        }
        let point = match &mut rng {
            Some(rng) if region.volume > 0 => {
                let idx = rng.gen_range(0..region.volume.min(u64::MAX as u128) as u64);
                region
                    .point_at(idx as u128)
                    .unwrap_or_else(|| region.representative_point())
            }
            _ => region.representative_point(),
        };
        let mut values = filler.clone();
        for (axis, column) in axes.columns.iter().enumerate() {
            let coord = point.get(axis).copied().unwrap_or(0);
            let value = if table.is_foreign_key(column) {
                // FK axes are primary-key positions of the referenced relation.
                Value::Integer(coord)
            } else {
                table
                    .column(column)
                    .map(|c| c.domain_or_default().denormalize(coord))
                    .unwrap_or(Value::Integer(coord))
            };
            values.insert(column.clone(), value);
        }
        summary.push_row(count, values);
    }
    summary
}

/// Picks a value for a column the workload never references: the most common
/// value from the client statistics when available, otherwise a domain /
/// type-appropriate default.
fn filler_value(
    table: &Table,
    column: &str,
    data_type: &DataType,
    stats: Option<&TableStatistics>,
) -> Value {
    if let Some(stats) = stats {
        if let Some(cs) = stats.columns.get(column) {
            if let Some((v, _)) = cs.most_common.first() {
                return v.clone();
            }
        }
    }
    if let Some(col) = table.column(column) {
        if let Some(domain) = &col.domain {
            let (lo, _) = domain.normalized_bounds();
            return domain.denormalize(lo);
        }
    }
    match data_type {
        DataType::Integer | DataType::BigInt | DataType::Date => Value::Integer(0),
        DataType::Double => Value::Double(0.0),
        DataType::Varchar(_) => Value::str(""),
        DataType::Boolean => Value::Boolean(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::RelationAxes;
    use crate::solve::formulate_and_solve;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
    use hydra_catalog::stats::ColumnStatistics;
    use hydra_lp::solver::LpSolver;
    use hydra_query::aqp::VolumetricConstraint;
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

    fn schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("i_manager_id", DataType::BigInt)
                            .domain(Domain::integer(0, 100)),
                    )
                    .column(
                        ColumnBuilder::new("i_category", DataType::Varchar(None))
                            .domain(Domain::categorical(["Books", "Music", "Women"])),
                    )
                    .column(
                        ColumnBuilder::new("i_color", DataType::Varchar(None))
                            .domain(Domain::categorical(["red", "blue"])),
                    )
            })
            .build()
            .unwrap()
    }

    fn constraint(lo: i64, hi: i64, card: u64, label: &str) -> VolumetricConstraint {
        VolumetricConstraint {
            table: "item".into(),
            predicate: TablePredicate::always_true()
                .with(ColumnPredicate::new("i_manager_id", CompareOp::Ge, lo))
                .with(ColumnPredicate::new("i_manager_id", CompareOp::Lt, hi)),
            fk_conditions: vec![],
            cardinality: card,
            label: label.into(),
        }
    }

    fn build(strategy: AlignmentStrategy) -> RelationSummary {
        let schema = schema();
        let table = schema.table("item").unwrap();
        let cs = vec![
            constraint(0, 50, 600, "q1#1"),
            constraint(25, 75, 300, "q2#1"),
        ];
        let axes = RelationAxes::build(table, &cs, &BTreeMap::new()).unwrap();
        let solved = formulate_and_solve(
            table,
            &axes,
            &cs,
            1000,
            &BTreeMap::new(),
            &LpSolver::default(),
            1_000_000,
        )
        .unwrap();
        let mut stats = TableStatistics::with_row_count(1000);
        stats.add_column(
            "i_category",
            ColumnStatistics::profile(&[Value::str("Music"), Value::str("Music")], 2, 2),
        );
        build_relation_summary(table, &axes, &solved, Some(&stats), strategy)
    }

    #[test]
    fn summary_preserves_total_rows_and_constraints() {
        let s = build(AlignmentStrategy::Deterministic);
        assert_eq!(s.total_rows, 1000);
        // Constraint 1: rows with 0 <= i_manager_id < 50 must total 600.
        let pred = TablePredicate::always_true().with(ColumnPredicate::new(
            "i_manager_id",
            CompareOp::Lt,
            50,
        ));
        let achieved: u64 = s
            .rows
            .iter()
            .filter(|r| pred.evaluate(|c| r.values.get(c)))
            .map(|r| r.count)
            .sum();
        assert_eq!(achieved, 600);
    }

    #[test]
    fn unreferenced_columns_get_filler_from_stats() {
        let s = build(AlignmentStrategy::Deterministic);
        for row in &s.rows {
            assert_eq!(row.values.get("i_category"), Some(&Value::str("Music")));
            // i_color has no stats: falls back to the first dictionary entry.
            assert_eq!(row.values.get("i_color"), Some(&Value::str("red")));
            // The PK column is never materialized in the summary.
            assert!(!row.values.contains_key("i_item_sk"));
        }
    }

    #[test]
    fn deterministic_alignment_is_reproducible() {
        let a = build(AlignmentStrategy::Deterministic);
        let b = build(AlignmentStrategy::Deterministic);
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_alignment_still_satisfies_constraints() {
        let s = build(AlignmentStrategy::Sampled { seed: 7 });
        assert_eq!(s.total_rows, 1000);
        let pred = TablePredicate::always_true().with(ColumnPredicate::new(
            "i_manager_id",
            CompareOp::Lt,
            50,
        ));
        let achieved: u64 = s
            .rows
            .iter()
            .filter(|r| pred.evaluate(|c| r.values.get(c)))
            .map(|r| r.count)
            .sum();
        assert_eq!(achieved, 600);
    }

    #[test]
    fn sampled_alignment_differs_from_deterministic_in_values() {
        let det = build(AlignmentStrategy::Deterministic);
        let sam = build(AlignmentStrategy::Sampled { seed: 7 });
        // Same counts, (very likely) different representative values.
        let det_counts: Vec<u64> = det.rows.iter().map(|r| r.count).collect();
        let sam_counts: Vec<u64> = sam.rows.iter().map(|r| r.count).collect();
        assert_eq!(det_counts, sam_counts);
        assert_ne!(det, sam);
    }

    #[test]
    fn summary_is_small() {
        let s = build(AlignmentStrategy::Deterministic);
        // 1000 tuples summarized by a handful of rows, well under a KB.
        assert!(s.row_count() <= 4);
        assert!(s.size_bytes() < 1024);
    }
}
