//! Per-relation attribute spaces and constraint boxes.
//!
//! For every relation, the columns that the workload references become the
//! axes of a normalized integer space:
//!
//! * ordinary (filter) columns use the column's declared
//!   [`Domain`](hydra_catalog::domain::Domain);
//! * foreign-key columns become *reference axes* whose domain is the
//!   primary-key range `[0, |dim|)` of the referenced relation — possible
//!   because regenerated primary keys are auto-numbers.
//!
//! Every volumetric constraint is then translated into a box over that space
//! (or a union of boxes when a foreign-key condition projects onto several
//! primary-key blocks of the referenced dimension's summary).

use crate::error::{SummaryError, SummaryResult};
use crate::summary::RelationSummary;
use hydra_catalog::schema::Table;
use hydra_partition::interval::Interval;
use hydra_partition::nbox::NBox;
use hydra_partition::space::AttributeSpace;
use hydra_query::aqp::VolumetricConstraint;
use std::collections::BTreeMap;

/// Cap on the number of boxes a single constraint may expand into when its
/// foreign-key conditions project onto many primary-key intervals.  Beyond
/// the cap the intervals are coalesced into their convex hull (recorded by the
/// caller as an approximation).
pub const MAX_BOXES_PER_CONSTRAINT: usize = 4096;

/// The axes of one relation's partitioning space.
#[derive(Debug, Clone)]
pub struct RelationAxes {
    /// The normalized attribute space.
    pub space: AttributeSpace,
    /// Axis column names, in axis order.
    pub columns: Vec<String>,
}

impl RelationAxes {
    /// Collects the columns of `table` referenced by any constraint: filter
    /// columns plus foreign-key columns appearing in FK conditions.  The axis
    /// order follows the table's column declaration order (deterministic).
    pub fn referenced_columns(table: &Table, constraints: &[VolumetricConstraint]) -> Vec<String> {
        let mut referenced: Vec<String> = Vec::new();
        for column in table.columns() {
            let name = &column.name;
            let used = constraints.iter().any(|c| {
                c.predicate.referenced_columns().contains(&name.as_str())
                    || c.fk_conditions.iter().any(|fk| &fk.fk_column == name)
            });
            if used {
                referenced.push(name.clone());
            }
        }
        referenced
    }

    /// Builds the partitioning space for a relation.
    ///
    /// `fk_domains` maps referenced dimension table names to the number of
    /// rows their synthetic version will have (the primary-key axis width).
    pub fn build(
        table: &Table,
        constraints: &[VolumetricConstraint],
        fk_domains: &BTreeMap<String, u64>,
    ) -> SummaryResult<RelationAxes> {
        let columns = Self::referenced_columns(table, constraints);
        let mut axes = Vec::with_capacity(columns.len());
        for name in &columns {
            let column = table.column(name).ok_or_else(|| {
                SummaryError::Catalog(format!("column `{}`.`{name}` not found", table.name))
            })?;
            let interval = if let Some(fk) = table.foreign_key_on(name) {
                let rows = fk_domains
                    .get(&fk.referenced_table)
                    .copied()
                    .ok_or_else(|| SummaryError::DimensionNotSummarized {
                        table: table.name.clone(),
                        dimension: fk.referenced_table.clone(),
                    })?;
                Interval::new(0, rows.max(1) as i64)
            } else {
                let (lo, hi) = column.domain_or_default().normalized_bounds();
                Interval::new(lo, hi.max(lo + 1))
            };
            axes.push((name.clone(), interval));
        }
        Ok(RelationAxes {
            space: AttributeSpace::new(axes),
            columns,
        })
    }

    /// Translates one volumetric constraint into a union of boxes over this
    /// relation's space.
    ///
    /// * The local predicate contributes one interval per referenced axis.
    /// * Each foreign-key condition contributes the list of primary-key
    ///   intervals of the referenced dimension's summary that satisfy the
    ///   condition; multiple intervals multiply into a union of boxes
    ///   (cartesian product across FK axes), capped at
    ///   [`MAX_BOXES_PER_CONSTRAINT`].
    ///
    /// Returns the boxes plus a flag indicating whether interval coalescing
    /// (an approximation) was applied to stay under the cap.
    pub fn constraint_boxes(
        &self,
        table: &Table,
        constraint: &VolumetricConstraint,
        summaries: &BTreeMap<String, RelationSummary>,
    ) -> SummaryResult<(Vec<NBox>, bool)> {
        // Start with one interval list per axis (initially the full domain).
        let mut axis_intervals: Vec<Vec<Interval>> = (0..self.space.dims())
            .map(|i| vec![self.space.domain(i)])
            .collect();

        // Local predicate intervals.
        let local = constraint.predicate.normalized_intervals(table);
        for (column, (lo, hi)) in &local {
            if let Some(axis) = self.space.axis_index(column) {
                let clipped = Interval::new(*lo, *hi).intersect(&self.space.domain(axis));
                axis_intervals[axis] = vec![clipped];
            }
        }

        // Foreign-key conditions project onto primary-key intervals of the
        // referenced dimension's summary.
        let mut coalesced = false;
        for cond in &constraint.fk_conditions {
            let Some(axis) = self.space.axis_index(&cond.fk_column) else {
                continue;
            };
            let dim = summaries.get(&cond.dim_table).ok_or_else(|| {
                SummaryError::DimensionNotSummarized {
                    table: table.name.clone(),
                    dimension: cond.dim_table.clone(),
                }
            })?;
            let mut intervals =
                dim.satisfying_pk_intervals(&cond.dim_predicate, &cond.nested, summaries)?;
            let domain = self.space.domain(axis);
            intervals = intervals
                .into_iter()
                .map(|iv| iv.intersect(&domain))
                .filter(|iv| !iv.is_empty())
                .collect();
            // Combining with any interval already on this axis (e.g. two FK
            // conditions on the same column): intersect pairwise.
            let existing = std::mem::take(&mut axis_intervals[axis]);
            let mut combined: Vec<Interval> = Vec::new();
            for a in &existing {
                for b in &intervals {
                    let iv = a.intersect(b);
                    if !iv.is_empty() {
                        combined.push(iv);
                    }
                }
            }
            axis_intervals[axis] = combined;
        }

        // Cap the cross-product size by coalescing the largest interval lists
        // into their convex hulls.
        loop {
            let product: usize = axis_intervals
                .iter()
                .map(|l| l.len().max(1))
                .try_fold(1usize, |acc, n| acc.checked_mul(n))
                .unwrap_or(usize::MAX);
            if product <= MAX_BOXES_PER_CONSTRAINT {
                break;
            }
            coalesced = true;
            let widest = axis_intervals
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| l.len())
                .map(|(i, _)| i)
                .unwrap_or(0);
            let list = &axis_intervals[widest];
            let lo = list.iter().map(|i| i.lo).min().unwrap_or(0);
            let hi = list.iter().map(|i| i.hi).max().unwrap_or(0);
            axis_intervals[widest] = vec![Interval::new(lo, hi)];
        }

        // Expand the cartesian product into boxes.
        let mut boxes: Vec<Vec<Interval>> = vec![Vec::new()];
        for axis_list in &axis_intervals {
            if axis_list.is_empty() {
                // An axis with no satisfying interval ⇒ the constraint region
                // is empty (no dimension row satisfies the FK condition).
                return Ok((Vec::new(), coalesced));
            }
            let mut next = Vec::with_capacity(boxes.len() * axis_list.len());
            for prefix in &boxes {
                for iv in axis_list {
                    let mut b = prefix.clone();
                    b.push(*iv);
                    next.push(b);
                }
            }
            boxes = next;
        }
        let boxes: Vec<NBox> = boxes
            .into_iter()
            .map(NBox::new)
            .filter(|b| !b.is_empty())
            .collect();
        Ok((boxes, coalesced))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};
    use hydra_query::aqp::FkCondition;
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

    fn schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("i_manager_id", DataType::BigInt)
                            .domain(Domain::integer(0, 100)),
                    )
                    .column(
                        ColumnBuilder::new("i_category", DataType::Varchar(None))
                            .domain(Domain::categorical(["Books", "Music", "Women"])),
                    )
            })
            .table("store_sales", |t| {
                t.column(ColumnBuilder::new("ss_sk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("ss_item_fk", DataType::BigInt)
                            .references("item", "i_item_sk"),
                    )
                    .column(
                        ColumnBuilder::new("ss_quantity", DataType::BigInt)
                            .domain(Domain::integer(0, 50)),
                    )
            })
            .build()
            .unwrap()
    }

    fn item_constraint(card: u64) -> VolumetricConstraint {
        VolumetricConstraint {
            table: "item".to_string(),
            predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                "i_manager_id",
                CompareOp::Lt,
                50,
            )),
            fk_conditions: vec![],
            cardinality: card,
            label: "q#1".to_string(),
        }
    }

    #[test]
    fn referenced_columns_follow_table_order() {
        let schema = schema();
        let table = schema.table("item").unwrap();
        let cs = vec![
            VolumetricConstraint {
                table: "item".into(),
                predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                    "i_category",
                    CompareOp::Eq,
                    "Music",
                )),
                fk_conditions: vec![],
                cardinality: 1,
                label: "a".into(),
            },
            item_constraint(2),
        ];
        let cols = RelationAxes::referenced_columns(table, &cs);
        assert_eq!(
            cols,
            vec!["i_manager_id".to_string(), "i_category".to_string()]
        );
    }

    #[test]
    fn space_uses_column_domains() {
        let schema = schema();
        let table = schema.table("item").unwrap();
        let axes = RelationAxes::build(table, &[item_constraint(5)], &BTreeMap::new()).unwrap();
        assert_eq!(axes.columns, vec!["i_manager_id".to_string()]);
        assert_eq!(axes.space.domain(0), Interval::new(0, 100));
    }

    #[test]
    fn fk_axis_uses_dimension_row_count() {
        let schema = schema();
        let table = schema.table("store_sales").unwrap();
        let c = VolumetricConstraint {
            table: "store_sales".into(),
            predicate: TablePredicate::always_true(),
            fk_conditions: vec![FkCondition {
                fk_column: "ss_item_fk".into(),
                dim_table: "item".into(),
                dim_predicate: TablePredicate::always_true(),
                nested: vec![],
            }],
            cardinality: 10,
            label: "q#2".into(),
        };
        let mut fk_domains = BTreeMap::new();
        fk_domains.insert("item".to_string(), 963u64);
        let axes = RelationAxes::build(table, &[c], &fk_domains).unwrap();
        assert_eq!(axes.columns, vec!["ss_item_fk".to_string()]);
        assert_eq!(axes.space.domain(0), Interval::new(0, 963));

        // Missing dimension row count is an error.
        assert!(RelationAxes::build(table, &[], &BTreeMap::new()).is_ok()); // no axes referenced
        let c2 = VolumetricConstraint {
            table: "store_sales".into(),
            predicate: TablePredicate::always_true(),
            fk_conditions: vec![FkCondition {
                fk_column: "ss_item_fk".into(),
                dim_table: "item".into(),
                dim_predicate: TablePredicate::always_true(),
                nested: vec![],
            }],
            cardinality: 10,
            label: "q#2".into(),
        };
        assert!(matches!(
            RelationAxes::build(table, &[c2], &BTreeMap::new()),
            Err(SummaryError::DimensionNotSummarized { .. })
        ));
    }

    #[test]
    fn local_predicate_becomes_box() {
        let schema = schema();
        let table = schema.table("item").unwrap();
        let c = item_constraint(5);
        let axes = RelationAxes::build(table, std::slice::from_ref(&c), &BTreeMap::new()).unwrap();
        let (boxes, coalesced) = axes.constraint_boxes(table, &c, &BTreeMap::new()).unwrap();
        assert!(!coalesced);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].interval(0), Interval::new(0, 50));
    }

    #[test]
    fn fk_condition_projects_to_pk_intervals() {
        let schema = schema();
        let fact = schema.table("store_sales").unwrap();

        // Item summary with two groups: Music items in PK [0, 917), Women in [917, 938).
        let mut item = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_category".to_string(), Value::str("Music"));
        v1.insert("i_manager_id".to_string(), Value::Integer(40));
        item.push_row(917, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("i_category".to_string(), Value::str("Women"));
        v2.insert("i_manager_id".to_string(), Value::Integer(91));
        item.push_row(21, v2);
        let mut summaries = BTreeMap::new();
        summaries.insert("item".to_string(), item);

        let c = VolumetricConstraint {
            table: "store_sales".into(),
            predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                "ss_quantity",
                CompareOp::Ge,
                10,
            )),
            fk_conditions: vec![FkCondition {
                fk_column: "ss_item_fk".into(),
                dim_table: "item".into(),
                dim_predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                    "i_category",
                    CompareOp::Eq,
                    "Women",
                )),
                nested: vec![],
            }],
            cardinality: 10,
            label: "q#3".into(),
        };
        let mut fk_domains = BTreeMap::new();
        fk_domains.insert("item".to_string(), 938u64);
        let axes = RelationAxes::build(fact, std::slice::from_ref(&c), &fk_domains).unwrap();
        assert_eq!(
            axes.columns,
            vec!["ss_item_fk".to_string(), "ss_quantity".to_string()]
        );
        let (boxes, _) = axes.constraint_boxes(fact, &c, &summaries).unwrap();
        assert_eq!(boxes.len(), 1);
        let fk_axis = axes.space.axis_index("ss_item_fk").unwrap();
        let q_axis = axes.space.axis_index("ss_quantity").unwrap();
        assert_eq!(boxes[0].interval(fk_axis), Interval::new(917, 938));
        assert_eq!(boxes[0].interval(q_axis), Interval::new(10, 50));
    }

    #[test]
    fn unsatisfiable_fk_condition_yields_no_boxes() {
        let schema = schema();
        let fact = schema.table("store_sales").unwrap();
        let mut item = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_category".to_string(), Value::str("Music"));
        item.push_row(10, v1);
        let mut summaries = BTreeMap::new();
        summaries.insert("item".to_string(), item);

        let c = VolumetricConstraint {
            table: "store_sales".into(),
            predicate: TablePredicate::always_true(),
            fk_conditions: vec![FkCondition {
                fk_column: "ss_item_fk".into(),
                dim_table: "item".into(),
                dim_predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                    "i_category",
                    CompareOp::Eq,
                    "Garden",
                )),
                nested: vec![],
            }],
            cardinality: 0,
            label: "q#4".into(),
        };
        let mut fk_domains = BTreeMap::new();
        fk_domains.insert("item".to_string(), 10u64);
        let axes = RelationAxes::build(fact, std::slice::from_ref(&c), &fk_domains).unwrap();
        let (boxes, _) = axes.constraint_boxes(fact, &c, &summaries).unwrap();
        assert!(boxes.is_empty());
    }

    #[test]
    fn many_pk_intervals_are_coalesced_beyond_cap() {
        let schema = schema();
        let fact = schema.table("store_sales").unwrap();
        // A dimension summary alternating between matching and non-matching
        // groups produces many disjoint PK intervals.
        let mut item = RelationSummary::new("item", Some("i_item_sk".to_string()));
        for i in 0..(2 * MAX_BOXES_PER_CONSTRAINT as i64 + 10) {
            let mut v = BTreeMap::new();
            v.insert(
                "i_category".to_string(),
                Value::str(if i % 2 == 0 { "Music" } else { "Books" }),
            );
            item.push_row(1, v);
        }
        let total = item.total_rows;
        let mut summaries = BTreeMap::new();
        summaries.insert("item".to_string(), item);
        let c = VolumetricConstraint {
            table: "store_sales".into(),
            predicate: TablePredicate::always_true(),
            fk_conditions: vec![FkCondition {
                fk_column: "ss_item_fk".into(),
                dim_table: "item".into(),
                dim_predicate: TablePredicate::always_true().with(ColumnPredicate::new(
                    "i_category",
                    CompareOp::Eq,
                    "Music",
                )),
                nested: vec![],
            }],
            cardinality: 5,
            label: "q#5".into(),
        };
        let mut fk_domains = BTreeMap::new();
        fk_domains.insert("item".to_string(), total);
        let axes = RelationAxes::build(fact, std::slice::from_ref(&c), &fk_domains).unwrap();
        let (boxes, coalesced) = axes.constraint_boxes(fact, &c, &summaries).unwrap();
        assert!(coalesced);
        assert_eq!(boxes.len(), 1);
    }
}
