//! Error type for summary construction.

use hydra_lp::solver::LpError;
use hydra_partition::error::PartitionError;
use hydra_query::error::QueryError;
use std::fmt;

/// Errors raised while building or using a database summary.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryError {
    /// The schema/catalog disagreed with the constraints (unknown table etc.).
    Catalog(String),
    /// Partitioning failed.
    Partition(PartitionError),
    /// LP solving failed.
    Lp(LpError),
    /// Constraint extraction / AQP processing failed.
    Query(QueryError),
    /// A foreign key referenced a relation that has not been summarized yet
    /// (violates the dimensions-first processing order).
    DimensionNotSummarized {
        /// The relation being summarized.
        table: String,
        /// The referenced dimension that has no summary yet.
        dimension: String,
    },
    /// An aggregate query is outside the summary-direct class (the payload
    /// names the offending construct); callers that can regenerate tuples
    /// should fall back to a scan.
    OutOfClass(String),
    /// Generic invalid input.
    Invalid(String),
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            SummaryError::Partition(e) => write!(f, "partitioning error: {e}"),
            SummaryError::Lp(e) => write!(f, "LP error: {e}"),
            SummaryError::Query(e) => write!(f, "query error: {e}"),
            SummaryError::DimensionNotSummarized { table, dimension } => write!(
                f,
                "relation `{table}` references dimension `{dimension}` which has no summary yet"
            ),
            SummaryError::OutOfClass(reason) => {
                write!(f, "out of the summary-direct class: {reason}")
            }
            SummaryError::Invalid(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for SummaryError {}

impl From<PartitionError> for SummaryError {
    fn from(e: PartitionError) -> Self {
        SummaryError::Partition(e)
    }
}

impl From<LpError> for SummaryError {
    fn from(e: LpError) -> Self {
        SummaryError::Lp(e)
    }
}

impl From<QueryError> for SummaryError {
    fn from(e: QueryError) -> Self {
        SummaryError::Query(e)
    }
}

/// Convenience result alias.
pub type SummaryResult<T> = Result<T, SummaryError>;
