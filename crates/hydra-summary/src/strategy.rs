//! Pluggable summary-generation stage.
//!
//! Once a relation's LP is solved, something must turn region counts into
//! concrete summary rows. HYDRA's answer is deterministic alignment
//! (canonical first point of each region, contiguous PK blocks); DataSynth's
//! is sampled instantiation. Both are [`AlignedSummary`] configurations; the
//! [`SummaryStrategy`] trait lets sessions swap in other generators (e.g.
//! statistics-aware fillers or learned value models) without touching the
//! builder loop.

use crate::align::{build_relation_summary, AlignmentStrategy};
use crate::axes::RelationAxes;
use crate::solve::SolvedRelation;
use crate::summary::RelationSummary;
use hydra_catalog::schema::Table;
use hydra_catalog::stats::TableStatistics;
use std::fmt;

/// Turns a solved tuple placement into a relation summary.
pub trait SummaryStrategy: fmt::Debug + Send + Sync {
    /// Stable strategy name (used in reports and summary-cache keys).
    fn name(&self) -> &'static str;

    /// A fingerprint of the strategy's parameters, mixed into summary-cache
    /// keys so differently-configured strategies never share entries.
    fn fingerprint(&self) -> u64 {
        0
    }

    /// Builds the summary of one relation.
    fn summarize(
        &self,
        table: &Table,
        axes: &RelationAxes,
        solved: &SolvedRelation,
        stats: Option<&TableStatistics>,
    ) -> RelationSummary;
}

/// The alignment-based strategy of the paper: deterministic by default,
/// sampled for the E10 ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlignedSummary {
    /// Value-placement flavour.
    pub alignment: AlignmentStrategy,
}

impl AlignedSummary {
    /// Strategy with the given alignment flavour.
    pub fn new(alignment: AlignmentStrategy) -> Self {
        AlignedSummary { alignment }
    }
}

impl SummaryStrategy for AlignedSummary {
    fn name(&self) -> &'static str {
        match self.alignment {
            AlignmentStrategy::Deterministic => "aligned-deterministic",
            AlignmentStrategy::Sampled { .. } => "aligned-sampled",
        }
    }

    fn fingerprint(&self) -> u64 {
        match self.alignment {
            AlignmentStrategy::Deterministic => 0,
            AlignmentStrategy::Sampled { seed } => seed ^ 0x5EED,
        }
    }

    fn summarize(
        &self,
        table: &Table,
        axes: &RelationAxes,
        solved: &SolvedRelation,
        stats: Option<&TableStatistics>,
    ) -> RelationSummary {
        build_relation_summary(table, axes, solved, stats, self.alignment)
    }
}
