//! Random access into a summary's primary-key block structure.
//!
//! Deterministic alignment lays the tuples of summary row *i* out as one
//! contiguous block of auto-numbered primary keys (see
//! [`crate::summary::RelationSummary`]).  The [`PkBlockIndex`] materializes
//! the block starts as a prefix-sum array so that any primary key — and hence
//! any row position of the regenerated relation — can be mapped to its
//! `(block, offset)` coordinate with one binary search, in O(log B) for B
//! summary rows.  This is what lets tuple generation *seek*: a stream over
//! rows `[lo, hi)` starts producing immediately instead of replaying from
//! row 0.

use crate::summary::RelationSummary;

/// The position of one primary key inside a summary's block layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPos {
    /// Index of the summary row (block) that regenerates the key.
    pub block: usize,
    /// Offset of the key inside that block, in `[0, rows[block].count)`.
    pub offset: u64,
}

/// A block-offset index over one relation summary.
///
/// Construction is O(B); [`PkBlockIndex::locate`] is O(log B).  The index is
/// derived data — it is built from a summary snapshot and must be rebuilt if
/// rows are pushed afterwards.
///
/// ```
/// use hydra_summary::summary::RelationSummary;
/// use std::collections::BTreeMap;
///
/// let mut s = RelationSummary::new("item", Some("i_item_sk".to_string()));
/// s.push_row(917, BTreeMap::new());
/// s.push_row(21, BTreeMap::new());
/// let index = s.block_index();
/// assert_eq!(index.locate(916).unwrap().block, 0);
/// assert_eq!(index.locate(917).unwrap().block, 1);
/// assert_eq!(index.locate(917).unwrap().offset, 0);
/// assert!(index.locate(938).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PkBlockIndex {
    /// `starts[i]` is the first primary key of block `i`; the final entry is
    /// the total row count (a sentinel that makes every block a
    /// `starts[i]..starts[i + 1]` half-open interval).
    starts: Vec<u64>,
}

impl PkBlockIndex {
    /// Builds the index for a summary (prefix sums over the block counts).
    pub fn new(summary: &RelationSummary) -> Self {
        let mut starts = Vec::with_capacity(summary.rows.len() + 1);
        let mut acc = 0u64;
        starts.push(acc);
        for row in &summary.rows {
            acc += row.count;
            starts.push(acc);
        }
        PkBlockIndex { starts }
    }

    /// Total number of tuples the indexed summary regenerates.
    pub fn total_rows(&self) -> u64 {
        *self.starts.last().expect("index always has a sentinel")
    }

    /// Number of blocks (summary rows).
    pub fn block_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// The first primary key of block `block`, if the block exists.
    pub fn block_start(&self, block: usize) -> Option<u64> {
        (block < self.block_count()).then(|| self.starts[block])
    }

    /// Maps a primary key to its `(block, offset)` coordinate in O(log B).
    /// Returns `None` for keys at or beyond the total row count.
    pub fn locate(&self, pk: u64) -> Option<BlockPos> {
        if pk >= self.total_rows() {
            return None;
        }
        // The last block whose start is <= pk.  `partition_point` returns the
        // first index whose start exceeds pk; the sentinel guarantees it is
        // >= 1 because starts[0] == 0 <= pk.
        let block = self.starts.partition_point(|&s| s <= pk) - 1;
        Some(BlockPos {
            block,
            offset: pk - self.starts[block],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn summary(counts: &[u64]) -> RelationSummary {
        let mut s = RelationSummary::new("t", None);
        for &c in counts {
            s.push_row(c, BTreeMap::new());
        }
        s
    }

    #[test]
    fn locate_hits_every_block_boundary() {
        let s = summary(&[917, 21, 25]);
        let index = s.block_index();
        assert_eq!(index.block_count(), 3);
        assert_eq!(index.total_rows(), 963);
        for (pk, block, offset) in [
            (0, 0, 0),
            (916, 0, 916),
            (917, 1, 0),
            (937, 1, 20),
            (938, 2, 0),
            (962, 2, 24),
        ] {
            assert_eq!(
                index.locate(pk),
                Some(BlockPos { block, offset }),
                "pk {pk}"
            );
        }
        assert_eq!(index.locate(963), None);
        assert_eq!(index.locate(u64::MAX), None);
    }

    #[test]
    fn locate_agrees_with_linear_scan() {
        let s = summary(&[3, 1, 1, 40, 2, 9]);
        let index = s.block_index();
        let mut expected_block = 0usize;
        let mut expected_offset = 0u64;
        for pk in 0..index.total_rows() {
            while expected_offset >= s.rows[expected_block].count {
                expected_block += 1;
                expected_offset = 0;
            }
            let pos = index.locate(pk).unwrap();
            assert_eq!((pos.block, pos.offset), (expected_block, expected_offset));
            expected_offset += 1;
        }
    }

    #[test]
    fn empty_summary_has_no_positions() {
        let s = summary(&[]);
        let index = s.block_index();
        assert_eq!(index.block_count(), 0);
        assert_eq!(index.total_rows(), 0);
        assert_eq!(index.locate(0), None);
        assert_eq!(index.block_start(0), None);
    }

    #[test]
    fn block_starts_match_pk_blocks() {
        let s = summary(&[5, 7, 11]);
        let index = s.block_index();
        for block in 0..s.row_count() {
            assert_eq!(
                index.block_start(block).unwrap() as i64,
                s.pk_block(block).unwrap().lo
            );
        }
    }
}
