//! # hydra-summary
//!
//! The vendor-side core of HYDRA: turning a workload's volumetric constraints
//! into a **database summary** — a memory-resident structure, a few KB in
//! size, from which a volumetrically similar database of any size can be
//! regenerated on the fly.
//!
//! The pipeline implemented here follows the paper's architecture (Figure 2):
//!
//! 1. **Axes construction** ([`axes`]) — for every relation, the columns the
//!    workload references (filter columns plus foreign-key reference axes)
//!    become a normalized [`hydra_partition::AttributeSpace`]; every
//!    volumetric constraint becomes an axis-aligned box (or union of boxes,
//!    for foreign-key conditions that project onto several primary-key
//!    blocks of an already-summarized dimension).
//! 2. **LP formulation and solving** ([`solve`]) — one variable per region of
//!    the region partition, one equality constraint per AQP edge, one total
//!    row-count constraint; solved by `hydra-lp`'s simplex (Z3's role in the
//!    paper), with least-violation recovery when a workload is inconsistent.
//! 3. **Deterministic alignment** ([`align`]) — region solutions are laid out
//!    as contiguous primary-key blocks in canonical region order and each
//!    region contributes one summary row (`#TUPLES` + value vector), exactly
//!    the summary format shown in the paper's Figure 4 / Table 1.
//! 4. **Referential post-processing** ([`builder`]) — relations are processed
//!    dimensions-first so that foreign-key axes always point at concrete
//!    primary-key blocks of the referenced relation; any residual clamping is
//!    recorded as additive error.
//! 5. **Verification** ([`verify`]) — the summary is replayed against every
//!    volumetric constraint to produce the relative-error report of the
//!    vendor screen (and experiments E2/E7).
//!
//! The solve stage (2) and the generation stage (3) are both pluggable:
//! [`backend::LpBackend`] swaps the partitioning/solver combination (HYDRA's
//! region+simplex vs. the DataSynth grid baseline), and
//! [`strategy::SummaryStrategy`] swaps the summary generator. The builder
//! solves independent relations of the referential DAG in parallel and can
//! reuse per-relation results through a [`builder::SummaryCache`].

//!
//! Because alignment is deterministic, each summary row's tuples occupy one
//! contiguous primary-key block; [`index::PkBlockIndex`] exposes that layout
//! as an O(log B) seekable prefix-sum index, which is what gives downstream
//! tuple generation random access (and therefore sharding) over the
//! regenerated relation.

#![warn(missing_docs)]

pub mod align;
pub mod axes;
pub mod backend;
pub mod builder;
pub mod delta;
pub mod error;
pub mod exec;
pub mod index;
pub mod solve;
pub mod strategy;
pub mod summary;
pub mod verify;

pub use align::AlignmentStrategy;
pub use backend::{GridBackend, LpBackend, SimplexBackend, SolveRequest};
pub use builder::{
    InMemorySummaryCache, RelationBuildStats, SummaryBuildReport, SummaryBuilder,
    SummaryBuilderConfig, SummaryCache,
};
pub use delta::{
    DeltaAction, DeltaBuild, DeltaBuildReport, RelationDiff, SolveBaseline, SummaryDiff,
};
pub use error::{SummaryError, SummaryResult};
pub use exec::{JoinResolver, ResolvedDim, SummaryExecutor};
pub use index::{BlockPos, PkBlockIndex};
pub use strategy::{AlignedSummary, SummaryStrategy};
pub use summary::{DatabaseSummary, RelationSummary, SummaryRow};
pub use verify::{ConstraintCheck, VolumetricAccuracyReport};
