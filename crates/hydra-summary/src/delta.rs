//! Delta re-profiling support: solve baselines, structural summary diffs
//! and the incremental build report.
//!
//! A from-scratch build can *retain* its per-relation solve artifacts — the
//! constraint signature, the region partition and the solved region counts —
//! as a [`SolveBaseline`].  A later build against an evolved constraint set
//! then goes relation by relation:
//!
//! * **unchanged signature** → the previous summary is reused outright (no
//!   partitioning, no LP, bit-identical output);
//! * **changed signature** → the relation re-solves, but the previous
//!   partition seeds an incremental refinement and the previous solution's
//!   support warm-starts the simplex ([`DeltaAction::WarmSolved`] when the
//!   warm basis closed phase 1, [`DeltaAction::ColdSolved`] when the hint
//!   was stale and the solver fell back).
//!
//! The structural outcome is summarized as a [`SummaryDiff`]: per relation,
//! which primary-key blocks were added, removed or resized relative to the
//! previous summary — the artifact a long-lived summary deployment ships to
//! its consumers instead of a whole new summary.

use crate::builder::RelationBuildStats;
use crate::solve::SolvedRelation;
use crate::summary::{DatabaseSummary, RelationSummary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything retained about one relation's solve for future delta builds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelationBaseline {
    /// Fingerprint of every input that determined the solve (constraints,
    /// row target, FK domains, dimension summaries, backend, strategy).
    pub signature: u64,
    /// The solved placement (partition + region counts) — the warm-start
    /// seed for a changed re-solve.
    pub solved: SolvedRelation,
    /// The summary generated from the solve.
    pub summary: RelationSummary,
    /// The build statistics reported for the solve.
    pub stats: RelationBuildStats,
}

/// The retained solve artifacts of a whole build, keyed by relation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SolveBaseline {
    /// Per-relation baselines.
    pub relations: BTreeMap<String, RelationBaseline>,
}

impl SolveBaseline {
    /// Number of retained relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Reassembles the database summary this baseline was retained from.
    pub fn to_summary(&self) -> DatabaseSummary {
        let mut db = DatabaseSummary::new();
        for baseline in self.relations.values() {
            db.insert(baseline.summary.clone());
        }
        db
    }
}

/// How one relation was handled by a delta build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaAction {
    /// Constraint signature unchanged: the previous summary was reused
    /// without partitioning or solving.
    Reused,
    /// Re-solved, and the previous solution's support closed phase 1 — the
    /// solver never had to look beyond the warm basis.
    WarmSolved,
    /// Re-solved from scratch (no previous solve, or a stale warm basis the
    /// solver fell back from).
    ColdSolved,
}

/// Per-relation outcome of a delta build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationDeltaStats {
    /// Relation name.
    pub table: String,
    /// How the relation was handled.
    pub action: DeltaAction,
    /// LP variables of the re-solve (0 for reused relations).
    pub lp_variables: usize,
    /// Wall-clock LP solve time in microseconds (0 for reused relations).
    pub solve_micros: u64,
}

/// The incremental build report: what re-solved, what was reused, and what
/// the warm starts contributed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeltaBuildReport {
    /// Per-relation outcomes, in processing order.
    pub relations: Vec<RelationDeltaStats>,
    /// Total wall-clock time of the delta build in microseconds.
    pub total_micros: u64,
}

impl DeltaBuildReport {
    /// Relations reused without re-solving.
    pub fn reused(&self) -> usize {
        self.count(DeltaAction::Reused)
    }

    /// Relations re-solved with a successful warm start.
    pub fn warm_solved(&self) -> usize {
        self.count(DeltaAction::WarmSolved)
    }

    /// Relations re-solved cold.
    pub fn cold_solved(&self) -> usize {
        self.count(DeltaAction::ColdSolved)
    }

    fn count(&self, action: DeltaAction) -> usize {
        self.relations.iter().filter(|r| r.action == action).count()
    }

    /// Renders a per-relation text table of the delta outcomes.
    pub fn to_display_table(&self) -> String {
        let mut out = String::from("relation | action | LP vars | solve time (ms)\n");
        for r in &self.relations {
            out.push_str(&format!(
                "{} | {:?} | {} | {:.2}\n",
                r.table,
                r.action,
                r.lp_variables,
                r.solve_micros as f64 / 1e3
            ));
        }
        out.push_str(&format!(
            "total: {} reused, {} warm, {} cold in {:.2} ms\n",
            self.reused(),
            self.warm_solved(),
            self.cold_solved(),
            self.total_micros as f64 / 1e3
        ));
        out
    }
}

/// The structural difference between two summaries of one relation.
///
/// Blocks are identified by their value vector (the non-PK columns all
/// tuples of the block share): a block present only in the new summary was
/// *added*, present only in the old one *removed*, present in both with a
/// different `#TUPLES` count *resized*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationDiff {
    /// Relation name.
    pub table: String,
    /// Regenerated row count before the delta.
    pub rows_before: u64,
    /// Regenerated row count after the delta.
    pub rows_after: u64,
    /// Blocks present only in the new summary.
    pub blocks_added: usize,
    /// Blocks present only in the old summary.
    pub blocks_removed: usize,
    /// Blocks present in both summaries with different tuple counts.
    pub blocks_resized: usize,
    /// Blocks carried over unchanged.
    pub blocks_unchanged: usize,
}

impl RelationDiff {
    /// True when the relation's summary is structurally identical.
    pub fn is_unchanged(&self) -> bool {
        self.blocks_added == 0
            && self.blocks_removed == 0
            && self.blocks_resized == 0
            && self.rows_before == self.rows_after
    }
}

/// The structural difference between two database summaries.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SummaryDiff {
    /// Per-relation diffs, in relation-name order (relations present in
    /// either summary).
    pub relations: Vec<RelationDiff>,
}

impl SummaryDiff {
    /// Computes the structural diff from `old` to `new`.
    pub fn between(old: &DatabaseSummary, new: &DatabaseSummary) -> SummaryDiff {
        let names: std::collections::BTreeSet<&String> =
            old.relations.keys().chain(new.relations.keys()).collect();
        let relations = names
            .into_iter()
            .map(|name| {
                let before = old.relation(name);
                let after = new.relation(name);
                Self::diff_relation(name, before, after)
            })
            .collect();
        SummaryDiff { relations }
    }

    fn diff_relation(
        table: &str,
        before: Option<&RelationSummary>,
        after: Option<&RelationSummary>,
    ) -> RelationDiff {
        // Blocks keyed by the canonical JSON of their value vector; counts
        // accumulated because distinct blocks can share a value vector.
        let census = |summary: Option<&RelationSummary>| -> BTreeMap<String, (u64, usize)> {
            let mut blocks: BTreeMap<String, (u64, usize)> = BTreeMap::new();
            if let Some(s) = summary {
                for row in &s.rows {
                    let key = serde_json::to_string(&row.values).unwrap_or_default();
                    let entry = blocks.entry(key).or_insert((0, 0));
                    entry.0 += row.count;
                    entry.1 += 1;
                }
            }
            blocks
        };
        let old_blocks = census(before);
        let new_blocks = census(after);
        let mut diff = RelationDiff {
            table: table.to_string(),
            rows_before: before.map_or(0, |s| s.total_rows),
            rows_after: after.map_or(0, |s| s.total_rows),
            blocks_added: 0,
            blocks_removed: 0,
            blocks_resized: 0,
            blocks_unchanged: 0,
        };
        for (key, (count, blocks)) in &new_blocks {
            match old_blocks.get(key) {
                None => diff.blocks_added += blocks,
                Some((old_count, old_blocks)) if old_count == count && old_blocks == blocks => {
                    diff.blocks_unchanged += blocks;
                }
                Some(_) => diff.blocks_resized += blocks,
            }
        }
        for (key, (_, blocks)) in &old_blocks {
            if !new_blocks.contains_key(key) {
                diff.blocks_removed += blocks;
            }
        }
        diff
    }

    /// The relations whose summaries changed structurally.
    pub fn changed_relations(&self) -> Vec<&str> {
        self.relations
            .iter()
            .filter(|r| !r.is_unchanged())
            .map(|r| r.table.as_str())
            .collect()
    }

    /// True when nothing changed in any relation.
    pub fn is_unchanged(&self) -> bool {
        self.relations.iter().all(RelationDiff::is_unchanged)
    }

    /// Renders a per-relation text table of the diff.
    pub fn to_display_table(&self) -> String {
        let mut out = String::from(
            "relation | rows before -> after | +blocks | -blocks | ~blocks | =blocks\n",
        );
        for r in &self.relations {
            out.push_str(&format!(
                "{} | {} -> {} | {} | {} | {} | {}\n",
                r.table,
                r.rows_before,
                r.rows_after,
                r.blocks_added,
                r.blocks_removed,
                r.blocks_resized,
                r.blocks_unchanged
            ));
        }
        out
    }
}

/// The complete outcome of a delta build (see
/// [`crate::builder::SummaryBuilder::build_delta`]).
#[derive(Debug, Clone)]
pub struct DeltaBuild {
    /// The rebuilt database summary.
    pub summary: DatabaseSummary,
    /// The standard construction report (reused relations are accounted as
    /// cached).
    pub report: crate::builder::SummaryBuildReport,
    /// The incremental outcome per relation.
    pub delta_report: DeltaBuildReport,
    /// The refreshed baseline for the next delta build.
    pub baseline: SolveBaseline,
    /// Structural diff against the previous baseline's summary.
    pub diff: SummaryDiff,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::types::Value;

    fn summary(table: &str, blocks: &[(u64, i64)]) -> RelationSummary {
        let mut s = RelationSummary::new(table, Some("pk".to_string()));
        for (count, a) in blocks {
            let mut values = BTreeMap::new();
            values.insert("a".to_string(), Value::Integer(*a));
            s.push_row(*count, values);
        }
        s
    }

    fn db(relations: Vec<RelationSummary>) -> DatabaseSummary {
        let mut db = DatabaseSummary::new();
        for r in relations {
            db.insert(r);
        }
        db
    }

    #[test]
    fn diff_classifies_added_removed_resized_unchanged() {
        let old = db(vec![summary("t", &[(10, 1), (20, 2), (30, 3)])]);
        let new = db(vec![summary("t", &[(10, 1), (25, 2), (40, 4)])]);
        let diff = SummaryDiff::between(&old, &new);
        assert_eq!(diff.relations.len(), 1);
        let r = &diff.relations[0];
        assert_eq!(r.blocks_unchanged, 1); // a=1 @10
        assert_eq!(r.blocks_resized, 1); // a=2: 20 -> 25
        assert_eq!(r.blocks_added, 1); // a=4
        assert_eq!(r.blocks_removed, 1); // a=3
        assert_eq!(r.rows_before, 60);
        assert_eq!(r.rows_after, 75);
        assert!(!r.is_unchanged());
        assert_eq!(diff.changed_relations(), vec!["t"]);
        assert!(diff.to_display_table().contains("60 -> 75"));
    }

    #[test]
    fn identical_summaries_diff_empty() {
        let a = db(vec![
            summary("t", &[(10, 1)]),
            summary("u", &[(5, 7), (6, 8)]),
        ]);
        let diff = SummaryDiff::between(&a, &a.clone());
        assert!(diff.is_unchanged());
        assert!(diff.changed_relations().is_empty());
    }

    #[test]
    fn relation_appearing_and_disappearing() {
        let old = db(vec![summary("gone", &[(10, 1)])]);
        let new = db(vec![summary("fresh", &[(4, 2)])]);
        let diff = SummaryDiff::between(&old, &new);
        let gone = diff.relations.iter().find(|r| r.table == "gone").unwrap();
        assert_eq!(gone.blocks_removed, 1);
        assert_eq!(gone.rows_after, 0);
        let fresh = diff.relations.iter().find(|r| r.table == "fresh").unwrap();
        assert_eq!(fresh.blocks_added, 1);
        assert_eq!(fresh.rows_before, 0);
    }

    #[test]
    fn diff_serde_round_trip() {
        let old = db(vec![summary("t", &[(10, 1)])]);
        let new = db(vec![summary("t", &[(12, 1)])]);
        let diff = SummaryDiff::between(&old, &new);
        let json = serde_json::to_string(&diff).unwrap();
        let back: SummaryDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(diff, back);
    }

    #[test]
    fn delta_report_accounting() {
        let report = DeltaBuildReport {
            relations: vec![
                RelationDeltaStats {
                    table: "a".into(),
                    action: DeltaAction::Reused,
                    lp_variables: 0,
                    solve_micros: 0,
                },
                RelationDeltaStats {
                    table: "b".into(),
                    action: DeltaAction::WarmSolved,
                    lp_variables: 12,
                    solve_micros: 480,
                },
                RelationDeltaStats {
                    table: "c".into(),
                    action: DeltaAction::ColdSolved,
                    lp_variables: 9,
                    solve_micros: 900,
                },
            ],
            total_micros: 1500,
        };
        assert_eq!(report.reused(), 1);
        assert_eq!(report.warm_solved(), 1);
        assert_eq!(report.cold_solved(), 1);
        let table = report.to_display_table();
        assert!(table.contains("1 reused, 1 warm, 1 cold"));
        let json = serde_json::to_string(&report).unwrap();
        let back: DeltaBuildReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
