//! Regeneration-quality reports: the textual counterpart of the demo's vendor
//! screens (summary display, LP statistics, error CDF, per-query AQP
//! comparison).

use crate::error::HydraResult;
use hydra_datagen::dataless::DatalessDatabase;
use hydra_engine::exec::Executor;
use hydra_query::plan::LogicalPlan;
use hydra_query::workload::QueryWorkload;
use hydra_summary::builder::SummaryBuildReport;
use hydra_summary::verify::VolumetricAccuracyReport;
use serde::{Deserialize, Serialize};

/// One annotated edge compared between the original and regenerated plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AqpEdgeComparison {
    /// Operator description.
    pub operator: String,
    /// Cardinality observed at the client (green annotation in the demo).
    pub original: u64,
    /// Cardinality observed on the regenerated database.
    pub regenerated: u64,
    /// Relative error (red annotation in the demo).
    pub relative_error: f64,
}

/// The AQP comparison for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryAqpComparison {
    /// Query name.
    pub query: String,
    /// Per-edge comparisons in plan pre-order.
    pub edges: Vec<AqpEdgeComparison>,
}

impl QueryAqpComparison {
    /// The largest relative error across this query's edges.
    pub fn max_relative_error(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.relative_error)
            .fold(0.0, f64::max)
    }

    /// The mean relative error across this query's edges.
    pub fn mean_relative_error(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.relative_error).sum::<f64>() / self.edges.len() as f64
    }
}

/// Executes the workload against the regenerated (dataless) database and
/// compares every plan edge's cardinality with the client's annotation.
pub fn build_aqp_comparisons(
    dataless: &DatalessDatabase,
    workload: &QueryWorkload,
) -> HydraResult<Vec<QueryAqpComparison>> {
    let executor = Executor::new(dataless);
    let mut out = Vec::new();
    for entry in &workload.entries {
        let Some(original) = &entry.aqp else { continue };
        let plan = LogicalPlan::from_query(&entry.query)?;
        let (_result, regenerated) = executor.run_annotated(&entry.query.name, &plan)?;
        let original_nodes = original.root.preorder();
        let regenerated_nodes = regenerated.root.preorder();
        let edges = original_nodes
            .iter()
            .zip(regenerated_nodes.iter())
            .map(|(o, r)| {
                let abs = o.cardinality.abs_diff(r.cardinality);
                AqpEdgeComparison {
                    operator: o.op.name(),
                    original: o.cardinality,
                    regenerated: r.cardinality,
                    relative_error: abs as f64 / o.cardinality.max(1) as f64,
                }
            })
            .collect();
        out.push(QueryAqpComparison {
            query: entry.query.name.clone(),
            edges,
        });
    }
    Ok(out)
}

/// The consolidated regeneration report.
#[derive(Debug, Clone)]
pub struct RegenerationReport {
    /// Per-relation construction statistics.
    pub build: SummaryBuildReport,
    /// Volumetric-constraint accuracy of the summary.
    pub accuracy: VolumetricAccuracyReport,
    /// Per-query AQP comparisons (may be empty when comparison was disabled).
    pub aqp_comparisons: Vec<QueryAqpComparison>,
    /// Summary size in bytes.
    pub summary_bytes: usize,
    /// Total rows regenerable from the summary.
    pub regenerated_rows: u64,
}

impl RegenerationReport {
    /// Mean relative error across all compared AQP edges.
    pub fn mean_aqp_relative_error(&self) -> f64 {
        let edges: Vec<f64> = self
            .aqp_comparisons
            .iter()
            .flat_map(|q| q.edges.iter().map(|e| e.relative_error))
            .collect();
        if edges.is_empty() {
            return 0.0;
        }
        edges.iter().sum::<f64>() / edges.len() as f64
    }

    /// Fraction of compared AQP edges within the given relative error.
    pub fn aqp_fraction_within(&self, threshold: f64) -> f64 {
        let edges: Vec<f64> = self
            .aqp_comparisons
            .iter()
            .flat_map(|q| q.edges.iter().map(|e| e.relative_error))
            .collect();
        if edges.is_empty() {
            return 1.0;
        }
        edges.iter().filter(|e| **e <= threshold + 1e-12).count() as f64 / edges.len() as f64
    }

    /// Renders the report as human-readable text (the vendor screens).
    pub fn to_display_text(&self) -> String {
        let mut out = String::new();
        out.push_str("=== HYDRA regeneration report ===\n\n");
        out.push_str(&format!(
            "summary: {} bytes for {} regenerable rows ({:.1} rows/byte)\n\n",
            self.summary_bytes,
            self.regenerated_rows,
            if self.summary_bytes > 0 {
                self.regenerated_rows as f64 / self.summary_bytes as f64
            } else {
                0.0
            }
        ));
        out.push_str("--- per-relation LP statistics ---\n");
        out.push_str(&self.build.to_display_table());
        out.push_str("\n--- volumetric constraint accuracy ---\n");
        out.push_str(&self.accuracy.to_display_table());
        if !self.aqp_comparisons.is_empty() {
            out.push_str("\n--- AQP comparison (original vs regenerated) ---\n");
            out.push_str(&format!(
                "queries compared: {}, mean edge relative error: {:.4}, edges within 10%: {:.1}%\n",
                self.aqp_comparisons.len(),
                self.mean_aqp_relative_error(),
                100.0 * self.aqp_fraction_within(0.10)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_and_query_error_math() {
        let q = QueryAqpComparison {
            query: "q1".into(),
            edges: vec![
                AqpEdgeComparison {
                    operator: "Scan(t)".into(),
                    original: 100,
                    regenerated: 100,
                    relative_error: 0.0,
                },
                AqpEdgeComparison {
                    operator: "Filter(t)".into(),
                    original: 50,
                    regenerated: 45,
                    relative_error: 0.1,
                },
            ],
        };
        assert_eq!(q.max_relative_error(), 0.1);
        assert!((q.mean_relative_error() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates() {
        let report = RegenerationReport {
            build: SummaryBuildReport::default(),
            accuracy: VolumetricAccuracyReport::default(),
            aqp_comparisons: vec![QueryAqpComparison {
                query: "q1".into(),
                edges: vec![AqpEdgeComparison {
                    operator: "Scan(t)".into(),
                    original: 10,
                    regenerated: 10,
                    relative_error: 0.0,
                }],
            }],
            summary_bytes: 128,
            regenerated_rows: 1000,
        };
        assert_eq!(report.mean_aqp_relative_error(), 0.0);
        assert_eq!(report.aqp_fraction_within(0.0), 1.0);
        let text = report.to_display_text();
        assert!(text.contains("128 bytes"));
        assert!(text.contains("AQP comparison"));
    }

    #[test]
    fn empty_report_defaults() {
        let report = RegenerationReport {
            build: SummaryBuildReport::default(),
            accuracy: VolumetricAccuracyReport::default(),
            aqp_comparisons: vec![],
            summary_bytes: 0,
            regenerated_rows: 0,
        };
        assert_eq!(report.mean_aqp_relative_error(), 0.0);
        assert_eq!(report.aqp_fraction_within(0.5), 1.0);
    }
}
