//! The client → vendor transfer package.
//!
//! The package carries exactly what the paper's client interface ships: the
//! schema, the metadata (row counts, per-column statistics) and the query
//! workload with its annotated plans.  It serializes to JSON — the format the
//! original demo uses for execution plans — so it can be inspected, stored, or
//! sent across an anonymization layer.

use crate::error::{HydraError, HydraResult};
use hydra_catalog::metadata::DatabaseMetadata;
use hydra_query::workload::QueryWorkload;
use serde::{Deserialize, Serialize};

/// Everything the vendor needs to regenerate the client's database behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferPackage {
    /// Schema + per-table statistics (the CODD-style metadata transfer).
    pub metadata: DatabaseMetadata,
    /// The query workload with annotated plans.
    pub workload: QueryWorkload,
}

impl TransferPackage {
    /// Creates a package.
    pub fn new(metadata: DatabaseMetadata, workload: QueryWorkload) -> Self {
        TransferPackage { metadata, workload }
    }

    /// Serializes the package to pretty JSON.
    pub fn to_json(&self) -> HydraResult<String> {
        serde_json::to_string_pretty(self).map_err(|e| HydraError::Transfer(e.to_string()))
    }

    /// Parses a package from JSON.
    pub fn from_json(json: &str) -> HydraResult<Self> {
        serde_json::from_str(json).map_err(|e| HydraError::Transfer(e.to_string()))
    }

    /// Size of the JSON encoding in bytes (what actually crosses the wire —
    /// compare against the size of the client database it stands in for).
    pub fn transfer_size_bytes(&self) -> HydraResult<usize> {
        Ok(self.to_json()?.len())
    }

    /// Number of queries in the workload.
    pub fn query_count(&self) -> usize {
        self.workload.len()
    }

    /// Total number of annotated plan edges.
    pub fn annotated_edges(&self) -> usize {
        self.workload.total_annotated_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::stats::TableStatistics;
    use hydra_catalog::types::DataType;

    fn package() -> TransferPackage {
        let schema = SchemaBuilder::new("db")
            .table("t", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
            })
            .build()
            .unwrap();
        let mut metadata = DatabaseMetadata::new(schema);
        metadata.set_table("t", TableStatistics::with_row_count(100));
        TransferPackage::new(metadata, QueryWorkload::new())
    }

    #[test]
    fn json_round_trip() {
        let p = package();
        let json = p.to_json().unwrap();
        let back = TransferPackage::from_json(&json).unwrap();
        assert_eq!(p, back);
        assert!(p.transfer_size_bytes().unwrap() > 0);
        assert_eq!(p.query_count(), 0);
        assert_eq!(p.annotated_edges(), 0);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(TransferPackage::from_json("{oops").is_err());
    }
}
