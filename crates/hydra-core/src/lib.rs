//! # hydra-core
//!
//! The public face of the HYDRA reproduction: the end-to-end
//! client-site → vendor-site pipeline of the paper's architecture (Figure 2).
//!
//! * [`client::ClientSite`] — profiles the customer warehouse (schema,
//!   metadata, statistics), executes the query workload to obtain annotated
//!   query plans, and packages everything for transfer, optionally through an
//!   anonymization layer.
//! * [`transfer::TransferPackage`] — the JSON-serializable information
//!   synopsis shipped from client to vendor.
//! * [`vendor::VendorSite`] — the vendor-side regenerator: preprocesses the
//!   AQPs into per-relation constraints, formulates and solves the LPs,
//!   builds the database summary, verifies volumetric similarity, and exposes
//!   the dataless database for dynamic regeneration during query execution.
//! * [`scenario`] — "what-if" scenario construction: inject or scale
//!   cardinality annotations, check feasibility, and build summaries for
//!   extrapolated (up to exabyte-row-count) environments.
//! * [`report`] — human-readable regeneration-quality reports (the vendor
//!   screens of the original demo).
//!
//! All of it is fronted by [`session::Hydra`] — a configured session built
//! from a typed builder, with pluggable LP backends, parallel per-relation
//! solving, and a summary cache for scenario sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use hydra_core::session::Hydra;
//! use hydra_workload::{generate_client_database, DataGenConfig, retail_row_targets,
//!                      retail_schema, WorkloadGenConfig, WorkloadGenerator};
//!
//! // Client site: a small retail warehouse and an 8-query workload.
//! let schema = retail_schema();
//! let mut targets = retail_row_targets(0.005);
//! targets.insert("store_sales".to_string(), 2_000);
//! targets.insert("web_sales".to_string(), 500);
//! let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
//! let queries = WorkloadGenerator::new(schema.clone(),
//!     WorkloadGenConfig { num_queries: 8, ..Default::default() }).generate();
//!
//! // One session drives both sites: profile, ship, regenerate, verify.
//! let session = Hydra::builder().parallelism(2).build();
//! let package = session.profile(db, &queries).unwrap();
//! let result = session.regenerate(&package).unwrap();
//! assert!(result.accuracy.fraction_within(0.10) > 0.9);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod delta;
pub mod error;
pub mod pipeline;
pub mod report;
pub mod scenario;
pub mod session;
pub mod transfer;
pub mod vendor;

pub use client::ClientSite;
pub use delta::{DeltaOutcome, RegenerationState};
pub use error::{HydraError, HydraResult};
pub use pipeline::{run_end_to_end, EndToEndResult};
pub use report::{AqpEdgeComparison, QueryAqpComparison, RegenerationReport};
pub use scenario::{construct_scenario, Scenario, ScenarioResult};
pub use session::{Hydra, HydraBuilder};
pub use transfer::TransferPackage;
pub use vendor::{HydraConfig, RegenerationResult, VendorSite};
