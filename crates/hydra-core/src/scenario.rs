//! Scenario construction ("what-if" regeneration).
//!
//! The vendor can pro-actively simulate anticipated client environments by
//! injecting cardinality annotations into the original AQPs — e.g. scaling
//! everything by 10⁶ to model an exabyte-era warehouse, or stressing one
//! relation far beyond its observed size.  HYDRA verifies that the synthetic
//! assignments are feasible (the per-relation LPs admit a solution) and, if
//! so, builds the regeneration summary.  Because summary construction is
//! data-scale-free, this costs the same regardless of the simulated volume.

use crate::error::{HydraError, HydraResult};
use crate::transfer::TransferPackage;
use crate::vendor::{HydraConfig, RegenerationResult, VendorSite};
use hydra_lp::solver::SolveStatus;
use hydra_summary::backend::SimplexBackend;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A what-if scenario: how to distort the observed workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// Uniform scale factor applied to every cardinality annotation and every
    /// table row count.
    pub scale_factor: f64,
    /// Per-relation row-count overrides applied after scaling (absolute
    /// values, e.g. "make store_sales a trillion rows").
    pub row_overrides: BTreeMap<String, u64>,
    /// Per-edge cardinality overrides applied after scaling, keyed by
    /// `(query name, pre-order edge index)`.
    pub cardinality_overrides: BTreeMap<(String, usize), u64>,
    /// When `true`, an infeasible scenario is an error; when `false`, the
    /// least-violation summary is built and the violation is reported.
    pub strict: bool,
}

impl Scenario {
    /// A pure scale-up/down scenario.
    pub fn scaled(name: impl Into<String>, scale_factor: f64) -> Self {
        Scenario {
            name: name.into(),
            scale_factor,
            row_overrides: BTreeMap::new(),
            cardinality_overrides: BTreeMap::new(),
            strict: false,
        }
    }

    /// Adds an absolute row-count override for one relation.
    pub fn with_row_override(mut self, table: impl Into<String>, rows: u64) -> Self {
        self.row_overrides.insert(table.into(), rows);
        self
    }

    /// Adds a cardinality override for one annotated edge.
    pub fn with_cardinality_override(
        mut self,
        query: impl Into<String>,
        edge_index: usize,
        cardinality: u64,
    ) -> Self {
        self.cardinality_overrides
            .insert((query.into(), edge_index), cardinality);
        self
    }

    /// Requires the scenario to be exactly feasible.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Applies the scenario to a transfer package, producing the distorted
    /// package that the vendor pipeline will regenerate from.
    pub fn apply(&self, package: &TransferPackage) -> TransferPackage {
        let mut out = package.clone();
        // Scale metadata row counts, then apply overrides.
        out.metadata = out.metadata.scaled(self.scale_factor);
        for (table, rows) in &self.row_overrides {
            if let Some(stats) = out.metadata.tables.get_mut(table) {
                stats.row_count = *rows;
            } else {
                let stats = hydra_catalog::stats::TableStatistics {
                    row_count: *rows,
                    ..Default::default()
                };
                out.metadata.tables.insert(table.clone(), stats);
            }
        }
        // Scale AQP annotations, then apply per-edge overrides.
        for entry in out.workload.entries.iter_mut() {
            if let Some(aqp) = entry.aqp.as_mut() {
                aqp.scale_cardinalities(self.scale_factor);
                let mut index = 0usize;
                aqp.root.for_each_mut(&mut |node| {
                    if let Some(card) = self
                        .cardinality_overrides
                        .get(&(entry.query.name.clone(), index))
                    {
                        node.cardinality = *card;
                    }
                    index += 1;
                });
            }
        }
        out
    }
}

/// The outcome of constructing a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that was constructed.
    pub scenario_name: String,
    /// Whether every relation's LP was exactly feasible.
    pub feasible: bool,
    /// Total LP violation across relations (0 when feasible).
    pub total_violation: f64,
    /// The regeneration result (summary, reports, dataless database).
    pub regeneration: RegenerationResult,
}

/// Constructs a what-if scenario: applies the distortion, verifies
/// feasibility, and builds the summary.
pub fn construct_scenario(
    scenario: &Scenario,
    package: &TransferPackage,
    config: HydraConfig,
) -> HydraResult<ScenarioResult> {
    construct_scenario_with_cache(scenario, package, config, None)
}

/// [`construct_scenario`] reusing a summary cache: across a scenario sweep,
/// only relations whose constraint signature the scenario actually changed
/// are re-solved (see [`hydra_summary::builder::SummaryCache`]).
pub fn construct_scenario_with_cache(
    scenario: &Scenario,
    package: &TransferPackage,
    config: HydraConfig,
    cache: Option<Arc<dyn hydra_summary::builder::SummaryCache>>,
) -> HydraResult<ScenarioResult> {
    let distorted = scenario.apply(package);

    // Feasibility verification: probe with a strict (non-recovering) simplex
    // first when requested, regardless of the session's configured backend.
    if scenario.strict {
        let mut strict_config = config.clone();
        strict_config.builder.lp_backend = Arc::new(SimplexBackend::strict());
        strict_config.compare_aqps = false;
        let vendor = VendorSite::new(strict_config);
        if let Err(e) = vendor.regenerate(&distorted) {
            return Err(HydraError::InfeasibleScenario(format!(
                "scenario `{}` is infeasible: {e}",
                scenario.name
            )));
        }
    }

    // Build with the configured (recovering) backend.
    let mut vendor = VendorSite::new(config);
    if let Some(cache) = cache {
        vendor = vendor.with_cache(cache);
    }
    let regeneration = vendor.regenerate(&distorted)?;
    let feasible = regeneration
        .build_report
        .relations
        .iter()
        .all(|r| r.lp.status == SolveStatus::Feasible);
    let total_violation = regeneration
        .build_report
        .relations
        .iter()
        .map(|r| r.lp.total_violation)
        .sum();
    Ok(ScenarioResult {
        scenario_name: scenario.name.clone(),
        feasible,
        total_violation,
        regeneration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientSite;
    use hydra_workload::retail_client_fixture;

    fn package() -> TransferPackage {
        let (db, queries) = retail_client_fixture(1_500, 400, 6);
        ClientSite::new(db)
            .prepare_package(&queries, false)
            .unwrap()
    }

    fn config() -> HydraConfig {
        HydraConfig {
            compare_aqps: false,
            ..Default::default()
        }
    }

    #[test]
    fn scaled_scenario_preserves_feasibility() {
        let package = package();
        let scenario = Scenario::scaled("x100", 100.0);
        let result = construct_scenario(&scenario, &package, config()).unwrap();
        assert!(result.feasible, "uniform scaling must stay feasible");
        assert_eq!(
            result
                .regeneration
                .summary
                .relation("store_sales")
                .unwrap()
                .total_rows,
            150_000
        );
        // Construction is scale-free: the summary stays small even though the
        // simulated database is 100x larger.
        assert!(result.regeneration.summary.size_bytes() < 64 * 1024);
    }

    #[test]
    fn extreme_extrapolation_is_cheap() {
        // An "exabyte era" extrapolation: a billion times the observed volume.
        let package = package();
        let scenario = Scenario::scaled("exabyte", 1e9);
        let result = construct_scenario(&scenario, &package, config()).unwrap();
        let ss = result.regeneration.summary.relation("store_sales").unwrap();
        assert_eq!(ss.total_rows, 1_500_000_000_000);
        assert!(result.regeneration.summary.size_bytes() < 64 * 1024);
    }

    #[test]
    fn contradictory_injection_is_detected() {
        let package = package();
        // Make one query's root claim more rows than the fact table has.
        let query_name = package.workload.entries[0].query.name.clone();
        let scenario = Scenario::scaled("broken", 1.0)
            .with_cardinality_override(query_name, 0, 10_000_000)
            .strict();
        let err = construct_scenario(&scenario, &package, config()).unwrap_err();
        assert!(matches!(err, HydraError::InfeasibleScenario(_)));

        // Without strict mode the scenario builds with a recorded violation.
        let scenario = Scenario::scaled("broken", 1.0).with_cardinality_override(
            package.workload.entries[0].query.name.clone(),
            0,
            10_000_000,
        );
        let result = construct_scenario(&scenario, &package, config()).unwrap();
        assert!(!result.feasible);
        assert!(result.total_violation > 0.0);
    }

    #[test]
    fn row_override_changes_one_relation() {
        let package = package();
        let scenario = Scenario::scaled("stress-item", 1.0).with_row_override("item", 500_000);
        let result = construct_scenario(&scenario, &package, config()).unwrap();
        assert_eq!(
            result
                .regeneration
                .summary
                .relation("item")
                .unwrap()
                .total_rows,
            500_000
        );
    }
}
