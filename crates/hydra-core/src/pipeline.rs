//! One-call end-to-end pipeline — a thin shim over a default
//! [`crate::session::Hydra`] session, kept for the examples and benches.

use crate::error::HydraResult;
use crate::transfer::TransferPackage;
use crate::vendor::{HydraConfig, RegenerationResult};
use hydra_engine::database::Database;
use hydra_query::query::SpjQuery;
use std::time::{Duration, Instant};

/// The outcome of a full client → vendor run.
#[derive(Debug, Clone)]
pub struct EndToEndResult {
    /// The transfer package the client produced.
    pub package: TransferPackage,
    /// The vendor-side regeneration result.
    pub regeneration: RegenerationResult,
    /// Time spent at the client (profiling + workload execution).
    pub client_time: Duration,
    /// Time spent at the vendor (preprocessing through verification).
    pub vendor_time: Duration,
}

/// Runs the full pipeline: profile the client database, execute the workload,
/// ship the package, regenerate at the vendor.
///
/// Equivalent to driving a one-shot [`Hydra`](crate::session::Hydra) session
/// built from `config`;
/// use the session API directly to keep the summary cache across calls.
pub fn run_end_to_end(
    client_db: Database,
    queries: &[SpjQuery],
    config: HydraConfig,
    anonymize: bool,
) -> HydraResult<EndToEndResult> {
    let session = crate::session::HydraBuilder::from_config(config)
        .anonymize(anonymize)
        .build();

    let client_start = Instant::now();
    let package = session.profile(client_db, queries)?;
    let client_time = client_start.elapsed();

    let vendor_start = Instant::now();
    let regeneration = session.regenerate(&package)?;
    let vendor_time = vendor_start.elapsed();

    Ok(EndToEndResult {
        package,
        regeneration,
        client_time,
        vendor_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_workload::{
        generate_client_database, retail_row_targets, retail_schema, DataGenConfig,
        WorkloadGenConfig, WorkloadGenerator,
    };

    #[test]
    fn end_to_end_helper_runs() {
        let schema = retail_schema();
        let mut targets = retail_row_targets(0.005);
        targets.insert("store_sales".to_string(), 1_000);
        targets.insert("web_sales".to_string(), 300);
        let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
        let queries = WorkloadGenerator::new(
            schema,
            WorkloadGenConfig {
                num_queries: 5,
                ..Default::default()
            },
        )
        .generate();
        let result = run_end_to_end(
            db,
            &queries,
            HydraConfig {
                compare_aqps: false,
                ..Default::default()
            },
            false,
        )
        .unwrap();
        assert_eq!(result.package.query_count(), 5);
        assert!(result.regeneration.accuracy.fraction_within(0.1) > 0.8);
        assert!(result.client_time > Duration::ZERO);
        assert!(result.vendor_time > Duration::ZERO);
    }
}
