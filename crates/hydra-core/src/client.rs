//! The client site.
//!
//! The client profiles its warehouse (schema + statistics), executes the query
//! workload to obtain annotated query plans, and packages everything into a
//! [`TransferPackage`].  Privacy-sensitive categorical values can be passed
//! through a simple anonymization layer that renames dictionary entries
//! consistently across the schema, the statistics and the workload — the
//! volumetric structure (which is all HYDRA needs) is preserved exactly.

use crate::error::HydraResult;
use crate::transfer::TransferPackage;
use hydra_catalog::domain::Domain;
use hydra_catalog::metadata::DatabaseMetadata;
use hydra_catalog::types::Value;
use hydra_engine::database::Database;
use hydra_query::plan::PlanOp;
use hydra_query::predicate::TablePredicate;
use hydra_query::query::SpjQuery;
use hydra_query::workload::QueryWorkload;
use hydra_workload::harvest_workload;
use std::collections::BTreeMap;

/// Number of most-common values profiled per column.
const MCV_LIMIT: usize = 8;
/// Number of equi-depth histogram buckets profiled per column.
const HISTOGRAM_BUCKETS: usize = 16;

/// The client-site driver.
#[derive(Debug, Clone)]
pub struct ClientSite {
    /// The client's warehouse.
    pub database: Database,
}

impl ClientSite {
    /// Wraps a client database.
    pub fn new(database: Database) -> Self {
        ClientSite { database }
    }

    /// Profiles the warehouse into the metadata package (`ANALYZE` + CODD
    /// metadata transfer).
    pub fn profile_metadata(&self) -> DatabaseMetadata {
        self.database.profile(MCV_LIMIT, HISTOGRAM_BUCKETS)
    }

    /// Executes the workload on the client data and records the AQPs.
    pub fn execute_workload(&self, queries: &[SpjQuery]) -> HydraResult<QueryWorkload> {
        Ok(harvest_workload(&self.database, queries)?)
    }

    /// Builds the transfer package: metadata + annotated workload, optionally
    /// anonymized.
    pub fn prepare_package(
        &self,
        queries: &[SpjQuery],
        anonymize: bool,
    ) -> HydraResult<TransferPackage> {
        let metadata = self.profile_metadata();
        let workload = self.execute_workload(queries)?;
        let mut package = TransferPackage::new(metadata, workload);
        if anonymize {
            package = anonymize_package(package);
        }
        Ok(package)
    }
}

/// A per-table, per-column mapping of categorical values to anonymized tokens.
type ValueMap = BTreeMap<(String, String), BTreeMap<String, String>>;

/// Anonymizes every categorical dictionary in the package, rewriting the
/// schema domains, the column statistics, and every predicate in the workload
/// consistently.  Numeric values are left untouched (they carry no directly
/// identifying text and their order is needed for range predicates).
pub fn anonymize_package(mut package: TransferPackage) -> TransferPackage {
    // 1. Build the value maps and rewrite the schema domains.
    let mut maps: ValueMap = BTreeMap::new();
    let mut schema = package.metadata.schema.clone();
    let table_names: Vec<String> = schema.table_names().to_vec();
    for (ti, table_name) in table_names.iter().enumerate() {
        let Some(table) = schema.table_mut(table_name) else {
            continue;
        };
        let column_names: Vec<String> = table.columns().iter().map(|c| c.name.clone()).collect();
        for (ci, column_name) in column_names.iter().enumerate() {
            let Some(column) = table.column(column_name) else {
                continue;
            };
            if let Some(Domain::Categorical { values }) = column.domain.clone() {
                let map: BTreeMap<String, String> = values
                    .iter()
                    .enumerate()
                    .map(|(vi, v)| (v.clone(), format!("t{ti}c{ci}v{vi}")))
                    .collect();
                let new_values: Vec<String> = values.iter().map(|v| map[v].clone()).collect();
                maps.insert((table_name.clone(), column_name.clone()), map);
                table.set_column_domain(column_name, Domain::Categorical { values: new_values });
            }
        }
    }
    package.metadata.schema = schema;

    // 2. Rewrite statistics.
    for (table_name, stats) in package.metadata.tables.iter_mut() {
        for (column_name, cs) in stats.columns.iter_mut() {
            let Some(map) = maps.get(&(table_name.clone(), column_name.clone())) else {
                continue;
            };
            let rewrite = |v: &Value| -> Value {
                match v {
                    Value::Varchar(s) => map
                        .get(s)
                        .map(|m| Value::Varchar(m.clone()))
                        .unwrap_or_else(|| v.clone()),
                    other => other.clone(),
                }
            };
            cs.most_common = cs
                .most_common
                .iter()
                .map(|(v, f)| (rewrite(v), *f))
                .collect();
            cs.histogram.bounds = cs.histogram.bounds.iter().map(rewrite).collect();
            cs.min = cs.min.as_ref().map(rewrite);
            cs.max = cs.max.as_ref().map(rewrite);
        }
    }

    // 3. Rewrite workload predicates (queries and AQP filter operators).
    for entry in package.workload.entries.iter_mut() {
        let preds: Vec<(String, TablePredicate)> = entry
            .query
            .predicates
            .iter()
            .map(|(t, p)| (t.clone(), rewrite_predicate(t, p, &maps)))
            .collect();
        for (t, p) in preds {
            entry.query.predicates.insert(t, p);
        }
        if let Some(aqp) = entry.aqp.as_mut() {
            aqp.root.for_each_mut(&mut |node| {
                if let PlanOp::Filter { table, predicate } = &mut node.op {
                    *predicate = rewrite_predicate(table, predicate, &maps);
                }
            });
        }
    }
    package
}

fn rewrite_predicate(table: &str, predicate: &TablePredicate, maps: &ValueMap) -> TablePredicate {
    let conjuncts = predicate
        .conjuncts()
        .iter()
        .map(|c| {
            let mut c = c.clone();
            if let Value::Varchar(s) = &c.value {
                if let Some(map) = maps.get(&(table.to_string(), c.column.clone())) {
                    if let Some(m) = map.get(s) {
                        c.value = Value::Varchar(m.clone());
                    }
                }
            }
            c
        })
        .collect();
    TablePredicate::from_conjuncts(conjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_workload::{
        generate_client_database, retail_row_targets, retail_schema, DataGenConfig,
        WorkloadGenConfig, WorkloadGenerator,
    };

    fn small_client() -> (ClientSite, Vec<SpjQuery>) {
        let schema = retail_schema();
        let mut targets = retail_row_targets(0.005);
        targets.insert("store_sales".to_string(), 1_500);
        targets.insert("web_sales".to_string(), 400);
        let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
        let queries = WorkloadGenerator::new(
            schema,
            WorkloadGenConfig {
                num_queries: 6,
                ..Default::default()
            },
        )
        .generate();
        (ClientSite::new(db), queries)
    }

    #[test]
    fn profile_and_package() {
        let (client, queries) = small_client();
        let md = client.profile_metadata();
        assert_eq!(md.row_count("store_sales"), 1_500);
        assert!(md.column_stats("item", "i_category").is_some());

        let package = client.prepare_package(&queries, false).unwrap();
        assert_eq!(package.query_count(), 6);
        assert!(package.annotated_edges() > 6);
        // The transfer package is tiny compared to the database it describes.
        let size = package.transfer_size_bytes().unwrap();
        assert!(size > 0);
    }

    #[test]
    fn anonymization_renames_categorical_values_consistently() {
        let (client, queries) = small_client();
        let plain = client.prepare_package(&queries, false).unwrap();
        let anon = client.prepare_package(&queries, true).unwrap();

        // Schema dictionaries no longer contain the original category names.
        let item = anon.metadata.schema.table("item").unwrap();
        let domain = item.column("i_category").unwrap().domain.clone().unwrap();
        if let Domain::Categorical { values } = &domain {
            assert!(values.iter().all(|v| v.starts_with('t')));
            assert_eq!(values.len(), hydra_workload::retail::ITEM_CATEGORIES.len());
        } else {
            panic!("expected categorical domain");
        }

        // Statistics are rewritten with the same tokens.
        let stats = anon.metadata.column_stats("item", "i_category").unwrap();
        for (v, _) in &stats.most_common {
            assert!(v.as_str().unwrap().starts_with('t'));
        }

        // Workload predicates no longer mention original values, but the
        // cardinality annotations are untouched.
        for (p_entry, a_entry) in plain.workload.entries.iter().zip(&anon.workload.entries) {
            let p_aqp = p_entry.aqp.as_ref().unwrap();
            let a_aqp = a_entry.aqp.as_ref().unwrap();
            let p_cards: Vec<u64> = p_aqp
                .root
                .preorder()
                .iter()
                .map(|n| n.cardinality)
                .collect();
            let a_cards: Vec<u64> = a_aqp
                .root
                .preorder()
                .iter()
                .map(|n| n.cardinality)
                .collect();
            assert_eq!(p_cards, a_cards);
        }
        for entry in &anon.workload.entries {
            for pred in entry.query.predicates.values() {
                for c in pred.conjuncts() {
                    if let Value::Varchar(s) = &c.value {
                        assert!(
                            !hydra_workload::retail::ITEM_CATEGORIES.contains(&s.as_str()),
                            "original value {s} leaked"
                        );
                    }
                }
            }
        }
    }
}
