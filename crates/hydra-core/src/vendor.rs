//! The vendor site: regeneration from a transfer package.
//!
//! Mirrors the paper's architecture: Preprocessor → LP Formulator → solver →
//! Summary Generator → referential post-processing, followed by verification
//! and (on demand) dynamic tuple generation through the dataless database.

use crate::error::HydraResult;
use crate::report::{build_aqp_comparisons, QueryAqpComparison, RegenerationReport};
use crate::transfer::TransferPackage;
use hydra_datagen::dataless::DatalessDatabase;
use hydra_datagen::generator::DynamicGenerator;
use hydra_summary::builder::{
    SummaryBuildReport, SummaryBuilder, SummaryBuilderConfig, SummaryCache,
};
use hydra_summary::summary::DatabaseSummary;
use hydra_summary::verify::{verify_summary, VolumetricAccuracyReport};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of the vendor-side regeneration.
#[derive(Debug, Clone)]
pub struct HydraConfig {
    /// Summary-builder configuration (LP solver, alignment strategy, …).
    pub builder: SummaryBuilderConfig,
    /// Optional override of per-relation row targets (used by scenario
    /// construction; `None` = use the client's row counts).
    pub row_target_override: Option<BTreeMap<String, u64>>,
    /// Whether to execute the workload against the regenerated (dataless)
    /// database and produce per-query AQP comparisons.  Costs one execution
    /// of the workload; enabled by default.
    pub compare_aqps: bool,
}

impl Default for HydraConfig {
    fn default() -> Self {
        HydraConfig {
            builder: SummaryBuilderConfig::default(),
            row_target_override: None,
            compare_aqps: true,
        }
    }
}

impl HydraConfig {
    /// A cheaper configuration that skips re-executing the workload on the
    /// regenerated database.
    pub fn without_aqp_comparison() -> Self {
        HydraConfig {
            compare_aqps: false,
            ..Default::default()
        }
    }
}

/// The outcome of a regeneration run.
#[derive(Debug, Clone)]
pub struct RegenerationResult {
    /// The database summary (the deliverable of the vendor pipeline).
    pub summary: DatabaseSummary,
    /// Per-relation LP / construction statistics.
    pub build_report: SummaryBuildReport,
    /// Volumetric-constraint accuracy of the summary.
    pub accuracy: VolumetricAccuracyReport,
    /// Per-query AQP comparisons (original vs. regenerated cardinalities),
    /// present when [`HydraConfig::compare_aqps`] is set.
    pub aqp_comparisons: Vec<QueryAqpComparison>,
    /// The schema the summary regenerates.
    pub schema: hydra_catalog::schema::Schema,
}

impl RegenerationResult {
    /// A dataless database over the summary (dynamic regeneration).
    pub fn dataless_database(&self) -> DatalessDatabase {
        DatalessDatabase::new(self.schema.clone(), self.summary.clone())
    }

    /// A dynamic generator over the summary (streams / velocity control).
    pub fn generator(&self) -> DynamicGenerator {
        DynamicGenerator::new(self.schema.clone(), self.summary.clone())
    }

    /// The consolidated report (build + accuracy + AQP comparisons).
    pub fn report(&self) -> RegenerationReport {
        RegenerationReport {
            build: self.build_report.clone(),
            accuracy: self.accuracy.clone(),
            aqp_comparisons: self.aqp_comparisons.clone(),
            summary_bytes: self.summary.size_bytes(),
            regenerated_rows: self.summary.total_rows(),
        }
    }
}

/// The vendor-side driver.
#[derive(Debug, Clone, Default)]
pub struct VendorSite {
    /// Configuration.
    pub config: HydraConfig,
    /// Optional cache of solved per-relation summaries (scenario sweeps).
    pub(crate) cache: Option<Arc<dyn SummaryCache>>,
}

impl VendorSite {
    /// Creates a vendor site with the given configuration.
    pub fn new(config: HydraConfig) -> Self {
        VendorSite {
            config,
            cache: None,
        }
    }

    /// Attaches a summary cache; subsequent [`VendorSite::regenerate`] calls
    /// reuse solved relations whose constraint signature is unchanged.
    pub fn with_cache(mut self, cache: Arc<dyn SummaryCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs the full regeneration pipeline on a transfer package.
    pub fn regenerate(&self, package: &TransferPackage) -> HydraResult<RegenerationResult> {
        let schema = package.metadata.schema.clone();

        // Preprocessor: AQPs → per-relation volumetric constraints.
        let constraints_by_table = package.workload.constraints_by_table()?;

        // Row targets: the client's row counts unless a scenario overrides them.
        let row_targets: BTreeMap<String, u64> = match &self.config.row_target_override {
            Some(overrides) => overrides.clone(),
            None => schema
                .table_names()
                .iter()
                .map(|t| (t.clone(), package.metadata.row_count(t)))
                .collect(),
        };

        // LP formulation, solving, deterministic alignment, post-processing.
        let builder = SummaryBuilder::new(self.config.builder.clone());
        let (summary, build_report) = builder.build_with_cache(
            &schema,
            &row_targets,
            &constraints_by_table,
            Some(&package.metadata),
            self.cache.as_deref(),
        )?;

        // Verification against every volumetric constraint.
        let accuracy = verify_summary(&summary, &constraints_by_table)?;

        // Optional: execute the workload on the dataless database and compare
        // the regenerated AQPs with the originals (Figure 4, bottom right).
        let aqp_comparisons = if self.config.compare_aqps {
            let dataless = DatalessDatabase::new(schema.clone(), summary.clone());
            build_aqp_comparisons(&dataless, &package.workload)?
        } else {
            Vec::new()
        };

        Ok(RegenerationResult {
            summary,
            build_report,
            accuracy,
            aqp_comparisons,
            schema,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientSite;
    use hydra_workload::retail_client_fixture;

    fn small_package() -> TransferPackage {
        let (db, queries) = retail_client_fixture(2_000, 600, 10);
        ClientSite::new(db)
            .prepare_package(&queries, false)
            .unwrap()
    }

    #[test]
    fn end_to_end_regeneration_quality() {
        let package = small_package();
        let vendor = VendorSite::new(HydraConfig::default());
        let result = vendor.regenerate(&package).unwrap();

        // Row counts match the client's database.
        assert_eq!(
            result.summary.relation("store_sales").unwrap().total_rows,
            package.metadata.row_count("store_sales")
        );

        // The paper's headline accuracy claim: the vast majority of
        // constraints within 10% relative error.
        assert!(
            result.accuracy.fraction_within(0.10) > 0.9,
            "only {:.1}% of constraints within 10%",
            100.0 * result.accuracy.fraction_within(0.10)
        );

        // The summary is orders of magnitude smaller than the client data.
        let client_rows: u64 = package.metadata.total_rows();
        assert!(result.summary.size_bytes() < 64 * 1024);
        assert_eq!(result.summary.total_rows(), client_rows);

        // The dataless database serves every relation.
        let dataless = result.dataless_database();
        assert_eq!(
            dataless.row_count("store_sales"),
            package.metadata.row_count("store_sales")
        );

        // AQP comparisons were produced for every query.
        assert_eq!(result.aqp_comparisons.len(), package.query_count());
        let report = result.report();
        assert!(report.mean_aqp_relative_error() < 0.25);
        let text = report.to_display_text();
        assert!(text.contains("volumetric"));
    }

    #[test]
    fn regeneration_without_aqp_comparison_is_cheaper() {
        let package = small_package();
        let vendor = VendorSite::new(HydraConfig {
            compare_aqps: false,
            ..Default::default()
        });
        let result = vendor.regenerate(&package).unwrap();
        assert!(result.aqp_comparisons.is_empty());
        assert!(!result.accuracy.is_empty());
    }

    #[test]
    fn row_target_override_scales_the_summary() {
        let package = small_package();
        let mut overrides: BTreeMap<String, u64> = package
            .metadata
            .schema
            .table_names()
            .iter()
            .map(|t| (t.clone(), package.metadata.row_count(t)))
            .collect();
        overrides.insert("store_sales".to_string(), 100_000);
        let vendor = VendorSite::new(HydraConfig {
            row_target_override: Some(overrides),
            compare_aqps: false,
            ..Default::default()
        });
        let result = vendor.regenerate(&package).unwrap();
        assert_eq!(
            result.summary.relation("store_sales").unwrap().total_rows,
            100_000
        );
    }
}
