//! The `Hydra` session façade — the one front door to the reproduction.
//!
//! A session owns a fully-resolved pipeline configuration (LP backend,
//! alignment strategy, parallelism, caching, AQP comparison) plus a summary
//! cache that persists across calls, and exposes the paper's workflow as four
//! entry points:
//!
//! * [`Hydra::profile`] — the client site: profile a warehouse, execute the
//!   workload, package the synopsis (optionally anonymized);
//! * [`Hydra::regenerate`] — the vendor site: preprocess → solve → summarize
//!   → verify, with independent relations solved in parallel;
//! * [`Hydra::scenario`] — what-if construction over a package; repeated
//!   scenario sweeps reuse the session cache, so only relations whose
//!   constraint signature changed are re-solved;
//! * [`Hydra::query`] — analytical aggregates answered *summary-direct*
//!   (from block cardinalities alone, no tuples materialized), falling back
//!   to a sharded regenerate-and-scan plan for out-of-class queries;
//! * [`Hydra::stream_table`] — dynamic generation of one regenerated relation
//!   into any [`TupleSink`], with optional velocity regulation;
//! * [`Hydra::stream_table_sharded`] / [`Hydra::materialize_sharded`] —
//!   sharded parallel generation: balanced row-range shards, one thread and
//!   one sink per shard, output bit-identical to the sequential stream.
//!
//! ```
//! use hydra_core::session::Hydra;
//! use hydra_workload::{generate_client_database, retail_row_targets, retail_schema,
//!                      DataGenConfig, WorkloadGenConfig, WorkloadGenerator};
//!
//! let schema = retail_schema();
//! let mut targets = retail_row_targets(0.005);
//! targets.insert("store_sales".to_string(), 1_000);
//! targets.insert("web_sales".to_string(), 300);
//! let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
//! let queries = WorkloadGenerator::new(schema,
//!     WorkloadGenConfig { num_queries: 5, ..Default::default() }).generate();
//!
//! let session = Hydra::builder().parallelism(2).compare_aqps(false).build();
//! let package = session.profile(db, &queries).unwrap();
//! let result = session.regenerate(&package).unwrap();
//! assert!(result.accuracy.fraction_within(0.10) > 0.9);
//! ```

use crate::client::ClientSite;
use crate::delta::{DeltaOutcome, RegenerationState};
use crate::error::HydraResult;
use crate::scenario::{construct_scenario_with_cache, Scenario, ScenarioResult};
use crate::transfer::TransferPackage;
use crate::vendor::{HydraConfig, RegenerationResult, VendorSite};
use hydra_datagen::exec::{ExecMode, QueryEngine};
use hydra_datagen::generator::GenerationStats;
use hydra_datagen::governor::VelocityGovernor;
use hydra_datagen::shard::ShardedRun;
use hydra_datagen::sink::TupleSink;
use hydra_engine::database::Database;
use hydra_engine::table::MemTable;
use hydra_obs::MetricsRegistry;
use hydra_query::exec::{ExecStrategy, QueryAnswer};
use hydra_query::query::SpjQuery;
use hydra_summary::align::AlignmentStrategy;
use hydra_summary::backend::LpBackend;
use hydra_summary::builder::{InMemorySummaryCache, SummaryCache};
use hydra_summary::strategy::SummaryStrategy;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// Typed builder for a [`Hydra`] session.
///
/// ```
/// use hydra_core::session::Hydra;
/// use hydra_summary::align::AlignmentStrategy;
///
/// let session = Hydra::builder()
///     .parallelism(4)                                  // per-relation solve workers
///     .alignment(AlignmentStrategy::Deterministic)     // the paper's alignment
///     .summary_cache(true)                             // reuse solves across sweeps
///     .compare_aqps(false)                             // skip workload re-execution
///     .build();
/// assert_eq!(session.cached_relations(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct HydraBuilder {
    config: HydraConfig,
    summary_cache: bool,
    anonymize: bool,
    velocity: Option<f64>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for HydraBuilder {
    fn default() -> Self {
        HydraBuilder {
            config: HydraConfig::default(),
            // Matches the documented builder default (and `Hydra::builder()`).
            summary_cache: true,
            anonymize: false,
            velocity: None,
            metrics: None,
        }
    }
}

impl HydraBuilder {
    /// Seeds the builder from an existing vendor configuration (used by the
    /// compatibility shims; prefer the individual builder methods).
    pub fn from_config(config: HydraConfig) -> Self {
        HydraBuilder {
            config,
            summary_cache: true,
            anonymize: false,
            velocity: None,
            metrics: None,
        }
    }

    /// Shares an observability registry with this session.  Every query,
    /// LP solve and generation stream records into it; the default is a
    /// fresh private registry per session.
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Selects the LP solve backend (default:
    /// [`hydra_summary::backend::SimplexBackend`]; the DataSynth baseline is
    /// [`hydra_summary::backend::GridBackend`]).
    pub fn lp_backend(mut self, backend: impl LpBackend + 'static) -> Self {
        self.config.builder.lp_backend = Arc::new(backend);
        self
    }

    /// Selects the alignment flavour (deterministic by default; sampled for
    /// the E10 ablation).
    pub fn alignment(mut self, alignment: AlignmentStrategy) -> Self {
        self.config.builder = self.config.builder.with_alignment(alignment);
        self
    }

    /// Replaces the whole summary-generation strategy.
    pub fn summary_strategy(mut self, strategy: impl SummaryStrategy + 'static) -> Self {
        self.config.builder.strategy = Arc::new(strategy);
        self
    }

    /// Number of worker threads for per-relation solving (relations are
    /// independent in the paper's LP decomposition). 1 = sequential; output
    /// is identical either way.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.config.builder = self.config.builder.with_parallelism(workers);
        self
    }

    /// Enables or disables the session summary cache (default: enabled).
    /// With the cache on, repeated regenerations and scenario sweeps only
    /// re-solve relations whose constraint signature changed.
    pub fn summary_cache(mut self, enabled: bool) -> Self {
        self.summary_cache = enabled;
        self
    }

    /// Whether [`Hydra::regenerate`] re-executes the workload on the dataless
    /// database and attaches per-query AQP comparisons (default: true).
    pub fn compare_aqps(mut self, enabled: bool) -> Self {
        self.config.compare_aqps = enabled;
        self
    }

    /// Whether [`Hydra::profile`] passes the package through the
    /// anonymization layer (default: false).
    pub fn anonymize(mut self, enabled: bool) -> Self {
        self.anonymize = enabled;
        self
    }

    /// Default generation velocity in rows per second (the paper's vendor
    /// "velocity" slider), applied by [`Hydra::stream_table`] whenever the
    /// caller does not pass an explicit per-call rate.  `None` (the default)
    /// streams unthrottled.  Each stream gets its own
    /// [`hydra_datagen::governor::VelocityGovernor`], so concurrent streams
    /// from one session are paced independently.
    ///
    /// # Panics
    ///
    /// Panics when a rate is given that is not finite and at least
    /// [`VelocityGovernor::MIN_RATE`] (0.001 rows/s) — the same validation
    /// the wire protocol applies, so a zero/subnormal/NaN rate fails at
    /// configuration time instead of stalling every stream.
    pub fn velocity(mut self, rows_per_sec: impl Into<Option<f64>>) -> Self {
        let rate = rows_per_sec.into();
        if let Some(rate) = rate {
            assert!(
                rate.is_finite() && rate >= VelocityGovernor::MIN_RATE,
                "rows_per_sec must be a finite rate >= 0.001, got {rate}"
            );
        }
        self.velocity = rate;
        self
    }

    /// Partitioning piece budget (LP variables per relation).
    pub fn max_regions(mut self, max_regions: usize) -> Self {
        self.config.builder = self.config.builder.with_max_regions(max_regions);
        self
    }

    /// Whether unreferenced columns are filled from client statistics
    /// (default: true).
    pub fn statistics_fillers(mut self, enabled: bool) -> Self {
        self.config.builder.use_statistics_fillers = enabled;
        self
    }

    /// Overrides per-relation row targets (scenario construction uses this
    /// internally; exposed for direct extrapolation experiments).
    pub fn row_target_override(mut self, overrides: BTreeMap<String, u64>) -> Self {
        self.config.row_target_override = Some(overrides);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Hydra {
        let cache = self
            .summary_cache
            .then(|| Arc::new(InMemorySummaryCache::new()));
        Hydra {
            config: self.config,
            cache,
            anonymize: self.anonymize,
            velocity: self.velocity,
            metrics: self.metrics.unwrap_or_default(),
        }
    }
}

/// A configured HYDRA session: client profiling, vendor regeneration,
/// scenario construction and dynamic generation behind one handle.
///
/// Sessions are cheap to build and thread-safe (`&self` everywhere); the
/// summary cache is shared across calls and threads.
#[derive(Debug, Clone)]
pub struct Hydra {
    config: HydraConfig,
    cache: Option<Arc<InMemorySummaryCache>>,
    anonymize: bool,
    velocity: Option<f64>,
    metrics: Arc<MetricsRegistry>,
}

impl Default for Hydra {
    fn default() -> Self {
        Hydra::builder().build()
    }
}

impl Hydra {
    /// Starts a session builder with the paper's default pipeline.
    pub fn builder() -> HydraBuilder {
        HydraBuilder::default()
    }

    /// The session's resolved vendor configuration.
    pub fn config(&self) -> &HydraConfig {
        &self.config
    }

    /// The session's observability registry: every regeneration, query and
    /// stream records into it, and the serving layers expose it (Prometheus
    /// `/metrics`, frame `Stats`, pg `hydra_metrics`).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Records one build report's per-relation LP outcomes.
    fn record_build_report(&self, report: &hydra_summary::builder::SummaryBuildReport) {
        use hydra_lp::simplex::WarmOutcome;
        for relation in &report.relations {
            let outcome = if relation.from_cache {
                "reused"
            } else {
                match relation.lp.warm {
                    WarmOutcome::NotAttempted => "cold",
                    WarmOutcome::Hit => "warm_hit",
                    WarmOutcome::FellBack => "warm_fellback",
                }
            };
            self.metrics
                .counter_labeled("hydra_lp_solves_total", "outcome", outcome)
                .inc();
            if !relation.from_cache {
                self.metrics
                    .histogram_labeled("hydra_lp_solve_seconds", "relation", &relation.table)
                    .record_duration(relation.lp.solve_time);
            }
        }
    }

    /// Records one delta build report's per-relation reuse/warm/cold account.
    fn record_delta_report(&self, report: &hydra_summary::delta::DeltaBuildReport) {
        use hydra_summary::delta::DeltaAction;
        for relation in &report.relations {
            let outcome = match relation.action {
                DeltaAction::Reused => "reused",
                DeltaAction::WarmSolved => "warm_hit",
                DeltaAction::ColdSolved => "cold",
            };
            self.metrics
                .counter_labeled("hydra_lp_solves_total", "outcome", outcome)
                .inc();
            if relation.action != DeltaAction::Reused {
                self.metrics
                    .histogram_labeled("hydra_lp_solve_seconds", "relation", &relation.table)
                    .record_duration(std::time::Duration::from_micros(relation.solve_micros));
            }
        }
    }

    /// Client site: profiles the warehouse, executes the workload to obtain
    /// annotated query plans, and packages the synopsis for transfer
    /// (anonymized when the session was built with `.anonymize(true)`).
    pub fn profile(
        &self,
        database: Database,
        queries: &[SpjQuery],
    ) -> HydraResult<TransferPackage> {
        ClientSite::new(database).prepare_package(queries, self.anonymize)
    }

    /// Vendor site: runs the full regeneration pipeline on a transfer
    /// package. Independent relations are solved in parallel under the
    /// session's `parallelism`, and solved relations are reused from the
    /// session cache when their constraint signature is unchanged.
    pub fn regenerate(&self, package: &TransferPackage) -> HydraResult<RegenerationResult> {
        let result = self.vendor().regenerate(package)?;
        self.record_build_report(&result.build_report);
        Ok(result)
    }

    /// [`Hydra::regenerate`] retaining the per-relation solve artifacts
    /// (constraint signatures, region partitions, LP supports) that make the
    /// regeneration *evolvable*: feed the returned state and a
    /// [`hydra_query::delta::WorkloadDelta`] to [`Hydra::profile_delta`] and
    /// only the relations the delta actually touches re-solve.
    pub fn regenerate_stateful(&self, package: &TransferPackage) -> HydraResult<RegenerationState> {
        let state = self.vendor().regenerate_stateful(package)?;
        self.record_build_report(&state.regeneration.build_report);
        Ok(state)
    }

    /// Rebuilds a [`RegenerationState`] from a previously solved baseline
    /// without running the LP solver — the recovery path of a durable
    /// registry replaying its snapshot and write-ahead log.  The stored
    /// build report is reattached verbatim, and **no** solve metrics are
    /// recorded: recovery performs zero cold solves and the
    /// `hydra_lp_solves_total` counters prove it.
    pub fn restore_stateful(
        &self,
        package: &TransferPackage,
        build_report: hydra_summary::builder::SummaryBuildReport,
        baseline: hydra_summary::delta::SolveBaseline,
    ) -> HydraResult<RegenerationState> {
        self.vendor()
            .restore_stateful(package, build_report, baseline)
    }

    /// Applies a workload delta (queries added / retired / re-annotated,
    /// revised row counts) to a previous stateful regeneration
    /// *incrementally*: unchanged relations are reused bit-identically,
    /// changed relations re-solve warm-started from their previous LP
    /// support, and the outcome reports a structural
    /// [`hydra_summary::delta::SummaryDiff`] plus a per-relation
    /// reuse/warm/cold account.
    ///
    /// The evolved summary satisfies the merged constraint set exactly as a
    /// from-scratch [`Hydra::regenerate`] of the merged package does.
    pub fn profile_delta(
        &self,
        prev: &RegenerationState,
        delta: &hydra_query::delta::WorkloadDelta,
    ) -> HydraResult<DeltaOutcome> {
        let outcome = self.vendor().apply_delta(prev, delta)?;
        self.record_delta_report(&outcome.report);
        Ok(outcome)
    }

    /// Constructs a what-if scenario over a package. Across a sweep of
    /// scenarios the session cache keeps every relation whose constraints the
    /// scenario did not touch, so only changed relations are re-solved.
    pub fn scenario(
        &self,
        scenario: &Scenario,
        package: &TransferPackage,
    ) -> HydraResult<ScenarioResult> {
        let cache = self.cache.clone().map(|c| c as Arc<dyn SummaryCache>);
        let result = construct_scenario_with_cache(scenario, package, self.config.clone(), cache)?;
        self.record_build_report(&result.regeneration.build_report);
        Ok(result)
    }

    /// Answers an analytical SQL aggregate (COUNT / SUM / AVG, conjunctive
    /// predicates, key–FK joins, GROUP BY) over a regenerated database.
    ///
    /// In-class queries are answered **summary-direct** — from the solved
    /// summary's block cardinalities alone, without materializing a single
    /// tuple — so latency is independent of the logical row count.
    /// Out-of-class queries transparently fall back to a sharded
    /// regenerate-and-scan plan; [`QueryAnswer::strategy`] reports which
    /// path answered.
    ///
    /// ```
    /// use hydra_core::session::Hydra;
    /// use hydra_query::exec::ExecStrategy;
    /// use hydra_workload::retail_client_fixture;
    ///
    /// let (db, queries) = retail_client_fixture(1_000, 300, 5);
    /// let session = Hydra::builder().compare_aqps(false).build();
    /// let package = session.profile(db, &queries).unwrap();
    /// let result = session.regenerate(&package).unwrap();
    ///
    /// let answer = session
    ///     .query(&result, "select count(*) from store_sales")
    ///     .unwrap();
    /// assert_eq!(answer.strategy(), ExecStrategy::SummaryDirect);
    /// assert_eq!(answer.single().unwrap().aggregates[0].as_i64(), Some(1_000));
    /// ```
    pub fn query(&self, regeneration: &RegenerationResult, sql: &str) -> HydraResult<QueryAnswer> {
        self.query_mode(regeneration, sql, ExecMode::Auto)
    }

    /// [`Hydra::query`] with an explicit execution mode:
    /// [`ExecMode::SummaryOnly`] errors on out-of-class queries instead of
    /// scanning, [`ExecMode::ScanOnly`] forces the regenerate-and-scan plan
    /// (differential testing, benchmarking).
    pub fn query_mode(
        &self,
        regeneration: &RegenerationResult,
        sql: &str,
        mode: ExecMode,
    ) -> HydraResult<QueryAnswer> {
        // Borrow the solved summary in place — answering a query must not
        // clone it (summary-direct latency is O(blocks), and should stay so).
        // Scan fallbacks respect the session's parallelism knob, like every
        // other multi-threaded path of the session.
        let started = std::time::Instant::now();
        let answer = QueryEngine::over(&regeneration.schema, &regeneration.summary)
            .with_scan_shards(self.config.builder.parallelism)
            .query_mode(sql, mode)?;
        let strategy = match answer.strategy() {
            ExecStrategy::SummaryDirect => "summary_direct",
            ExecStrategy::TupleScan => "tuple_scan",
        };
        self.metrics
            .counter_labeled("hydra_query_total", "strategy", strategy)
            .inc();
        self.metrics
            .histogram_labeled("hydra_query_seconds", "strategy", strategy)
            .record_duration(started.elapsed());
        Ok(answer)
    }

    /// Streams one regenerated relation into a [`TupleSink`], optionally
    /// velocity-regulated (`rows_per_sec`) and truncated (`limit`).
    ///
    /// When `rows_per_sec` is `None`, the session's default velocity (set
    /// with [`HydraBuilder::velocity`]) applies; if neither is set the stream
    /// is unthrottled.
    pub fn stream_table(
        &self,
        regeneration: &RegenerationResult,
        table: &str,
        sink: &mut dyn TupleSink,
        rows_per_sec: Option<f64>,
        limit: Option<u64>,
    ) -> HydraResult<GenerationStats> {
        let stats = regeneration.generator().stream_into(
            table,
            sink,
            rows_per_sec.or(self.velocity),
            limit,
        )?;
        self.record_generation(&stats);
        Ok(stats)
    }

    /// Records one completed generation stream's velocity account.
    ///
    /// [`Hydra::stream_table`] calls this automatically; the wire front-ends
    /// (frame `Stream`, pg `SELECT *` scans) drive the generator directly and
    /// call it themselves so `hydra_datagen_rows_total` and friends account
    /// for every generated tuple regardless of the entry point.
    pub fn record_generation(&self, stats: &GenerationStats) {
        self.metrics
            .counter_labeled("hydra_datagen_rows_total", "table", &stats.table)
            .add(stats.rows);
        self.metrics
            .gauge("hydra_datagen_rows_per_sec")
            .set(stats.achieved_rows_per_sec as i64);
        self.metrics
            .counter("hydra_governor_sleep_seconds_total")
            .add(u64::try_from(stats.governor_sleep.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The session's default generation velocity in rows per second, if one
    /// was configured with [`HydraBuilder::velocity`].
    pub fn velocity(&self) -> Option<f64> {
        self.velocity
    }

    /// Regenerates one relation with `shards` parallel workers: the row
    /// space is split into balanced contiguous ranges, each range seeks
    /// directly into the summary's block-offset index (no replay from row 0)
    /// and streams on its own thread into a [`TupleSink`] built by
    /// `sink_factory` (called with the shard index and row range).
    ///
    /// Concatenating the shard sinks in plan order is bit-identical to the
    /// sequential [`Hydra::stream_table`] output of the same relation.
    ///
    /// ```
    /// use hydra_core::session::Hydra;
    /// use hydra_datagen::sink::CollectSink;
    /// use hydra_workload::{generate_client_database, retail_row_targets, retail_schema,
    ///                      DataGenConfig, WorkloadGenConfig, WorkloadGenerator};
    ///
    /// let schema = retail_schema();
    /// let mut targets = retail_row_targets(0.005);
    /// targets.insert("store_sales".to_string(), 1_000);
    /// targets.insert("web_sales".to_string(), 300);
    /// let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    /// let queries = WorkloadGenerator::new(schema,
    ///     WorkloadGenConfig { num_queries: 4, ..Default::default() }).generate();
    ///
    /// let session = Hydra::builder().compare_aqps(false).build();
    /// let package = session.profile(db, &queries).unwrap();
    /// let result = session.regenerate(&package).unwrap();
    ///
    /// let run = session
    ///     .stream_table_sharded(&result, "store_sales", 4, |_shard, _rows| CollectSink::new())
    ///     .unwrap();
    /// assert_eq!(run.shards.len(), 4);
    /// assert_eq!(run.total_rows(), 1_000);
    /// ```
    pub fn stream_table_sharded<S, F>(
        &self,
        regeneration: &RegenerationResult,
        table: &str,
        shards: usize,
        sink_factory: F,
    ) -> HydraResult<ShardedRun<S>>
    where
        S: TupleSink + Send,
        F: Fn(usize, Range<u64>) -> S + Sync,
    {
        Ok(regeneration
            .generator()
            .stream_sharded(table, shards, sink_factory)?)
    }

    /// Materializes one regenerated relation with `shards` parallel workers;
    /// the resulting table is bit-identical to a sequential materialization.
    pub fn materialize_sharded(
        &self,
        regeneration: &RegenerationResult,
        table: &str,
        shards: usize,
    ) -> HydraResult<MemTable> {
        Ok(regeneration
            .generator()
            .materialize_sharded(table, shards)?)
    }

    /// Number of solved relations currently cached by the session.
    pub fn cached_relations(&self) -> usize {
        self.cache.as_ref().map(|c| c.len()).unwrap_or(0)
    }

    /// The session's summary cache, if caching is enabled (hit/miss
    /// statistics live there).
    pub fn summary_cache(&self) -> Option<&InMemorySummaryCache> {
        self.cache.as_deref()
    }

    fn vendor(&self) -> VendorSite {
        let mut vendor = VendorSite::new(self.config.clone());
        if let Some(cache) = &self.cache {
            vendor = vendor.with_cache(Arc::clone(cache) as Arc<dyn SummaryCache>);
        }
        vendor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_datagen::sink::{CollectSink, CountingSink};
    use hydra_summary::backend::GridBackend;
    use hydra_workload::retail_client_fixture;

    fn client_fixture() -> (Database, Vec<SpjQuery>) {
        retail_client_fixture(2_000, 600, 8)
    }

    #[test]
    fn session_profile_and_regenerate() {
        let (db, queries) = client_fixture();
        let session = Hydra::builder().compare_aqps(false).build();
        let package = session.profile(db, &queries).unwrap();
        assert_eq!(package.query_count(), 8);
        let result = session.regenerate(&package).unwrap();
        assert!(result.accuracy.fraction_within(0.10) > 0.9);
        assert!(session.cached_relations() > 0);

        // Second regeneration of the same package: everything cached.
        let again = session.regenerate(&package).unwrap();
        assert_eq!(
            again.build_report.cached_relations,
            again.build_report.relations.len()
        );
        assert_eq!(result.summary, again.summary);
    }

    #[test]
    fn parallel_session_matches_sequential_accuracy() {
        let (db, queries) = client_fixture();
        let sequential = Hydra::builder()
            .parallelism(1)
            .summary_cache(false)
            .compare_aqps(false)
            .build();
        let parallel = Hydra::builder()
            .parallelism(4)
            .summary_cache(false)
            .compare_aqps(false)
            .build();
        let package = sequential.profile(db, &queries).unwrap();
        let a = sequential.regenerate(&package).unwrap();
        let b = parallel.regenerate(&package).unwrap();
        // Identical accuracy output — parallelism must not change results.
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn scenario_sweep_reuses_unchanged_relations() {
        let (db, queries) = client_fixture();
        let session = Hydra::builder().compare_aqps(false).build();
        let package = session.profile(db, &queries).unwrap();
        session.regenerate(&package).unwrap();
        let baseline_entries = session.cached_relations();
        assert!(baseline_entries > 0);

        // A row override on one fact relation: every dimension it does not
        // touch is reused from the session cache.
        let scenario = Scenario::scaled("stress", 1.0).with_row_override("store_sales", 100_000);
        let result = session.scenario(&scenario, &package).unwrap();
        assert_eq!(
            result
                .regeneration
                .summary
                .relation("store_sales")
                .unwrap()
                .total_rows,
            100_000
        );
        let cached = result.regeneration.build_report.cached_relations;
        let total = result.regeneration.build_report.relations.len();
        assert!(
            cached >= total - 2,
            "only {cached}/{total} relations reused from the session cache"
        );
    }

    #[test]
    fn grid_backend_is_selectable_at_runtime() {
        let (db, queries) = client_fixture();
        let session = Hydra::builder()
            .lp_backend(GridBackend::default())
            .compare_aqps(false)
            .build();
        let package = session.profile(db, &queries).unwrap();
        let result = session.regenerate(&package).unwrap();
        // The baseline still hits the row counts and reasonable accuracy on
        // this small workload; its LPs are at least as large as region ones.
        assert_eq!(
            result.summary.relation("store_sales").unwrap().total_rows,
            package.metadata.row_count("store_sales")
        );
        assert!(result.accuracy.fraction_within(0.10) > 0.8);
    }

    #[test]
    fn session_query_answers_summary_direct_with_scan_parity() {
        use hydra_query::exec::ExecStrategy;

        let (db, queries) = client_fixture();
        let session = Hydra::builder().compare_aqps(false).build();
        let package = session.profile(db, &queries).unwrap();
        let result = session.regenerate(&package).unwrap();

        // COUNT(*) over the fact table answers from the summary and agrees
        // with the published row target.
        let answer = session
            .query(&result, "select count(*) from store_sales")
            .unwrap();
        assert_eq!(answer.strategy(), ExecStrategy::SummaryDirect);
        assert_eq!(answer.scanned_tuples, 0);
        assert_eq!(answer.single().unwrap().aggregates[0].as_i64(), Some(2_000));

        // A joined, grouped aggregate: the summary-direct answer equals the
        // forced tuple scan bit-for-bit.
        let sql = "select count(*), avg(item.i_current_price) from store_sales, item \
                   where store_sales.ss_item_fk = item.i_item_sk \
                   group by item.i_category";
        let direct = session.query(&result, sql).unwrap();
        let scanned = session
            .query_mode(&result, sql, ExecMode::ScanOnly)
            .unwrap();
        assert_eq!(direct.strategy(), ExecStrategy::SummaryDirect);
        assert_eq!(scanned.strategy(), ExecStrategy::TupleScan);
        assert_eq!(direct.rows, scanned.rows);
        assert!(!direct.rows.is_empty());

        // SummaryOnly surfaces out-of-class queries as errors.
        let err = session
            .query_mode(
                &result,
                "select count(*) from store_sales group by store_sales.ss_sk",
                ExecMode::SummaryOnly,
            )
            .unwrap_err();
        assert!(err.to_string().contains("out of the summary-direct class"));

        // Parse errors surface as query errors.
        assert!(session.query(&result, "select oops").is_err());
    }

    #[test]
    fn stream_table_drives_sinks() {
        let (db, queries) = client_fixture();
        let session = Hydra::builder().compare_aqps(false).build();
        let package = session.profile(db, &queries).unwrap();
        let result = session.regenerate(&package).unwrap();

        let mut collect = CollectSink::new();
        let stats = session
            .stream_table(&result, "item", &mut collect, None, Some(50))
            .unwrap();
        assert_eq!(stats.rows, 50);
        assert_eq!(collect.rows.len(), 50);

        let mut count = CountingSink::new();
        let stats = session
            .stream_table(&result, "item", &mut count, None, None)
            .unwrap();
        assert_eq!(
            stats.rows,
            result.summary.relation("item").unwrap().total_rows
        );
        assert_eq!(count.rows, stats.rows);

        assert!(session
            .stream_table(&result, "missing", &mut CountingSink::new(), None, None)
            .is_err());
    }

    #[test]
    fn session_velocity_knob_throttles_streams() {
        let (db, queries) = client_fixture();
        // 2_500 rows/s session default → 250 rows take at least ~100 ms.
        let session = Hydra::builder()
            .compare_aqps(false)
            .velocity(2_500.0)
            .build();
        assert_eq!(session.velocity(), Some(2_500.0));
        let package = session.profile(db, &queries).unwrap();
        let result = session.regenerate(&package).unwrap();

        let mut sink = CountingSink::new();
        let stats = session
            .stream_table(&result, "store_sales", &mut sink, None, Some(250))
            .unwrap();
        assert_eq!(stats.rows, 250);
        assert_eq!(stats.target_rows_per_sec, Some(2_500.0));
        assert!(
            stats.elapsed >= std::time::Duration::from_millis(90),
            "throttled stream finished too fast: {:?}",
            stats.elapsed
        );
        assert!(
            stats.achieved_rows_per_sec <= 2_500.0 * 1.16,
            "stream emitted faster than the session target: {:.0} rows/s",
            stats.achieved_rows_per_sec
        );

        // An explicit per-call rate overrides the session default.
        let stats = session
            .stream_table(&result, "store_sales", &mut sink, Some(1e9), Some(100))
            .unwrap();
        assert_eq!(stats.target_rows_per_sec, Some(1e9));
    }

    #[test]
    fn builder_velocity_accepts_the_wire_minimum_and_none() {
        let builder = Hydra::builder().velocity(1e-3).velocity(None);
        assert_eq!(builder.build().velocity(), None);
    }

    #[test]
    #[should_panic(expected = "finite rate >= 0.001")]
    fn builder_velocity_rejects_zero() {
        let _ = Hydra::builder().velocity(0.0);
    }

    #[test]
    #[should_panic(expected = "finite rate >= 0.001")]
    fn builder_velocity_rejects_subnormal() {
        let _ = Hydra::builder().velocity(f64::MIN_POSITIVE);
    }

    #[test]
    #[should_panic(expected = "finite rate >= 0.001")]
    fn builder_velocity_rejects_infinity() {
        let _ = Hydra::builder().velocity(f64::INFINITY);
    }

    #[test]
    fn sharded_streaming_concatenates_to_the_sequential_output() {
        let (db, queries) = client_fixture();
        let session = Hydra::builder().compare_aqps(false).build();
        let package = session.profile(db, &queries).unwrap();
        let result = session.regenerate(&package).unwrap();

        let mut sequential = CollectSink::new();
        session
            .stream_table(&result, "store_sales", &mut sequential, None, None)
            .unwrap();

        for shards in [1, 2, 5] {
            let run = session
                .stream_table_sharded(&result, "store_sales", shards, |_, _| CollectSink::new())
                .unwrap();
            assert_eq!(run.total_rows(), sequential.rows.len() as u64);
            let concatenated: Vec<_> = run.into_sinks().into_iter().flat_map(|s| s.rows).collect();
            assert_eq!(concatenated, sequential.rows, "{shards} shards");
        }

        let materialized = session
            .materialize_sharded(&result, "store_sales", 3)
            .unwrap();
        assert_eq!(materialized.rows(), &sequential.rows[..]);

        assert!(session
            .stream_table_sharded(&result, "missing", 2, |_, _| CollectSink::new())
            .is_err());
        assert!(session.materialize_sharded(&result, "missing", 2).is_err());
    }
}
