//! Incremental workload evolution at the vendor site.
//!
//! A [`RegenerationState`] is a regeneration that *remembers how it was
//! solved*: the published package, the extracted constraint set with
//! per-query provenance, and the per-relation solve baseline (partition +
//! solved region counts + constraint signatures).  Against that state, a
//! [`hydra_query::delta::WorkloadDelta`] — queries added, retired, or
//! re-annotated after a fresh client run — is applied **incrementally**:
//!
//! 1. the delta merges into the workload and constraint set without
//!    re-extracting untouched annotated plans;
//! 2. relations whose constraint signature is unchanged reuse their previous
//!    summary bit-identically (no partitioning, no LP);
//! 3. changed relations re-solve with their previous partition refined in
//!    place and the previous LP support warm-starting the simplex;
//! 4. the structural outcome is reported as a
//!    [`hydra_summary::delta::SummaryDiff`] (blocks added / removed /
//!    resized per relation).
//!
//! The incremental result satisfies the merged constraint set exactly as a
//! from-scratch [`VendorSite::regenerate`] over the merged package does —
//! the property the `delta_differential` proptest harness pins down.

use crate::error::HydraResult;
use crate::report::build_aqp_comparisons;
use crate::transfer::TransferPackage;
use crate::vendor::{HydraConfig, RegenerationResult, VendorSite};
use hydra_datagen::dataless::DatalessDatabase;
use hydra_query::delta::{ConstraintSet, WorkloadDelta};
use hydra_summary::builder::SummaryBuilder;
use hydra_summary::delta::{DeltaBuildReport, SolveBaseline, SummaryDiff};
use hydra_summary::verify::verify_summary;
use std::collections::BTreeMap;

/// A regeneration plus everything needed to evolve it incrementally.
#[derive(Debug, Clone)]
pub struct RegenerationState {
    /// The (merged) package this state was solved from.
    pub package: TransferPackage,
    /// The solved regeneration (summary, reports, schema).
    pub regeneration: RegenerationResult,
    /// The extracted constraint set, with per-query provenance retained for
    /// incremental merging.
    pub constraints: ConstraintSet,
    /// Per-relation solve artifacts (signatures, partitions, region counts).
    baseline: SolveBaseline,
}

impl RegenerationState {
    /// Number of relations with retained solve artifacts.
    pub fn baseline_relations(&self) -> usize {
        self.baseline.len()
    }

    /// The per-relation solve artifacts backing this state.  Exposed so a
    /// durable registry can serialize the full solved state and later
    /// rebuild it via [`VendorSite::restore_stateful`] without re-solving.
    pub fn baseline(&self) -> &SolveBaseline {
        &self.baseline
    }
}

/// The outcome of applying a workload delta to a [`RegenerationState`].
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The evolved state (merged package, rebuilt regeneration, refreshed
    /// baseline) — feed it to the next [`VendorSite::apply_delta`].
    pub state: RegenerationState,
    /// Structural diff against the previous summary (blocks added / removed
    /// / resized per relation).
    pub diff: SummaryDiff,
    /// What re-solved, what was reused, and what the warm starts contributed.
    pub report: DeltaBuildReport,
}

/// Row targets implied by a package's metadata, honoring the configured
/// override (the same resolution [`VendorSite::regenerate`] applies).
fn resolve_row_targets(config: &HydraConfig, package: &TransferPackage) -> BTreeMap<String, u64> {
    match &config.row_target_override {
        Some(overrides) => overrides.clone(),
        None => package
            .metadata
            .schema
            .table_names()
            .iter()
            .map(|t| (t.clone(), package.metadata.row_count(t)))
            .collect(),
    }
}

impl VendorSite {
    /// [`VendorSite::regenerate`] retaining the per-relation solve artifacts
    /// needed for incremental evolution.  The attached summary cache (if
    /// any) is not consulted — the baseline subsumes it for delta flows —
    /// but it *is* seeded with the solved relations, so scenario sweeps
    /// over the same package stay as warm as after a plain regeneration.
    pub fn regenerate_stateful(&self, package: &TransferPackage) -> HydraResult<RegenerationState> {
        let schema = package.metadata.schema.clone();
        let constraints = ConstraintSet::from_workload(&package.workload)?;
        let row_targets = resolve_row_targets(&self.config, package);
        let builder = SummaryBuilder::new(self.config.builder.clone());
        let (summary, build_report, baseline) = builder.build_retaining(
            &schema,
            &row_targets,
            constraints.by_table(),
            Some(&package.metadata),
        )?;
        // The baseline subsumes the summary cache for delta flows, but
        // scenario sweeps over the same package still read the session
        // cache — seed it so a stateful solve warms them exactly like a
        // plain `regenerate` would (the baseline signatures *are* the cache
        // keys).
        if let Some(cache) = &self.cache {
            for relation in baseline.relations.values() {
                cache.put(
                    relation.signature,
                    relation.summary.clone(),
                    relation.stats.clone(),
                );
            }
        }
        let accuracy = verify_summary(&summary, constraints.by_table())?;
        let aqp_comparisons = if self.config.compare_aqps {
            let dataless = DatalessDatabase::new(schema.clone(), summary.clone());
            build_aqp_comparisons(&dataless, &package.workload)?
        } else {
            Vec::new()
        };
        Ok(RegenerationState {
            package: package.clone(),
            regeneration: RegenerationResult {
                summary,
                build_report,
                accuracy,
                aqp_comparisons,
                schema,
            },
            constraints,
            baseline,
        })
    }

    /// Rebuilds a [`RegenerationState`] from a previously solved baseline —
    /// the recovery path of a durable registry.  No partitioning and no LP
    /// runs: the summary is reassembled from the baseline's solved
    /// relations, the stored build report is reattached verbatim (so
    /// descriptions stay bit-identical across a restart), and only the
    /// cheap artifacts (constraint extraction, verification, optional AQP
    /// comparisons) are recomputed.
    pub fn restore_stateful(
        &self,
        package: &TransferPackage,
        build_report: hydra_summary::builder::SummaryBuildReport,
        baseline: SolveBaseline,
    ) -> HydraResult<RegenerationState> {
        let schema = package.metadata.schema.clone();
        let constraints = ConstraintSet::from_workload(&package.workload)?;
        let summary = baseline.to_summary();
        // Seed the session cache exactly as a live solve would have, so
        // post-recovery scenario sweeps stay warm.
        if let Some(cache) = &self.cache {
            for relation in baseline.relations.values() {
                cache.put(
                    relation.signature,
                    relation.summary.clone(),
                    relation.stats.clone(),
                );
            }
        }
        let accuracy = verify_summary(&summary, constraints.by_table())?;
        let aqp_comparisons = if self.config.compare_aqps {
            let dataless = DatalessDatabase::new(schema.clone(), summary.clone());
            build_aqp_comparisons(&dataless, &package.workload)?
        } else {
            Vec::new()
        };
        Ok(RegenerationState {
            package: package.clone(),
            regeneration: RegenerationResult {
                summary,
                build_report,
                accuracy,
                aqp_comparisons,
                schema,
            },
            constraints,
            baseline,
        })
    }

    /// Applies a workload delta to a previous stateful regeneration: the
    /// constraint merge, the summary rebuild (reuse / warm / cold per
    /// relation) and the structural diff, end to end.
    pub fn apply_delta(
        &self,
        prev: &RegenerationState,
        delta: &WorkloadDelta,
    ) -> HydraResult<DeltaOutcome> {
        // 1. Merge the delta into the workload and the constraint set
        //    (constraints of untouched queries are reused verbatim).
        let merged_workload = prev.package.workload.apply_delta(delta)?;
        let constraints = prev.constraints.merge_delta(&merged_workload, delta)?;

        // 2. Revise the client metadata where the delta observed new row
        //    counts (a drifted warehouse).
        let mut metadata = prev.package.metadata.clone();
        for (table, rows) in &delta.row_counts {
            if let Some(stats) = metadata.tables.get_mut(table) {
                stats.row_count = *rows;
            } else {
                metadata.tables.insert(
                    table.clone(),
                    hydra_catalog::stats::TableStatistics {
                        row_count: *rows,
                        ..Default::default()
                    },
                );
            }
        }
        let package = TransferPackage::new(metadata, merged_workload);
        let schema = package.metadata.schema.clone();

        // 3. Incremental rebuild against the previous baseline.
        let row_targets = resolve_row_targets(&self.config, &package);
        let builder = SummaryBuilder::new(self.config.builder.clone());
        let built = builder.build_delta(
            &schema,
            &row_targets,
            constraints.by_table(),
            Some(&package.metadata),
            &prev.baseline,
        )?;

        // 4. Verify against the *merged* constraint set, exactly as a
        //    from-scratch regeneration would.
        let accuracy = verify_summary(&built.summary, constraints.by_table())?;
        let aqp_comparisons = if self.config.compare_aqps {
            let dataless = DatalessDatabase::new(schema.clone(), built.summary.clone());
            build_aqp_comparisons(&dataless, &package.workload)?
        } else {
            Vec::new()
        };

        Ok(DeltaOutcome {
            state: RegenerationState {
                package,
                regeneration: RegenerationResult {
                    summary: built.summary,
                    build_report: built.report,
                    accuracy,
                    aqp_comparisons,
                    schema,
                },
                constraints,
                baseline: built.baseline,
            },
            diff: built.diff,
            report: built.delta_report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientSite;
    use hydra_engine::database::Database;
    use hydra_engine::exec::Executor;
    use hydra_query::query::SpjQuery;
    use hydra_summary::delta::DeltaAction;
    use hydra_workload::retail_client_fixture;

    fn fixture() -> (Database, Vec<SpjQuery>) {
        retail_client_fixture(1_500, 500, 8)
    }

    fn vendor() -> VendorSite {
        VendorSite::new(HydraConfig::without_aqp_comparison())
    }

    /// Harvests one extra query (unused seed range) against the client DB.
    fn harvested_delta(db: &Database, queries: &[SpjQuery]) -> WorkloadDelta {
        let executor = Executor::new(db);
        let mut delta = WorkloadDelta::new();
        for query in queries {
            let (_, aqp) = executor.run_query(query).unwrap();
            delta = delta.add_annotated(query.clone(), aqp);
        }
        delta
    }

    #[test]
    fn stateful_regeneration_matches_stateless() {
        let (db, queries) = fixture();
        let package = ClientSite::new(db)
            .prepare_package(&queries, false)
            .unwrap();
        let stateless = vendor().regenerate(&package).unwrap();
        let stateful = vendor().regenerate_stateful(&package).unwrap();
        assert_eq!(stateless.summary, stateful.regeneration.summary);
        assert_eq!(stateless.accuracy, stateful.regeneration.accuracy);
        assert!(stateful.baseline_relations() > 0);
    }

    #[test]
    fn empty_delta_reuses_every_relation() {
        let (db, queries) = fixture();
        let package = ClientSite::new(db)
            .prepare_package(&queries, false)
            .unwrap();
        let state = vendor().regenerate_stateful(&package).unwrap();
        let outcome = vendor().apply_delta(&state, &WorkloadDelta::new()).unwrap();
        assert_eq!(
            outcome.report.reused(),
            outcome.report.relations.len(),
            "{}",
            outcome.report.to_display_table()
        );
        assert!(outcome.diff.is_unchanged());
        assert_eq!(
            outcome.state.regeneration.summary,
            state.regeneration.summary
        );
    }

    #[test]
    fn retire_and_add_queries_incrementally() {
        use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};

        let (db, queries) = fixture();
        let package = ClientSite::new(db.clone())
            .prepare_package(&queries, false)
            .unwrap();
        let state = vendor().regenerate_stateful(&package).unwrap();

        // A narrow new observation: a local-predicate query on web_sales
        // (which references no dimension in this query), plus retiring one
        // of the original queries.
        let mut narrow = SpjQuery::new("delta-q1");
        narrow.add_table("web_sales");
        narrow.set_predicate(
            "web_sales",
            TablePredicate::always_true().with(ColumnPredicate::new(
                "ws_quantity",
                CompareOp::Lt,
                40,
            )),
        );
        let delta = harvested_delta(&db, &[narrow]);
        let outcome = vendor().apply_delta(&state, &delta).unwrap();
        assert_eq!(outcome.state.package.query_count(), 9);
        // Only web_sales is touched: every other relation is reused, and
        // referencing relations cascade reuse through identical dimension
        // summaries.
        assert_eq!(
            outcome.report.reused(),
            outcome.report.relations.len() - 1,
            "only web_sales re-solves: {}",
            outcome.report.to_display_table()
        );
        let ws = outcome
            .report
            .relations
            .iter()
            .find(|r| r.table == "web_sales")
            .unwrap();
        assert_ne!(ws.action, DeltaAction::Reused);

        // Equivalence: a from-scratch regeneration of the merged package
        // satisfies the same constraints with the same row counts.
        let scratch = vendor().regenerate(&outcome.state.package).unwrap();
        for (name, relation) in &scratch.summary.relations {
            assert_eq!(
                relation.total_rows,
                outcome
                    .state
                    .regeneration
                    .summary
                    .relation(name)
                    .unwrap()
                    .total_rows,
                "{name} row count"
            );
        }
        assert_eq!(
            scratch.accuracy.fraction_within(0.0),
            outcome.state.regeneration.accuracy.fraction_within(0.0),
            "incremental and from-scratch satisfy the same constraints exactly"
        );

        // A second delta chains off the evolved state: retiring the narrow
        // query restores the original constraint set, so web_sales re-solves
        // and everything else is reused again.
        let delta2 = WorkloadDelta::new().retire("delta-q1");
        let outcome2 = vendor().apply_delta(&outcome.state, &delta2).unwrap();
        assert_eq!(outcome2.state.package.query_count(), 8);
        assert_eq!(
            outcome2.report.reused(),
            outcome2.report.relations.len() - 1
        );
    }

    #[test]
    fn row_count_revision_rescales_the_relation() {
        let (db, queries) = fixture();
        let package = ClientSite::new(db)
            .prepare_package(&queries, false)
            .unwrap();
        let state = vendor().regenerate_stateful(&package).unwrap();
        let old_rows = state
            .regeneration
            .summary
            .relation("store_sales")
            .unwrap()
            .total_rows;
        let delta = WorkloadDelta::new().with_row_count("store_sales", old_rows * 2);
        let outcome = vendor().apply_delta(&state, &delta).unwrap();
        assert_eq!(
            outcome
                .state
                .regeneration
                .summary
                .relation("store_sales")
                .unwrap()
                .total_rows,
            old_rows * 2
        );
        let ss = outcome
            .report
            .relations
            .iter()
            .find(|r| r.table == "store_sales")
            .unwrap();
        assert_ne!(ss.action, DeltaAction::Reused);
        let diff = outcome
            .diff
            .relations
            .iter()
            .find(|r| r.table == "store_sales")
            .unwrap();
        assert_eq!(diff.rows_before, old_rows);
        assert_eq!(diff.rows_after, old_rows * 2);
    }

    #[test]
    fn invalid_delta_surfaces_as_query_error() {
        let (db, queries) = fixture();
        let package = ClientSite::new(db)
            .prepare_package(&queries, false)
            .unwrap();
        let state = vendor().regenerate_stateful(&package).unwrap();
        let err = vendor()
            .apply_delta(&state, &WorkloadDelta::new().retire("no-such-query"))
            .unwrap_err();
        assert!(err.to_string().contains("workload delta rejected"));
    }
}
