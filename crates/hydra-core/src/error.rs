//! Error type for the end-to-end pipeline.

use hydra_engine::error::EngineError;
use hydra_query::error::QueryError;
use hydra_summary::error::SummaryError;
use std::fmt;

/// Errors raised by the client/vendor pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum HydraError {
    /// Query planning or AQP processing failed.
    Query(QueryError),
    /// Query execution failed.
    Engine(EngineError),
    /// Summary construction failed.
    Summary(SummaryError),
    /// (De)serialization of the transfer package failed.
    Transfer(String),
    /// A what-if scenario was infeasible and strict mode was requested.
    InfeasibleScenario(String),
    /// Generic invalid input.
    Invalid(String),
}

impl fmt::Display for HydraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HydraError::Query(e) => write!(f, "query error: {e}"),
            HydraError::Engine(e) => write!(f, "engine error: {e}"),
            HydraError::Summary(e) => write!(f, "summary error: {e}"),
            HydraError::Transfer(msg) => write!(f, "transfer error: {msg}"),
            HydraError::InfeasibleScenario(msg) => write!(f, "infeasible scenario: {msg}"),
            HydraError::Invalid(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for HydraError {}

impl From<QueryError> for HydraError {
    fn from(e: QueryError) -> Self {
        HydraError::Query(e)
    }
}

impl From<EngineError> for HydraError {
    fn from(e: EngineError) -> Self {
        HydraError::Engine(e)
    }
}

impl From<SummaryError> for HydraError {
    fn from(e: SummaryError) -> Self {
        HydraError::Summary(e)
    }
}

impl From<hydra_datagen::exec::ExecError> for HydraError {
    fn from(e: hydra_datagen::exec::ExecError) -> Self {
        use hydra_datagen::exec::ExecError;
        match e {
            ExecError::Query(e) => HydraError::Query(e),
            ExecError::Engine(e) => HydraError::Engine(e),
            ExecError::Summary(e) => HydraError::Summary(e),
            ExecError::OutOfClass(reason) => {
                HydraError::Invalid(format!("out of the summary-direct class: {reason}"))
            }
        }
    }
}

/// Convenience result alias.
pub type HydraResult<T> = Result<T, HydraError>;
