//! # hydra-wal
//!
//! The storage discipline under the durable summary registry: an
//! **append-only write-ahead log** plus **immutable snapshot files**, both
//! checksummed, both fsync'd, both payload-agnostic (callers hand this crate
//! opaque bytes; the registry serializes its own records).
//!
//! ## WAL record framing
//!
//! ```text
//! ┌─────────────┬─────────────┬──────────────────┐
//! │ len: u32 LE │ crc: u32 LE │ payload (len B)  │   … repeated
//! └─────────────┴─────────────┴──────────────────┘
//! ```
//!
//! `crc` is the IEEE CRC32 of the payload.  [`Wal::append`] writes one frame
//! and then `fsync`s the file — a record is durable **before** the caller
//! acknowledges whatever the record describes.  [`replay`] walks the frames,
//! stops at the first incomplete or corrupt one, and **truncates** the file
//! back to the last intact frame boundary: a torn tail from a crash
//! mid-append disappears instead of poisoning the next run.
//!
//! ## Snapshot files
//!
//! A snapshot is written once and never modified: payload first, then a
//! fixed-size footer (`crc: u32 LE`, `len: u64 LE`, magic `HYSNAP01`) so a
//! reader can validate from the end without a header pass.  The file becomes
//! visible atomically — written to a `.tmp` sibling, fsync'd, renamed into
//! place, parent directory fsync'd — so a crash mid-checkpoint leaves either
//! the old snapshot or the new one, never a hybrid.
//!
//! ## fsync discipline
//!
//! [`fsync_file`], [`fsync_dir`] and [`write_file_durable`] are the shared
//! helpers every durable write in the workspace goes through (the WAL, the
//! checkpoints, and the legacy registry's `<name>.json` path).  Each call
//! bumps a process-wide counter ([`sync_counts`]) so tests can assert the
//! write path really issued its syncs instead of trusting the comment.

#![warn(missing_docs)]

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes of one record header: length + CRC32.
const RECORD_HEADER: usize = 8;

/// Sanity cap on a single WAL record; a length prefix beyond this is treated
/// as corruption (truncate point), not as an allocation request.
const MAX_RECORD_BYTES: u32 = 256 << 20;

/// Magic trailing bytes of a snapshot footer (versioned).
const SNAPSHOT_MAGIC: [u8; 8] = *b"HYSNAP01";

/// Bytes of the snapshot footer: crc (4) + payload len (8) + magic (8).
const SNAPSHOT_FOOTER: u64 = 20;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the polynomial zlib, gzip and PNG use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// fsync discipline
// ---------------------------------------------------------------------------

static FILE_SYNCS: AtomicU64 = AtomicU64::new(0);
static DIR_SYNCS: AtomicU64 = AtomicU64::new(0);

/// Process-wide fsync counters: `(file_syncs, dir_syncs)` issued through
/// this crate's helpers since process start.  Test instrumentation — the
/// durability tests assert a write path moved both numbers.
pub fn sync_counts() -> (u64, u64) {
    (
        FILE_SYNCS.load(Ordering::SeqCst),
        DIR_SYNCS.load(Ordering::SeqCst),
    )
}

/// `fsync` one open file (data + metadata), counting the call.
pub fn fsync_file(file: &File) -> std::io::Result<()> {
    file.sync_all()?;
    FILE_SYNCS.fetch_add(1, Ordering::SeqCst);
    Ok(())
}

/// `fsync` a directory so a rename or create inside it is durable — on
/// POSIX the rename itself lives in the *directory's* metadata, and a crash
/// can undo an un-synced rename even when the file's bytes survived.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    let handle = File::open(dir)?;
    handle.sync_all()?;
    DIR_SYNCS.fetch_add(1, Ordering::SeqCst);
    Ok(())
}

/// Writes `bytes` to `path` (create or truncate) and `fsync`s the file
/// before returning.  The caller still owns the rename + directory fsync
/// when the write is a tmp-file staging step.
pub fn write_file_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)?;
    fsync_file(&file)
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// An open append-only log.  Every [`Wal::append`] is fsync'd before it
/// returns, so a record the caller has seen succeed survives any crash.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Current end offset (frames written so far end here).
    end: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path` for appending.  Callers that may
    /// be reopening after a crash should [`replay`] first — replay truncates
    /// any torn tail, and `open` then continues from the intact boundary.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Wal> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        let end = file.seek(SeekFrom::End(0))?;
        Ok(Wal { file, path, end })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// Appends one record and `fsync`s the log.  Returns the number of bytes
    /// the frame occupies on disk.  When this returns `Ok`, the record is
    /// durable; when it returns `Err`, the next [`replay`] discards whatever
    /// partial frame may have landed (it is past the last intact boundary).
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "WAL record too large")
        })?;
        if len > MAX_RECORD_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "WAL record too large",
            ));
        }
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        fsync_file(&self.file)?;
        self.end += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Empties the log (after a successful checkpoint has made its records
    /// redundant) and `fsync`s the truncation.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        fsync_file(&self.file)?;
        self.end = 0;
        Ok(())
    }
}

/// The outcome of replaying a log file.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every intact record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail that were truncated away (0 on a clean log).
    pub truncated_bytes: u64,
}

/// Reads every intact record of the log at `path`, truncating a torn tail
/// (incomplete header, short payload, or CRC mismatch) back to the last
/// intact frame boundary.  A missing file replays as empty.
pub fn replay(path: &Path) -> std::io::Result<WalReplay> {
    let mut file = match OpenOptions::new().read(true).write(true).open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;

    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining < RECORD_HEADER {
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES || remaining - RECORD_HEADER < len as usize {
            break; // garbage length or short payload: torn tail
        }
        let payload = &bytes[offset + RECORD_HEADER..offset + RECORD_HEADER + len as usize];
        if crc32(payload) != crc {
            break; // corrupt record: everything from here on is suspect
        }
        records.push(payload.to_vec());
        offset += RECORD_HEADER + len as usize;
    }

    let truncated_bytes = (bytes.len() - offset) as u64;
    if truncated_bytes > 0 {
        file.set_len(offset as u64)?;
        fsync_file(&file)?;
    }
    Ok(WalReplay {
        records,
        truncated_bytes,
    })
}

// ---------------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------------

/// Writes `payload` as an immutable snapshot at `path`: payload + checksum
/// footer, staged through `path.tmp`, fsync'd, renamed into place, and the
/// parent directory fsync'd — atomically visible, durably named.
pub fn write_snapshot(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(payload.len() + SNAPSHOT_FOOTER as usize);
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);

    let tmp = path.with_extension("tmp");
    write_file_durable(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        fsync_dir(parent)?;
    }
    Ok(())
}

/// Reads and validates a snapshot written by [`write_snapshot`], returning
/// its payload.  Any structural or checksum mismatch is an
/// [`std::io::ErrorKind::InvalidData`] error — the caller falls back to an
/// older snapshot.
pub fn read_snapshot(path: &Path) -> std::io::Result<Vec<u8>> {
    let corrupt = |what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("corrupt snapshot: {what}"),
        )
    };
    let bytes = std::fs::read(path)?;
    if (bytes.len() as u64) < SNAPSHOT_FOOTER {
        return Err(corrupt("shorter than the footer"));
    }
    let footer = &bytes[bytes.len() - SNAPSHOT_FOOTER as usize..];
    if footer[12..20] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let len = u64::from_le_bytes(footer[4..12].try_into().expect("8 bytes"));
    if len != (bytes.len() as u64 - SNAPSHOT_FOOTER) {
        return Err(corrupt("length mismatch"));
    }
    let crc = u32::from_le_bytes(footer[0..4].try_into().expect("4 bytes"));
    let payload = &bytes[..len as usize];
    if crc32(payload) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hydra-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).expect("open");
        let records: Vec<Vec<u8>> = vec![b"one".to_vec(), vec![0u8; 1000], b"{}".to_vec()];
        for r in &records {
            wal.append(r).expect("append");
        }
        drop(wal);
        let replayed = replay(&path).expect("replay");
        assert_eq!(replayed.records, records);
        assert_eq!(replayed.truncated_bytes, 0);

        // Reopen continues appending after the existing records.
        let mut wal = Wal::open(&path).expect("reopen");
        wal.append(b"four").expect("append");
        let replayed = replay(&path).expect("replay again");
        assert_eq!(replayed.records.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// One way to mangle a WAL tail, by name.
    type Tear = (&'static str, fn(&mut Vec<u8>));

    #[test]
    fn torn_tails_are_truncated_not_fatal() {
        let tears: [Tear; 4] = [
            ("short-header", |b| b.extend_from_slice(&[7, 0, 0])),
            ("short-payload", |b| {
                b.extend_from_slice(&100u32.to_le_bytes());
                b.extend_from_slice(&0u32.to_le_bytes());
                b.extend_from_slice(b"only a few bytes");
            }),
            ("bad-crc", |b| {
                let payload = b"record three";
                b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                b.extend_from_slice(&(crc32(payload) ^ 1).to_le_bytes());
                b.extend_from_slice(payload);
            }),
            ("garbage-length", |b| {
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                b.extend_from_slice(&[0; 8]);
            }),
        ];
        for (tag, tear) in tears {
            let dir = temp_dir(tag);
            let path = dir.join("wal.log");
            let mut wal = Wal::open(&path).expect("open");
            wal.append(b"record one").expect("append");
            wal.append(b"record two").expect("append");
            let clean_len = wal.len_bytes();
            drop(wal);

            let mut bytes = std::fs::read(&path).expect("read");
            tear(&mut bytes);
            std::fs::write(&path, &bytes).expect("tear");

            let replayed = replay(&path).expect("replay");
            assert_eq!(
                replayed.records,
                vec![b"record one".to_vec(), b"record two".to_vec()],
                "{tag}: intact prefix survives"
            );
            assert!(replayed.truncated_bytes > 0, "{tag}: tail accounted");
            assert_eq!(
                std::fs::metadata(&path).expect("meta").len(),
                clean_len,
                "{tag}: file truncated back to the intact boundary"
            );
            // A second replay is clean, and appending continues normally.
            let replayed = replay(&path).expect("replay after truncate");
            assert_eq!(replayed.truncated_bytes, 0, "{tag}");
            let mut wal = Wal::open(&path).expect("reopen");
            wal.append(b"record three").expect("append after tear");
            assert_eq!(replay(&path).expect("final").records.len(), 3, "{tag}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn missing_wal_replays_empty() {
        let dir = temp_dir("missing");
        let replayed = replay(&dir.join("nope.log")).expect("replay missing");
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_round_trip_and_corruption_detection() {
        let dir = temp_dir("snapshot");
        let path = dir.join("snapshot-1.snap");
        let payload = b"{\"summaries\": []}".repeat(50);
        write_snapshot(&path, &payload).expect("write");
        assert_eq!(read_snapshot(&path).expect("read"), payload);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp staging file renamed away"
        );

        // Flip one payload byte: checksum mismatch.
        let mut bytes = std::fs::read(&path).expect("read bytes");
        bytes[3] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt");
        let err = read_snapshot(&path).expect_err("corrupt snapshot must not parse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Truncated file: structural error, not a panic.
        std::fs::write(&path, &bytes[..10]).expect("truncate");
        assert!(read_snapshot(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_issues_a_file_sync_and_snapshot_a_dir_sync() {
        let dir = temp_dir("sync-counts");
        let (files_before, dirs_before) = sync_counts();
        let mut wal = Wal::open(dir.join("wal.log")).expect("open");
        wal.append(b"payload").expect("append");
        let (files_after, _) = sync_counts();
        assert!(files_after > files_before, "append must fsync the log file");

        write_snapshot(&dir.join("snap.snap"), b"payload").expect("snapshot");
        let (_, dirs_after) = sync_counts();
        assert!(
            dirs_after > dirs_before,
            "snapshot publication must fsync the directory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
