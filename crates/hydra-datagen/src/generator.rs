//! The user-facing dynamic generator: streams, materialization, tuple sinks,
//! and rate-controlled generation runs.

use crate::governor::VelocityGovernor;
use crate::shard::{run_sharded, ShardedRun};
use crate::sink::{CollectSink, CountingSink, TupleSink};
use crate::stream::TupleStream;
use hydra_catalog::schema::Schema;
use hydra_engine::error::{EngineError, EngineResult};
use hydra_engine::table::MemTable;
use hydra_summary::summary::DatabaseSummary;
use std::ops::Range;
use std::time::Duration;

/// Statistics of one generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationStats {
    /// Relation that was generated.
    pub table: String,
    /// Number of tuples produced.
    pub rows: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Achieved rate in rows per second.
    pub achieved_rows_per_sec: f64,
    /// Target rate, if the run was throttled.
    pub target_rows_per_sec: Option<f64>,
    /// Total time the velocity governor slept to hold the target rate
    /// (zero for unthrottled runs).
    pub governor_sleep: Duration,
}

/// Regenerates relations from a database summary.
///
/// ```
/// use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
/// use hydra_catalog::types::{DataType, Value};
/// use hydra_datagen::generator::DynamicGenerator;
/// use hydra_datagen::sink::CollectSink;
/// use hydra_summary::summary::{DatabaseSummary, RelationSummary};
/// use std::collections::BTreeMap;
///
/// let schema = SchemaBuilder::new("db")
///     .table("item", |t| {
///         t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
///     })
///     .build()
///     .unwrap();
/// let mut item = RelationSummary::new("item", Some("i_item_sk".to_string()));
/// item.push_row(1_000, BTreeMap::new());
/// let mut summary = DatabaseSummary::new();
/// summary.insert(item);
/// let generator = DynamicGenerator::new(schema, summary);
///
/// // Random access: rows [200, 210) without generating rows [0, 200).
/// let slice: Vec<_> = generator.stream_range("item", 200..210).unwrap().collect();
/// assert_eq!(slice.len(), 10);
/// assert_eq!(slice[0][0], Value::Integer(200));
///
/// // Sharded: 4 threads, each with its own sink; concatenation in shard
/// // order is bit-identical to the sequential stream.
/// let run = generator
///     .stream_sharded("item", 4, |_shard, _range| CollectSink::new())
///     .unwrap();
/// let sharded: Vec<_> = run.into_sinks().into_iter().flat_map(|s| s.rows).collect();
/// let sequential: Vec<_> = generator.stream("item").unwrap().collect();
/// assert_eq!(sharded, sequential);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGenerator {
    /// Schema of the regenerated database.
    pub schema: Schema,
    /// The driving summary.
    pub summary: DatabaseSummary,
}

impl DynamicGenerator {
    /// Creates a generator.
    pub fn new(schema: Schema, summary: DatabaseSummary) -> Self {
        DynamicGenerator { schema, summary }
    }

    /// Resolves a table name to its schema and summary entries.
    fn relation(
        &self,
        table: &str,
    ) -> EngineResult<(
        &hydra_catalog::schema::Table,
        &hydra_summary::summary::RelationSummary,
    )> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        let summary = self
            .summary
            .relation(table)
            .ok_or_else(|| EngineError::UnknownTable(format!("{table} (no summary)")))?;
        Ok((t, summary))
    }

    /// A lazy tuple stream for one relation.
    pub fn stream(&self, table: &str) -> EngineResult<TupleStream<'_>> {
        let (t, summary) = self.relation(table)?;
        Ok(TupleStream::new(t, summary))
    }

    /// A lazy tuple stream over the row range `rows` of one relation (clamped
    /// to the relation's size).  The stream seeks to the start of the range
    /// in O(log B) through the summary's block-offset index — no tuples
    /// before the range are ever generated — and produces exactly the
    /// corresponding slice of [`DynamicGenerator::stream`].
    pub fn stream_range(&self, table: &str, rows: Range<u64>) -> EngineResult<TupleStream<'_>> {
        let (t, summary) = self.relation(table)?;
        Ok(TupleStream::with_range(t, summary, rows))
    }

    /// Regenerates one relation with `shards` parallel workers, each shard
    /// streaming a balanced row range into its own [`TupleSink`] built by
    /// `sink_factory` (called with the shard index and row range).  The
    /// concatenation of the shard sinks in plan order is bit-identical to the
    /// sequential [`DynamicGenerator::stream`].
    pub fn stream_sharded<S, F>(
        &self,
        table: &str,
        shards: usize,
        sink_factory: F,
    ) -> EngineResult<ShardedRun<S>>
    where
        S: TupleSink + Send,
        F: Fn(usize, Range<u64>) -> S + Sync,
    {
        let (t, summary) = self.relation(table)?;
        Ok(run_sharded(t, summary, shards, sink_factory))
    }

    /// Materializes a relation with `shards` parallel workers; the resulting
    /// table is bit-identical to [`DynamicGenerator::materialize`].
    pub fn materialize_sharded(&self, table: &str, shards: usize) -> EngineResult<MemTable> {
        let (t, summary) = self.relation(table)?;
        let run = run_sharded(t, summary, shards, |_, _| CollectSink::new());
        let mut mem = MemTable::empty(t.clone());
        for sink in run.into_sinks() {
            mem.load_unchecked(sink.rows);
        }
        Ok(mem)
    }

    /// Materializes a relation into an in-memory table (the demo's optional
    /// "materialize" mode).  Dynamic generation makes this unnecessary for
    /// query execution; it exists for comparison and for exporting data.
    pub fn materialize(&self, table: &str) -> EngineResult<MemTable> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        let mut mem = MemTable::empty(t.clone());
        let rows: Vec<_> = self.stream(table)?.collect();
        mem.load_unchecked(rows);
        Ok(mem)
    }

    /// Streams a relation's tuples into a [`TupleSink`], optionally throttled
    /// to `rows_per_sec` and truncated at `limit` tuples.  This is the one
    /// generation path behind query execution, export, and velocity
    /// measurement; run statistics come back either way.
    pub fn stream_into(
        &self,
        table: &str,
        sink: &mut dyn TupleSink,
        rows_per_sec: Option<f64>,
        limit: Option<u64>,
    ) -> EngineResult<GenerationStats> {
        let stream = self.stream(table)?;
        Ok(drive_stream(stream, sink, rows_per_sec, limit))
    }

    /// Streams the row range `rows` of a relation into a [`TupleSink`],
    /// optionally throttled to `rows_per_sec`.  The stream seeks to the start
    /// of the range through the summary's block-offset index, so serving rows
    /// `[lo, hi)` never generates a tuple outside the range — this is the
    /// generation path behind wire-streamed shard serving, where each
    /// connection pulls its own range at its own velocity.
    pub fn stream_range_into(
        &self,
        table: &str,
        rows: Range<u64>,
        sink: &mut dyn TupleSink,
        rows_per_sec: Option<f64>,
    ) -> EngineResult<GenerationStats> {
        let stream = self.stream_range(table, rows)?;
        Ok(drive_stream(stream, sink, rows_per_sec, None))
    }

    /// Generates up to `limit` tuples of a relation at the given velocity
    /// (rows per second; `None` = unthrottled), returning run statistics.
    /// Tuples are produced and immediately discarded — this measures the
    /// generator itself, exactly like the demo's velocity screen.
    pub fn generate_with_velocity(
        &self,
        table: &str,
        rows_per_sec: Option<f64>,
        limit: Option<u64>,
    ) -> EngineResult<GenerationStats> {
        let mut sink = CountingSink::new();
        self.stream_into(table, &mut sink, rows_per_sec, limit)
    }
}

/// Drives a prepared stream into a sink under a [`VelocityGovernor`] — the
/// shared emission loop of [`DynamicGenerator::stream_into`] and
/// [`DynamicGenerator::stream_range_into`].
fn drive_stream(
    mut stream: TupleStream<'_>,
    sink: &mut dyn TupleSink,
    rows_per_sec: Option<f64>,
    limit: Option<u64>,
) -> GenerationStats {
    let table = stream.table().name.clone();
    let limit = limit.unwrap_or(u64::MAX);
    let expected = stream.remaining().min(limit);
    sink.begin(stream.table(), expected);
    let mut governor = match rows_per_sec {
        Some(rate) => VelocityGovernor::with_rate(rate),
        None => VelocityGovernor::unthrottled(),
    };
    let mut produced = 0u64;
    if governor.target_rate().is_none() {
        // Unthrottled: hand the sink whole columnar blocks so overriding
        // sinks do O(1) work per block (the default expansion is
        // bit-identical to the per-row loop below).
        while produced < limit && !sink.aborted() {
            let Some(block) = stream.next_block(limit - produced) else {
                break;
            };
            let n = sink.write_block(&block);
            produced += n;
            governor.note(n);
            if n < block.len() {
                // The sink aborted mid-block; don't credit unconsumed rows.
                break;
            }
        }
    } else {
        // Throttled: pace tuple by tuple so the emission schedule is exactly
        // the configured velocity, not block-grained bursts.
        for row in stream {
            if produced >= limit || sink.aborted() {
                break;
            }
            sink.accept(row);
            produced += 1;
            governor.pace(1);
        }
    }
    sink.finish();
    GenerationStats {
        table,
        rows: produced,
        elapsed: governor.elapsed(),
        achieved_rows_per_sec: governor.achieved_rate(),
        target_rows_per_sec: governor.target_rate(),
        governor_sleep: governor.slept(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};
    use hydra_summary::summary::RelationSummary;
    use std::collections::BTreeMap;

    fn generator() -> DynamicGenerator {
        let schema = SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
            })
            .build()
            .unwrap();
        let mut item = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v = BTreeMap::new();
        v.insert("i_manager_id".to_string(), Value::Integer(40));
        item.push_row(5000, v);
        let mut summary = DatabaseSummary::new();
        summary.insert(item);
        DynamicGenerator::new(schema, summary)
    }

    #[test]
    fn stream_and_materialize_agree() {
        let gen = generator();
        let streamed: Vec<_> = gen.stream("item").unwrap().collect();
        let materialized = gen.materialize("item").unwrap();
        assert_eq!(streamed.len(), 5000);
        assert_eq!(materialized.row_count(), 5000);
        assert_eq!(materialized.rows()[0], streamed[0]);
        assert!(gen.stream("missing").is_err());
        assert!(gen.materialize("missing").is_err());
    }

    #[test]
    fn stream_range_is_a_slice_of_the_full_stream() {
        let gen = generator();
        let full: Vec<_> = gen.stream("item").unwrap().collect();
        let slice: Vec<_> = gen.stream_range("item", 1000..1010).unwrap().collect();
        assert_eq!(slice, full[1000..1010]);
        assert!(gen.stream_range("missing", 0..10).is_err());
    }

    #[test]
    fn sharded_materialization_matches_sequential() {
        let gen = generator();
        let sequential = gen.materialize("item").unwrap();
        for shards in [1, 3, 8] {
            let sharded = gen.materialize_sharded("item", shards).unwrap();
            assert_eq!(sharded.rows(), sequential.rows(), "{shards} shards");
        }
        assert!(gen.materialize_sharded("missing", 2).is_err());
    }

    #[test]
    fn sharded_stream_drives_one_sink_per_shard() {
        let gen = generator();
        let run = gen
            .stream_sharded("item", 4, |_, _| CountingSink::new())
            .unwrap();
        assert_eq!(run.shards.len(), 4);
        assert_eq!(run.total_rows(), 5000);
        assert_eq!(run.aggregate_stats().rows, 5000);
        assert!(gen
            .stream_sharded("missing", 4, |_, _| CountingSink::new())
            .is_err());
    }

    #[test]
    fn unthrottled_generation_stats() {
        let gen = generator();
        let stats = gen.generate_with_velocity("item", None, None).unwrap();
        assert_eq!(stats.rows, 5000);
        assert!(stats.achieved_rows_per_sec > 0.0);
        assert!(stats.target_rows_per_sec.is_none());
    }

    #[test]
    fn limited_generation_stops_early() {
        let gen = generator();
        let stats = gen.generate_with_velocity("item", None, Some(100)).unwrap();
        assert_eq!(stats.rows, 100);
    }

    #[test]
    fn stream_range_into_matches_the_slice_and_respects_velocity() {
        let gen = generator();
        let full: Vec<_> = gen.stream("item").unwrap().collect();

        let mut collect = CollectSink::new();
        let stats = gen
            .stream_range_into("item", 1200..1400, &mut collect, None)
            .unwrap();
        assert_eq!(stats.rows, 200);
        assert_eq!(collect.rows, full[1200..1400]);

        // 200 rows at 2000 rows/s → ~100 ms, paced per emitted tuple.
        let mut sink = CountingSink::new();
        let stats = gen
            .stream_range_into("item", 0..200, &mut sink, Some(2000.0))
            .unwrap();
        assert_eq!(stats.rows, 200);
        assert!(
            stats.elapsed >= Duration::from_millis(90),
            "throttled range stream finished too fast: {:?}",
            stats.elapsed
        );
        assert!(gen
            .stream_range_into("missing", 0..1, &mut sink, None)
            .is_err());
    }

    #[test]
    fn dead_sink_aborts_the_stream_early() {
        /// A sink that goes dead after accepting `alive` tuples — models a
        /// wire sink whose peer disconnected mid-stream.
        struct DyingSink {
            alive: u64,
            accepted: u64,
            finished: bool,
        }
        impl TupleSink for DyingSink {
            fn accept(&mut self, _row: hydra_engine::row::Row) {
                self.accepted += 1;
            }
            fn aborted(&self) -> bool {
                self.accepted >= self.alive
            }
            fn finish(&mut self) {
                self.finished = true;
            }
        }

        let gen = generator();
        let mut sink = DyingSink {
            alive: 100,
            accepted: 0,
            finished: false,
        };
        let stats = gen.stream_into("item", &mut sink, None, None).unwrap();
        // The driver stopped at the abort signal instead of generating the
        // remaining 4_900 tuples into a dead sink, and still closed it.
        assert_eq!(stats.rows, 100);
        assert_eq!(sink.accepted, 100);
        assert!(sink.finished);
    }

    #[test]
    fn throttled_generation_respects_velocity() {
        let gen = generator();
        // 500 rows at 5000 rows/s → ~100 ms.
        let stats = gen
            .generate_with_velocity("item", Some(5000.0), Some(500))
            .unwrap();
        assert_eq!(stats.rows, 500);
        assert!(
            stats.elapsed >= Duration::from_millis(90),
            "too fast: {:?}",
            stats.elapsed
        );
        assert!(stats.achieved_rows_per_sec <= 5800.0);
    }
}
