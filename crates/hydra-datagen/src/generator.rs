//! The user-facing dynamic generator: streams, materialization, tuple sinks,
//! and rate-controlled generation runs.

use crate::governor::VelocityGovernor;
use crate::sink::{CountingSink, TupleSink};
use crate::stream::TupleStream;
use hydra_catalog::schema::Schema;
use hydra_engine::error::{EngineError, EngineResult};
use hydra_engine::table::MemTable;
use hydra_summary::summary::DatabaseSummary;
use std::time::Duration;

/// Statistics of one generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationStats {
    /// Relation that was generated.
    pub table: String,
    /// Number of tuples produced.
    pub rows: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Achieved rate in rows per second.
    pub achieved_rows_per_sec: f64,
    /// Target rate, if the run was throttled.
    pub target_rows_per_sec: Option<f64>,
}

/// Regenerates relations from a database summary.
#[derive(Debug, Clone)]
pub struct DynamicGenerator {
    /// Schema of the regenerated database.
    pub schema: Schema,
    /// The driving summary.
    pub summary: DatabaseSummary,
}

impl DynamicGenerator {
    /// Creates a generator.
    pub fn new(schema: Schema, summary: DatabaseSummary) -> Self {
        DynamicGenerator { schema, summary }
    }

    /// A lazy tuple stream for one relation.
    pub fn stream(&self, table: &str) -> EngineResult<TupleStream<'_>> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        let summary = self
            .summary
            .relation(table)
            .ok_or_else(|| EngineError::UnknownTable(format!("{table} (no summary)")))?;
        Ok(TupleStream::new(t, summary))
    }

    /// Materializes a relation into an in-memory table (the demo's optional
    /// "materialize" mode).  Dynamic generation makes this unnecessary for
    /// query execution; it exists for comparison and for exporting data.
    pub fn materialize(&self, table: &str) -> EngineResult<MemTable> {
        let t = self
            .schema
            .table(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        let mut mem = MemTable::empty(t.clone());
        let rows: Vec<_> = self.stream(table)?.collect();
        mem.load_unchecked(rows);
        Ok(mem)
    }

    /// Streams a relation's tuples into a [`TupleSink`], optionally throttled
    /// to `rows_per_sec` and truncated at `limit` tuples.  This is the one
    /// generation path behind query execution, export, and velocity
    /// measurement; run statistics come back either way.
    pub fn stream_into(
        &self,
        table: &str,
        sink: &mut dyn TupleSink,
        rows_per_sec: Option<f64>,
        limit: Option<u64>,
    ) -> EngineResult<GenerationStats> {
        let stream = self.stream(table)?;
        let schema_table = self
            .schema
            .table(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        let expected = stream.remaining().min(limit.unwrap_or(u64::MAX));
        sink.begin(schema_table, expected);
        let mut governor = match rows_per_sec {
            Some(rate) => VelocityGovernor::with_rate(rate),
            None => VelocityGovernor::unthrottled(),
        };
        let mut produced = 0u64;
        for row in stream {
            if produced >= limit.unwrap_or(u64::MAX) {
                break;
            }
            sink.accept(row);
            produced += 1;
            governor.pace(1);
        }
        sink.finish();
        Ok(GenerationStats {
            table: table.to_string(),
            rows: produced,
            elapsed: governor.elapsed(),
            achieved_rows_per_sec: governor.achieved_rate(),
            target_rows_per_sec: governor.target_rate(),
        })
    }

    /// Generates up to `limit` tuples of a relation at the given velocity
    /// (rows per second; `None` = unthrottled), returning run statistics.
    /// Tuples are produced and immediately discarded — this measures the
    /// generator itself, exactly like the demo's velocity screen.
    pub fn generate_with_velocity(
        &self,
        table: &str,
        rows_per_sec: Option<f64>,
        limit: Option<u64>,
    ) -> EngineResult<GenerationStats> {
        let mut sink = CountingSink::new();
        self.stream_into(table, &mut sink, rows_per_sec, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};
    use hydra_summary::summary::RelationSummary;
    use std::collections::BTreeMap;

    fn generator() -> DynamicGenerator {
        let schema = SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
            })
            .build()
            .unwrap();
        let mut item = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v = BTreeMap::new();
        v.insert("i_manager_id".to_string(), Value::Integer(40));
        item.push_row(5000, v);
        let mut summary = DatabaseSummary::new();
        summary.insert(item);
        DynamicGenerator::new(schema, summary)
    }

    #[test]
    fn stream_and_materialize_agree() {
        let gen = generator();
        let streamed: Vec<_> = gen.stream("item").unwrap().collect();
        let materialized = gen.materialize("item").unwrap();
        assert_eq!(streamed.len(), 5000);
        assert_eq!(materialized.row_count(), 5000);
        assert_eq!(materialized.rows()[0], streamed[0]);
        assert!(gen.stream("missing").is_err());
        assert!(gen.materialize("missing").is_err());
    }

    #[test]
    fn unthrottled_generation_stats() {
        let gen = generator();
        let stats = gen.generate_with_velocity("item", None, None).unwrap();
        assert_eq!(stats.rows, 5000);
        assert!(stats.achieved_rows_per_sec > 0.0);
        assert!(stats.target_rows_per_sec.is_none());
    }

    #[test]
    fn limited_generation_stops_early() {
        let gen = generator();
        let stats = gen.generate_with_velocity("item", None, Some(100)).unwrap();
        assert_eq!(stats.rows, 100);
    }

    #[test]
    fn throttled_generation_respects_velocity() {
        let gen = generator();
        // 500 rows at 5000 rows/s → ~100 ms.
        let stats = gen
            .generate_with_velocity("item", Some(5000.0), Some(500))
            .unwrap();
        assert_eq!(stats.rows, 500);
        assert!(
            stats.elapsed >= Duration::from_millis(90),
            "too fast: {:?}",
            stats.elapsed
        );
        assert!(stats.achieved_rows_per_sec <= 5800.0);
    }
}
