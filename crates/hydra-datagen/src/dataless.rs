//! The dataless database: query execution with no stored tuples.
//!
//! [`DatalessDatabase`] pairs a schema with a database summary and implements
//! the execution engine's [`TableProvider`], so every scan in a query plan is
//! served by the dynamic tuple generator.  This is the Rust counterpart of the
//! paper's `datagen` relation property in PostgreSQL: enabling it replaces the
//! traditional scan operator with the dynamic regeneration operator.

use crate::stream::TupleStream;
use hydra_catalog::schema::Schema;
use hydra_engine::exec::TableProvider;
use hydra_engine::row::Row;
use hydra_summary::summary::DatabaseSummary;

/// A schema plus a summary, scannable as if it were a populated database.
#[derive(Debug, Clone)]
pub struct DatalessDatabase {
    /// The schema of the regenerated database.
    pub schema: Schema,
    /// The summary that drives regeneration.
    pub summary: DatabaseSummary,
}

impl DatalessDatabase {
    /// Creates a dataless database.
    pub fn new(schema: Schema, summary: DatabaseSummary) -> Self {
        DatalessDatabase { schema, summary }
    }

    /// Number of tuples a scan of `table` would produce.
    pub fn row_count(&self, table: &str) -> u64 {
        self.summary
            .relation(table)
            .map(|r| r.total_rows)
            .unwrap_or(0)
    }
}

impl TableProvider for DatalessDatabase {
    fn table_columns(&self, table: &str) -> Option<Vec<String>> {
        self.schema
            .table(table)
            .map(|t| t.columns().iter().map(|c| c.name.clone()).collect())
    }

    fn scan(&self, table: &str) -> Option<Box<dyn Iterator<Item = Row> + '_>> {
        let t = self.schema.table(table)?;
        let summary = self.summary.relation(table)?;
        Some(Box::new(TupleStream::new(t, summary)))
    }

    fn estimated_rows(&self, table: &str) -> Option<u64> {
        self.summary.relation(table).map(|r| r.total_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};
    use hydra_engine::exec::Executor;
    use hydra_query::parser::parse_query_for_schema;
    use hydra_query::plan::LogicalPlan;
    use hydra_summary::summary::RelationSummary;
    use std::collections::BTreeMap;

    fn schema() -> Schema {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("i_manager_id", DataType::BigInt)
                            .domain(Domain::integer(0, 100)),
                    )
            })
            .table("store_sales", |t| {
                t.column(ColumnBuilder::new("ss_sk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("ss_item_fk", DataType::BigInt)
                            .references("item", "i_item_sk"),
                    )
            })
            .build()
            .unwrap()
    }

    fn summary() -> DatabaseSummary {
        let mut item = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_manager_id".to_string(), Value::Integer(40));
        item.push_row(60, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("i_manager_id".to_string(), Value::Integer(91));
        item.push_row(40, v2);

        let mut sales = RelationSummary::new("store_sales", Some("ss_sk".to_string()));
        let mut s1 = BTreeMap::new();
        s1.insert("ss_item_fk".to_string(), Value::Integer(10)); // manager 40 block
        sales.push_row(300, s1);
        let mut s2 = BTreeMap::new();
        s2.insert("ss_item_fk".to_string(), Value::Integer(70)); // manager 91 block
        sales.push_row(700, s2);

        let mut db = DatabaseSummary::new();
        db.insert(item);
        db.insert(sales);
        db
    }

    #[test]
    fn provider_interface() {
        let db = DatalessDatabase::new(schema(), summary());
        assert_eq!(db.row_count("item"), 100);
        assert_eq!(db.row_count("missing"), 0);
        assert_eq!(db.estimated_rows("store_sales"), Some(1000));
        assert_eq!(
            db.table_columns("item"),
            Some(vec!["i_item_sk".to_string(), "i_manager_id".to_string()])
        );
        assert!(db.table_columns("missing").is_none());
        assert_eq!(db.scan("item").unwrap().count(), 100);
        assert!(db.scan("missing").is_none());
    }

    #[test]
    fn queries_run_on_dataless_database() {
        // The headline feature: execute a filter + join query with absolutely
        // no materialized tuples.
        let schema = schema();
        let db = DatalessDatabase::new(schema.clone(), summary());
        let q = parse_query_for_schema(
            "q",
            "select * from store_sales, item \
             where store_sales.ss_item_fk = item.i_item_sk and item.i_manager_id < 50",
            &schema,
        )
        .unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        let (result, aqp) = Executor::new(&db).run_annotated("q", &plan).unwrap();
        // Sales rows referencing items with manager < 50 are exactly the 300
        // rows whose FK lands in the first item block.
        assert_eq!(result.rows.len(), 300);
        assert_eq!(aqp.root.cardinality, 300);
    }
}
