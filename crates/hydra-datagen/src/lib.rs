//! # hydra-datagen
//!
//! Dynamic ("dataless") tuple generation — the part of HYDRA that regenerates
//! the database **on demand during query execution** instead of materializing
//! it on disk.
//!
//! * [`stream::TupleStream`] expands a relation summary into concrete tuples,
//!   lazily, one row at a time; primary keys are generated as auto-numbers so
//!   row *k* of the stream always carries primary key *k* (the Table 1
//!   pattern: `item_sk` 0, 917, 938, … are the starts of the summary-row
//!   blocks).
//! * [`governor::VelocityGovernor`] regulates the generation rate in rows per
//!   second — the paper's "velocity" slider — by pacing the stream against a
//!   monotonic clock.
//! * [`dataless::DatalessDatabase`] implements the execution engine's
//!   [`hydra_engine::exec::TableProvider`] over a summary, so queries run with
//!   **no stored data at all**: every scan is served by the tuple generator
//!   (the paper's `datagen` scan operator).
//! * [`generator::DynamicGenerator`] is the user-facing façade: streams,
//!   optional materialization, and rate-controlled generation runs with
//!   statistics.
//! * [`shard`] adds the scale-out path: [`shard::ShardPlanner`] splits a
//!   relation's row space into balanced ranges, each regenerated on its own
//!   thread through an O(log B) seek into the summary's block-offset index,
//!   with per-shard [`sink::TupleSink`]s and output bit-identical to the
//!   sequential stream.
//!
//! ## Example
//!
//! ```
//! use hydra_catalog::schema::{SchemaBuilder, ColumnBuilder};
//! use hydra_catalog::types::{DataType, Value};
//! use hydra_summary::summary::{DatabaseSummary, RelationSummary};
//! use hydra_datagen::generator::DynamicGenerator;
//! use std::collections::BTreeMap;
//!
//! let schema = SchemaBuilder::new("db")
//!     .table("item", |t| {
//!         t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
//!          .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
//!     })
//!     .build().unwrap();
//! let mut item = RelationSummary::new("item", Some("i_item_sk".into()));
//! let mut v = BTreeMap::new();
//! v.insert("i_manager_id".to_string(), Value::Integer(40));
//! item.push_row(917, v);
//! let mut summary = DatabaseSummary::new();
//! summary.insert(item);
//!
//! let gen = DynamicGenerator::new(schema, summary);
//! let rows: Vec<_> = gen.stream("item").unwrap().collect();
//! assert_eq!(rows.len(), 917);
//! assert_eq!(rows[0][0], Value::Integer(0));     // auto-numbered PK
//! assert_eq!(rows[916][0], Value::Integer(916));
//! ```

#![warn(missing_docs)]

pub mod dataless;
pub mod exec;
pub mod generator;
pub mod governor;
pub mod shard;
pub mod sink;
pub mod stream;

pub use dataless::DatalessDatabase;
pub use exec::{ExecError, ExecMode, ExecResult, QueryEngine};
pub use generator::{DynamicGenerator, GenerationStats};
pub use governor::VelocityGovernor;
pub use shard::{ShardOutcome, ShardPlanner, ShardedRun};
pub use sink::{CollectSink, CountingSink, CsvSink, TupleSink};
pub use stream::TupleStream;
