//! Shard planning and the parallel sharded regeneration driver.
//!
//! Dynamic generation is embarrassingly parallel *if* a worker can start in
//! the middle of a relation without replaying everything before it.  The
//! summary's block-offset index gives exactly that (O(log B) seek, see
//! [`hydra_summary::index::PkBlockIndex`]), so sharding reduces to:
//!
//! 1. [`ShardPlanner`] splits the relation's `[0, total)` row space into
//!    balanced, contiguous, non-overlapping ranges — shard sizes differ by at
//!    most one row, and empty shards are never planned (asking for more
//!    shards than rows yields one single-row shard per row);
//! 2. [`run_sharded`] streams every shard on its own thread
//!    (`std::thread::scope`, mirroring the summary builder's stratum
//!    parallelism) into a per-shard [`TupleSink`] produced by a caller
//!    factory; each tuple is built from a per-block template row and handed
//!    straight to the shard's own sink (batched consumers can pull through
//!    [`TupleStream::fill_batch`] instead).
//!
//! Because each shard is a deterministic range stream, concatenating the
//! shard outputs in shard order is **bit-identical** to the sequential
//! [`TupleStream`] over the whole relation —
//! asserted by the `shard_determinism` property tests.

use crate::generator::GenerationStats;
use crate::sink::TupleSink;
use crate::stream::TupleStream;
use hydra_catalog::schema::Table;
use hydra_summary::summary::RelationSummary;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Splits a relation's row space into balanced, contiguous shards.
///
/// ```
/// use hydra_datagen::shard::ShardPlanner;
///
/// let plan = ShardPlanner::new(4).plan(10);
/// assert_eq!(plan, vec![0..3, 3..6, 6..8, 8..10]);
/// // Never more shards than rows, never an empty shard.
/// assert_eq!(ShardPlanner::new(8).plan(3).len(), 3);
/// assert!(ShardPlanner::new(4).plan(0).is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlanner {
    shards: usize,
}

impl ShardPlanner {
    /// A planner targeting `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardPlanner {
            shards: shards.max(1),
        }
    }

    /// The target shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Plans shards over the full row space `[0, total_rows)`.
    pub fn plan(&self, total_rows: u64) -> Vec<Range<u64>> {
        Self::split(0..total_rows, self.shards)
    }

    /// Splits an arbitrary row range into up to `shards` balanced,
    /// contiguous, non-overlapping sub-ranges covering it exactly.  Sub-range
    /// lengths differ by at most one; empty sub-ranges are never produced, so
    /// fewer than `shards` ranges come back when the range is shorter than
    /// the shard count (and none at all for an empty range).
    pub fn split(range: Range<u64>, shards: usize) -> Vec<Range<u64>> {
        let len = range.end.saturating_sub(range.start);
        let n = (shards.max(1) as u64).min(len);
        let mut out = Vec::with_capacity(n as usize);
        if n == 0 {
            return out;
        }
        let base = len / n;
        let remainder = len % n;
        let mut lo = range.start;
        for i in 0..n {
            let size = base + u64::from(i < remainder);
            out.push(lo..lo + size);
            lo += size;
        }
        debug_assert_eq!(lo, range.end);
        out
    }
}

/// The outcome of one shard of a sharded generation run.
#[derive(Debug)]
pub struct ShardOutcome<S> {
    /// Shard position in the plan (concatenation order).
    pub index: usize,
    /// The row range this shard regenerated.
    pub range: Range<u64>,
    /// The caller-provided sink, holding whatever it accumulated.
    pub sink: S,
    /// Per-shard generation statistics.
    pub stats: GenerationStats,
}

/// The outcome of a whole sharded generation run, shards in plan order.
#[derive(Debug)]
pub struct ShardedRun<S> {
    /// Relation that was generated.
    pub table: String,
    /// Per-shard outcomes, in concatenation (row-range) order.
    pub shards: Vec<ShardOutcome<S>>,
    /// Wall-clock duration of the whole run (threads included).
    pub elapsed: std::time::Duration,
}

impl<S> ShardedRun<S> {
    /// Total tuples produced across shards.
    pub fn total_rows(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.rows).sum()
    }

    /// Aggregate throughput in rows per second over the run's wall clock.
    pub fn achieved_rows_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_rows() as f64 / secs
    }

    /// Consumes the run, returning the sinks in concatenation order.
    pub fn into_sinks(self) -> Vec<S> {
        self.shards.into_iter().map(|s| s.sink).collect()
    }

    /// Aggregate statistics of the run (rows summed, wall-clock elapsed).
    pub fn aggregate_stats(&self) -> GenerationStats {
        GenerationStats {
            table: self.table.clone(),
            rows: self.total_rows(),
            elapsed: self.elapsed,
            achieved_rows_per_sec: self.achieved_rows_per_sec(),
            target_rows_per_sec: None,
            governor_sleep: std::time::Duration::ZERO,
        }
    }
}

/// Streams every planned shard of `summary` on its own thread into a sink
/// from `sink_factory` (called with the shard index and row range, from the
/// shard's thread).  Shard outputs concatenated in plan order are
/// bit-identical to the sequential full stream.
pub fn run_sharded<S, F>(
    table: &Table,
    summary: &RelationSummary,
    shards: usize,
    sink_factory: F,
) -> ShardedRun<S>
where
    S: TupleSink + Send,
    F: Fn(usize, Range<u64>) -> S + Sync,
{
    let started = Instant::now();
    let plan = ShardPlanner::new(shards).plan(summary.total_rows);
    // One index build for the whole run; every shard seeks through it.
    let index = summary.block_index();
    let index = &index;
    let sink_factory = &sink_factory;
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .into_iter()
            .enumerate()
            .map(|(shard_index, range)| {
                scope.spawn(move || {
                    let shard_started = Instant::now();
                    let mut sink = sink_factory(shard_index, range.clone());
                    let mut stream =
                        TupleStream::with_range_using(table, summary, index, range.clone());
                    sink.begin(table, stream.remaining());
                    // Each shard owns its sink and feeds it whole columnar
                    // blocks: sinks that exploit the block-constant structure
                    // do O(1) work per block, everything else expands through
                    // the bit-identical `write_block` default.
                    let mut rows = 0u64;
                    while let Some(block) = stream.next_block(u64::MAX) {
                        let n = sink.write_block(&block);
                        rows += n;
                        if n < block.len() {
                            break;
                        }
                    }
                    sink.finish();
                    let elapsed = shard_started.elapsed();
                    let secs = elapsed.as_secs_f64();
                    ShardOutcome {
                        index: shard_index,
                        range,
                        sink,
                        stats: GenerationStats {
                            table: table.name.clone(),
                            rows,
                            elapsed,
                            achieved_rows_per_sec: if secs > 0.0 {
                                rows as f64 / secs
                            } else {
                                0.0
                            },
                            target_rows_per_sec: None,
                            governor_sleep: Duration::ZERO,
                        },
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    ShardedRun {
        table: table.name.clone(),
        shards: outcomes,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};
    use hydra_engine::row::Row;
    use std::collections::BTreeMap;

    #[test]
    fn planner_balances_and_covers() {
        for (total, shards) in [(10u64, 4usize), (963, 7), (5, 5), (1, 3), (100, 1)] {
            let plan = ShardPlanner::new(shards).plan(total);
            assert_eq!(plan.len(), shards.min(total as usize));
            // Coverage: contiguous from 0 to total.
            let mut expected_lo = 0;
            for range in &plan {
                assert_eq!(range.start, expected_lo);
                assert!(range.end > range.start, "empty shard in {plan:?}");
                expected_lo = range.end;
            }
            assert_eq!(expected_lo, total);
            // Balance: sizes differ by at most one.
            let sizes: Vec<u64> = plan.iter().map(|r| r.end - r.start).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "unbalanced plan {plan:?}");
        }
    }

    #[test]
    fn planner_edge_cases() {
        assert!(ShardPlanner::new(4).plan(0).is_empty());
        assert_eq!(ShardPlanner::new(0).shards(), 1);
        assert_eq!(ShardPlanner::new(0).plan(10), vec![0..10]);
        assert_eq!(ShardPlanner::split(5..5, 3), vec![]);
        assert_eq!(ShardPlanner::split(7..10, 2), vec![7..9, 9..10]);
    }

    fn fixture() -> (hydra_catalog::schema::Schema, RelationSummary) {
        let schema = SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
            })
            .build()
            .unwrap();
        let mut summary = RelationSummary::new("item", Some("i_item_sk".to_string()));
        for (count, manager) in [(917u64, 40i64), (21, 91), (25, 0)] {
            let mut v = BTreeMap::new();
            v.insert("i_manager_id".to_string(), Value::Integer(manager));
            summary.push_row(count, v);
        }
        (schema, summary)
    }

    #[test]
    fn sharded_run_concatenates_bit_identically() {
        let (schema, summary) = fixture();
        let table = schema.table("item").unwrap();
        let sequential: Vec<Row> = TupleStream::new(table, &summary).collect();
        for shards in [1, 2, 4, 7, 963, 2000] {
            let run = run_sharded(table, &summary, shards, |_, _| CollectSink::new());
            assert_eq!(run.total_rows(), summary.total_rows);
            let concatenated: Vec<Row> = run
                .into_sinks()
                .into_iter()
                .flat_map(|sink| sink.rows)
                .collect();
            assert_eq!(concatenated, sequential, "{shards} shards");
        }
    }

    #[test]
    fn sharded_run_reports_per_shard_stats() {
        let (schema, summary) = fixture();
        let table = schema.table("item").unwrap();
        let run = run_sharded(table, &summary, 4, |_, _| CollectSink::new());
        assert_eq!(run.table, "item");
        assert_eq!(run.shards.len(), 4);
        for (i, shard) in run.shards.iter().enumerate() {
            assert_eq!(shard.index, i);
            assert_eq!(shard.stats.rows, shard.range.end - shard.range.start);
            assert_eq!(shard.stats.rows, shard.sink.rows.len() as u64);
        }
        let aggregate = run.aggregate_stats();
        assert_eq!(aggregate.rows, 963);
        assert!(run.achieved_rows_per_sec() > 0.0);
    }

    #[test]
    fn factory_sees_shard_index_and_range() {
        let (schema, summary) = fixture();
        let table = schema.table("item").unwrap();
        let run = run_sharded(table, &summary, 3, |index, range| {
            // Runs on the shard thread with the shard's plan entry.
            assert!(index < 3);
            assert!(range.start < range.end && range.end <= 963);
            CollectSink::new()
        });
        assert_eq!(run.shards.len(), 3);
    }
}
