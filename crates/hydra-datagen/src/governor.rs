//! Generation-velocity regulation.
//!
//! The vendor screen of the original demo exposes a slider that sets the
//! desired generation velocity in rows per second.  The [`VelocityGovernor`]
//! implements that control: before each tuple (or batch of tuples) is
//! released, the governor compares how many tuples *should* have been emitted
//! by now against how many actually were, and sleeps for the difference.

use std::time::{Duration, Instant};

/// Paces tuple emission to a target rate.
#[derive(Debug, Clone)]
pub struct VelocityGovernor {
    /// Target rate in rows per second; `None` = unthrottled.
    target_rows_per_sec: Option<f64>,
    /// Statistics origin: [`elapsed`](Self::elapsed) and
    /// [`achieved_rate`](Self::achieved_rate) always measure from here.
    started: Instant,
    /// Pacing origin.  Normally equal to `started`, but re-anchored forward
    /// after a stall so the schedule never owes more than
    /// [`MAX_CATCHUP_SECS`](Self::MAX_CATCHUP_SECS) worth of catch-up tuples.
    anchor: Instant,
    emitted: u64,
    slept: Duration,
}

impl VelocityGovernor {
    /// Smallest accepted target rate, matching the wire-protocol validation
    /// (`rows_per_sec must be a finite rate >= 0.001`).
    pub const MIN_RATE: f64 = 1e-3;

    /// A governor with the given target velocity (rows/second).
    ///
    /// # Panics
    ///
    /// Panics unless `rows_per_sec` is finite and at least
    /// [`MIN_RATE`](Self::MIN_RATE) — the same validation the wire path
    /// applies, so a zero/subnormal/NaN rate fails loudly at construction
    /// instead of turning every pace call into a 60 s sleep.
    pub fn with_rate(rows_per_sec: f64) -> Self {
        assert!(
            rows_per_sec.is_finite() && rows_per_sec >= Self::MIN_RATE,
            "rows_per_sec must be a finite rate >= 0.001, got {rows_per_sec}"
        );
        let now = Instant::now();
        VelocityGovernor {
            target_rows_per_sec: Some(rows_per_sec),
            started: now,
            anchor: now,
            emitted: 0,
            slept: Duration::ZERO,
        }
    }

    /// An unthrottled governor (generation proceeds at full speed).
    pub fn unthrottled() -> Self {
        let now = Instant::now();
        VelocityGovernor {
            target_rows_per_sec: None,
            started: now,
            anchor: now,
            emitted: 0,
            slept: Duration::ZERO,
        }
    }

    /// The configured target rate, if any.
    pub fn target_rate(&self) -> Option<f64> {
        self.target_rows_per_sec
    }

    /// Longest single sleep `pace` will take (pathologically small target
    /// rates otherwise turn into effectively-infinite sleeps, and a
    /// non-finite deadline would panic `Duration::from_secs_f64`).
    const MAX_PACE_SLEEP_SECS: f64 = 60.0;

    /// Largest emission deficit the schedule will try to catch up on.  After
    /// a stall (reactor `AwaitDrain` park, slow peer, long LP pause) the
    /// governor would otherwise consider *every* tuple since the stall start
    /// due at once and release an unbounded burst; instead the pacing anchor
    /// is moved forward so at most one second's worth of budget is released.
    pub const MAX_CATCHUP_SECS: f64 = 1.0;

    /// Re-anchors the pacing origin when the schedule has fallen more than
    /// [`MAX_CATCHUP_SECS`](Self::MAX_CATCHUP_SECS) behind, capping the
    /// post-stall burst.  Leaves `started` (the statistics origin) untouched.
    fn clamp_catchup(&mut self) {
        let Some(rate) = self.target_rows_per_sec else {
            return;
        };
        let due_at = self.emitted as f64 / rate;
        let deficit = self.anchor.elapsed().as_secs_f64() - due_at;
        if deficit > Self::MAX_CATCHUP_SECS {
            self.anchor += Duration::from_secs_f64(deficit - Self::MAX_CATCHUP_SECS);
        }
    }

    /// Records that `n` tuples are about to be emitted and sleeps long enough
    /// to keep the emission rate at (or below) the target.
    pub fn pace(&mut self, n: u64) {
        self.note(n);
        if let Some(wait) = self.delay_for(0) {
            self.slept += wait;
            std::thread::sleep(wait);
        }
    }

    /// Total time [`pace`](Self::pace) has slept so far (the throttling
    /// cost the observability layer reports as governor sleep).  Cooperative
    /// callers that schedule [`delay_for`](Self::delay_for) waits elsewhere
    /// account those with [`note_slept`](Self::note_slept).
    pub fn slept(&self) -> Duration {
        self.slept
    }

    /// Accounts a wait served outside [`pace`](Self::pace) (e.g. on a
    /// reactor timer wheel) so [`slept`](Self::slept) stays meaningful for
    /// cooperative callers.
    pub fn note_slept(&mut self, wait: Duration) {
        self.slept += wait;
    }

    /// Records that `n` tuples were emitted **without sleeping** — the
    /// cooperative half of [`pace`](Self::pace) for event-loop callers that
    /// must not block a worker thread.  Pair with [`delay_for`](Self::delay_for)
    /// (or [`budget`](Self::budget)) to schedule the wait elsewhere, e.g. on
    /// a reactor timer wheel.
    pub fn note(&mut self, n: u64) {
        self.emitted += n;
    }

    /// How long emission must pause before `extra` *more* tuples (beyond
    /// those already noted) are due under the target rate.  `None` when
    /// unthrottled or when that many tuples are already due now.  Capped at
    /// the same 60 s bound as [`pace`](Self::pace)'s sleep, and the schedule
    /// forgives all but the last second of a stall (see
    /// [`MAX_CATCHUP_SECS`](Self::MAX_CATCHUP_SECS)).
    pub fn delay_for(&mut self, extra: u64) -> Option<Duration> {
        self.clamp_catchup();
        let rate = self.target_rows_per_sec?;
        let due = (self.emitted + extra) as f64 / rate;
        let elapsed = self.anchor.elapsed().as_secs_f64();
        let wait = due - elapsed;
        if wait > 0.0 {
            Some(Duration::from_secs_f64(wait.min(Self::MAX_PACE_SLEEP_SECS)))
        } else {
            None
        }
    }

    /// How many tuples may be emitted *right now* without overshooting the
    /// target rate.  `None` means unthrottled (no budget at all).  After a
    /// stall the budget is capped at roughly one second's worth of tuples
    /// rather than everything "missed" during the stall.
    pub fn budget(&mut self) -> Option<u64> {
        self.clamp_catchup();
        let rate = self.target_rows_per_sec?;
        let due = (rate * self.anchor.elapsed().as_secs_f64()).floor() as u64;
        Some(due.saturating_sub(self.emitted))
    }

    /// Number of tuples emitted through this governor.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Time since the governor was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The achieved rate so far (rows per second).
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.emitted as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unthrottled_governor_never_sleeps() {
        let mut g = VelocityGovernor::unthrottled();
        let start = Instant::now();
        for _ in 0..10_000 {
            g.pace(1);
        }
        assert!(start.elapsed() < Duration::from_millis(500));
        assert_eq!(g.emitted(), 10_000);
        assert!(g.target_rate().is_none());
    }

    #[test]
    fn throttled_governor_respects_target_rate() {
        // 1000 rows at 10_000 rows/s should take ~100 ms.
        let mut g = VelocityGovernor::with_rate(10_000.0);
        for _ in 0..10 {
            g.pace(100);
        }
        let elapsed = g.elapsed();
        assert!(
            elapsed >= Duration::from_millis(90),
            "generation finished too fast: {elapsed:?}"
        );
        let achieved = g.achieved_rate();
        assert!(
            achieved <= 11_500.0,
            "achieved rate {achieved:.0} exceeds the target by more than 15%"
        );
    }

    #[test]
    fn cooperative_api_matches_pace_semantics() {
        // note() + delay_for(0) is pace() without the sleep.
        let mut g = VelocityGovernor::with_rate(1000.0);
        g.note(100);
        let wait = g
            .delay_for(0)
            .expect("100 rows at 1000/s are ahead of schedule");
        assert!(wait <= Duration::from_millis(100));
        assert!(wait >= Duration::from_millis(50), "got {wait:?}");
        // Unthrottled: no delay, no budget.
        let mut g = VelocityGovernor::unthrottled();
        g.note(1_000_000);
        assert!(g.delay_for(0).is_none());
        assert!(g.budget().is_none());
    }

    #[test]
    fn budget_counts_due_tuples() {
        let mut g = VelocityGovernor::with_rate(10_000.0);
        assert_eq!(g.budget(), Some(0), "nothing is due at t=0");
        std::thread::sleep(Duration::from_millis(20));
        let due = g.budget().expect("throttled governor has a budget");
        assert!(due >= 100, "~200 rows should be due after 20 ms, got {due}");
        g.note(due);
        let after = g.budget().unwrap();
        assert!(after <= due, "noting the emission consumes the budget");
    }

    #[test]
    fn stall_catchup_burst_is_capped() {
        // 2 s stall at 1000 rows/s: the naive schedule would owe ~2000 tuples
        // at once; the re-anchored schedule releases at most ~1.25x the
        // per-second budget.
        let mut g = VelocityGovernor::with_rate(1000.0);
        std::thread::sleep(Duration::from_secs(2));
        let burst = g.budget().expect("throttled governor has a budget");
        assert!(
            burst <= 1250,
            "2 s stall released {burst} tuples in one call (> 1.25x the 1000/s budget)"
        );
        assert!(
            burst >= 800,
            "catch-up cap should still allow ~1 s of budget, got {burst}"
        );
        // Statistics keep measuring from construction, not from the anchor.
        assert!(g.elapsed() >= Duration::from_secs(2));
        // Once the burst is consumed, pacing resumes at the target rate.
        g.note(burst);
        let wait = g.delay_for(100).expect("next 100 tuples must be paced");
        assert!(wait <= Duration::from_millis(150), "got {wait:?}");
    }

    #[test]
    fn with_rate_accepts_the_wire_minimum() {
        let g = VelocityGovernor::with_rate(VelocityGovernor::MIN_RATE);
        assert_eq!(g.target_rate(), Some(1e-3));
    }

    #[test]
    #[should_panic(expected = "finite rate >= 0.001")]
    fn with_rate_rejects_zero() {
        let _ = VelocityGovernor::with_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "finite rate >= 0.001")]
    fn with_rate_rejects_subnormal() {
        let _ = VelocityGovernor::with_rate(f64::MIN_POSITIVE);
    }

    #[test]
    #[should_panic(expected = "finite rate >= 0.001")]
    fn with_rate_rejects_nan() {
        let _ = VelocityGovernor::with_rate(f64::NAN);
    }

    #[test]
    fn achieved_rate_reflects_emission() {
        let mut g = VelocityGovernor::unthrottled();
        g.pace(500);
        std::thread::sleep(Duration::from_millis(20));
        let rate = g.achieved_rate();
        assert!(rate > 0.0);
        assert!(rate <= 500.0 / 0.02 + 1.0);
    }
}
