//! Tuple sinks — the pluggable consumer end of dynamic generation.
//!
//! The paper's generator feeds regenerated tuples straight into query
//! execution; real deployments also want to count them, materialize them, or
//! export them. [`TupleSink`] abstracts the consumer so
//! [`crate::generator::DynamicGenerator::stream_into`] (and the session
//! façade's `stream_table`) can drive any of these — including
//! velocity-regulated streaming — through one code path.

use crate::stream::RowBlock;
use hydra_catalog::schema::Table;
use hydra_engine::row::Row;
use std::fmt::Write as _;
use std::io::Write;

/// A consumer of regenerated tuples.
///
/// Implement it to plug any destination into the generation pipeline — the
/// driver calls `begin` once, `accept` per tuple, `finish` once.  Sharded
/// generation builds one sink per shard, so a sink never needs to be
/// thread-safe; it only has to be `Send` to travel to its shard's thread.
///
/// ```
/// use hydra_datagen::sink::TupleSink;
/// use hydra_engine::row::Row;
///
/// /// Tracks the widest row seen (a custom metric sink).
/// #[derive(Default)]
/// struct WidestRow(usize);
///
/// impl TupleSink for WidestRow {
///     fn accept(&mut self, row: Row) {
///         self.0 = self.0.max(row.len());
///     }
/// }
///
/// use hydra_catalog::types::Value;
/// let mut sink = WidestRow::default();
/// sink.accept(vec![Value::Integer(7), Value::Null]);
/// assert_eq!(sink.0, 2);
/// ```
pub trait TupleSink {
    /// Called once before the first tuple of a relation.
    fn begin(&mut self, _table: &Table, _expected_rows: u64) {}

    /// Consumes one tuple.
    fn accept(&mut self, row: Row);

    /// Consumes one columnar block: `block.len()` consecutive tuples that
    /// share the block's constant non-pk values, with primary keys running
    /// over `block.pk_range()`.
    ///
    /// Returns how many tuples the sink consumed — `block.len()` unless the
    /// sink [aborted](Self::aborted) part-way, so stream drivers keep exact
    /// row accounting.
    ///
    /// The default implementation expands the block into individual
    /// [`accept`](Self::accept) calls (checking [`aborted`](Self::aborted)
    /// between tuples, like the row-at-a-time drivers do), so every existing
    /// sink behaves bit-identically when driven by blocks.  Sinks that can
    /// exploit the block-constant structure override this to do O(1) work
    /// per block instead of O(rows).
    fn write_block(&mut self, block: &RowBlock<'_>) -> u64 {
        let mut accepted = 0;
        for row in block.rows() {
            if self.aborted() {
                break;
            }
            self.accept(row);
            accepted += 1;
        }
        accepted
    }

    /// True when the sink can no longer deliver tuples (e.g. a wire sink
    /// whose peer disconnected).  Stream drivers poll this between tuples
    /// and stop generating early instead of producing rows nobody can
    /// receive; `finish` is still called.  Defaults to `false` (in-memory
    /// sinks never die).
    fn aborted(&self) -> bool {
        false
    }

    /// Called once after the last tuple.
    fn finish(&mut self) {}
}

/// Counts tuples and drops them (velocity measurements, smoke tests).
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    /// Number of tuples accepted.
    pub rows: u64,
}

impl CountingSink {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TupleSink for CountingSink {
    fn accept(&mut self, row: Row) {
        // Keep the generated tuple alive past the optimizer so throughput
        // numbers measure real generation work.
        std::hint::black_box(&row);
        self.rows += 1;
    }

    fn write_block(&mut self, block: &RowBlock<'_>) -> u64 {
        // O(1) per block: the count is the block length; the template stands
        // in for the rows the row-at-a-time path would have materialized.
        std::hint::black_box(block.template());
        self.rows += block.len();
        block.len()
    }
}

/// Collects tuples into memory (tests, materialization).
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    /// The accepted tuples, in generation order.
    pub rows: Vec<Row>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TupleSink for CollectSink {
    fn begin(&mut self, _table: &Table, expected_rows: u64) {
        self.rows.reserve(expected_rows.min(1 << 20) as usize);
    }

    fn accept(&mut self, row: Row) {
        self.rows.push(row);
    }
}

/// Writes tuples as CSV to any [`Write`] target (export mode).
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
    /// I/O errors encountered while writing (checked by `finish`/caller).
    pub error: Option<std::io::Error>,
    wrote_header: bool,
}

impl<W: Write> CsvSink<W> {
    /// A sink writing to `writer`, starting with a header row.
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            error: None,
            wrote_header: false,
        }
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn write_line(&mut self, fields: impl Iterator<Item = String>) {
        if self.error.is_some() {
            return;
        }
        let line = fields.collect::<Vec<_>>().join(",");
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }
}

/// Quotes a CSV field when it contains separators or quotes.
fn csv_field(value: &hydra_catalog::types::Value) -> String {
    let text = value.to_string();
    if text.contains([',', '"', '\n']) {
        format!("\"{}\"", text.replace('"', "\"\""))
    } else {
        text
    }
}

impl<W: Write> TupleSink for CsvSink<W> {
    fn begin(&mut self, table: &Table, _expected_rows: u64) {
        if !self.wrote_header {
            let names: Vec<String> = table.columns().iter().map(|c| c.name.clone()).collect();
            self.write_line(names.into_iter());
            self.wrote_header = true;
        }
    }

    fn accept(&mut self, row: Row) {
        self.write_line(row.iter().map(csv_field));
    }

    fn write_block(&mut self, block: &RowBlock<'_>) -> u64 {
        // A CSV sink never aborts: after a write error every accept becomes
        // a no-op, so the whole block counts as consumed either way.
        let consumed = block.len();
        if self.error.is_some() {
            return consumed;
        }
        // Encode the constant fields once per block; each line is then the
        // cached segments with the pk digits spliced in between.  An
        // auto-numbered pk renders as bare digits, which csv_field never
        // quotes, so the splice is byte-identical to the accept path.
        let template = block.template();
        let auto = block.auto_columns();
        let mut segments: Vec<String> = vec![String::new()];
        for (i, value) in template.iter().enumerate() {
            if i > 0 {
                segments
                    .last_mut()
                    .expect("segments is never empty")
                    .push(',');
            }
            if auto.contains(&i) {
                segments.push(String::new());
            } else {
                segments
                    .last_mut()
                    .expect("segments is never empty")
                    .push_str(&csv_field(value));
            }
        }
        let mut line = String::new();
        for pk in block.pk_range() {
            line.clear();
            line.push_str(&segments[0]);
            for segment in &segments[1..] {
                let _ = write!(line, "{}", pk as i64);
                line.push_str(segment);
            }
            if let Err(e) = writeln!(self.writer, "{line}") {
                self.error = Some(e);
                break;
            }
        }
        consumed
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};

    fn table() -> Table {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone()
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        sink.begin(&table(), 2);
        sink.accept(vec![Value::Integer(0), Value::str("Books")]);
        sink.accept(vec![Value::Integer(1), Value::str("Music")]);
        sink.finish();
        assert_eq!(sink.rows, 2);
    }

    #[test]
    fn collect_sink_preserves_order() {
        let mut sink = CollectSink::new();
        sink.accept(vec![Value::Integer(7)]);
        sink.accept(vec![Value::Integer(9)]);
        assert_eq!(sink.rows[0][0], Value::Integer(7));
        assert_eq!(sink.rows[1][0], Value::Integer(9));
    }

    #[test]
    fn block_overrides_match_row_at_a_time() {
        use crate::stream::TupleStream;
        use hydra_summary::summary::RelationSummary;
        use std::collections::BTreeMap;

        let t = table();
        let mut summary = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v = BTreeMap::new();
        v.insert("i_category".to_string(), Value::str("has,comma"));
        summary.push_row(12, v);
        summary.push_row(3, BTreeMap::new());

        // CSV: block splice vs per-row accept, byte for byte.
        let mut by_rows = CsvSink::new(Vec::new());
        by_rows.begin(&t, 15);
        for row in TupleStream::new(&t, &summary) {
            by_rows.accept(row);
        }
        by_rows.finish();
        let mut by_blocks = CsvSink::new(Vec::new());
        by_blocks.begin(&t, 15);
        let mut stream = TupleStream::new(&t, &summary);
        while let Some(block) = stream.next_block(5) {
            by_blocks.write_block(&block);
        }
        by_blocks.finish();
        assert!(by_rows.error.is_none() && by_blocks.error.is_none());
        assert_eq!(by_rows.into_inner(), by_blocks.into_inner());

        // Counting: O(1) block accounting matches the row count.
        let mut count = CountingSink::new();
        let mut stream = TupleStream::new(&t, &summary);
        while let Some(block) = stream.next_block(u64::MAX) {
            count.write_block(&block);
        }
        assert_eq!(count.rows, 15);
    }

    #[test]
    fn csv_sink_writes_header_and_escapes() {
        let mut sink = CsvSink::new(Vec::new());
        let t = table();
        sink.begin(&t, 2);
        sink.accept(vec![Value::Integer(0), Value::str("plain")]);
        sink.accept(vec![Value::Integer(1), Value::str("has,comma")]);
        sink.finish();
        assert!(sink.error.is_none());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "i_item_sk,i_category");
        assert_eq!(lines[1], "0,plain");
        assert_eq!(lines[2], "1,\"has,comma\"");
    }
}
