//! Lazy expansion of a relation summary into tuples, with random access.
//!
//! A [`TupleStream`] regenerates a relation either in full or over an
//! arbitrary row range `[lo, hi)`.  Range streams seek straight to the first
//! summary block of the range through the summary's
//! [`PkBlockIndex`] — O(log B) in the
//! number of summary rows, never replaying from row 0 — which is the
//! primitive behind sharded parallel generation
//! ([`crate::shard`]): the concatenation of range streams over a partition of
//! `[0, total)` is bit-identical to the full stream.

use hydra_catalog::schema::Table;
use hydra_catalog::types::Value;
use hydra_engine::row::Row;
use hydra_summary::index::PkBlockIndex;
use hydra_summary::summary::RelationSummary;
use std::ops::Range;

/// Sentinel for "no template built yet" (no summary can have this many rows
/// in memory).
const NO_TEMPLATE: usize = usize::MAX;

/// An iterator that regenerates the tuples of one relation from its summary.
///
/// Tuples are produced in deterministic order: summary rows in order, each
/// expanded into `#TUPLES` tuples; the primary key is the running tuple index
/// (auto-number).  All tuples of a summary row share its value vector.
///
/// A stream created by [`TupleStream::with_range`] produces exactly the
/// tuples whose primary keys fall in the range, identical to the
/// corresponding slice of the full stream.
///
/// ```
/// use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
/// use hydra_catalog::types::DataType;
/// use hydra_datagen::stream::TupleStream;
/// use hydra_summary::summary::RelationSummary;
/// use std::collections::BTreeMap;
///
/// let schema = SchemaBuilder::new("db")
///     .table("item", |t| {
///         t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
///     })
///     .build()
///     .unwrap();
/// let table = schema.table("item").unwrap();
/// let mut summary = RelationSummary::new("item", Some("i_item_sk".to_string()));
/// summary.push_row(1_000, BTreeMap::new());
///
/// let full: Vec<_> = TupleStream::new(table, &summary).collect();
/// let slice: Vec<_> = TupleStream::with_range(table, &summary, 250..260).collect();
/// assert_eq!(slice, full[250..260]);
/// ```
pub struct TupleStream<'a> {
    table: &'a Table,
    summary: &'a RelationSummary,
    /// Index of the current summary row.
    row_index: usize,
    /// How many tuples of the current summary row have been emitted (counted
    /// from the row's own start, so a seek sets this to the in-block offset).
    emitted_in_row: u64,
    /// Primary key of the next tuple (absolute row position).
    next_pk: u64,
    /// First row position of the stream's range.
    start: u64,
    /// One past the last row position of the stream's range.
    end: u64,
    /// Cached column layout: for each table column, where its value comes from.
    layout: Vec<ColumnSource>,
    /// Positions in `layout` that hold the auto-numbered primary key.
    auto_columns: Vec<usize>,
    /// Prebuilt row for the current summary block: summary values are cloned
    /// once per block, then each tuple clones the template and patches only
    /// the auto-number columns (the generation hot path).
    template: Row,
    /// Which summary row `template` was built for (`NO_TEMPLATE` = none).
    template_block: usize,
}

/// Where a generated column's value comes from.
enum ColumnSource {
    /// The auto-numbered primary key.
    AutoNumber,
    /// A value from the summary row (by column name).
    Summary(String),
}

/// A maximal run of consecutive tuples that share one summary block.
///
/// Within a block every non-pk column is constant (the paper's core
/// structural invariant); the primary key is the absolute row position, so
/// the whole block is described by a template row plus a pk range.  Sinks
/// that override [`crate::sink::TupleSink::write_block`] exploit this to do
/// O(1) work per block; [`RowBlock::rows`] expands it back into the exact
/// tuple sequence [`TupleStream::next`] would have produced.
#[derive(Debug)]
pub struct RowBlock<'a> {
    /// The block's row with auto-number slots holding an `Integer(0)`
    /// placeholder.
    template: &'a Row,
    /// Column positions that hold the auto-numbered primary key.
    auto_columns: &'a [usize],
    /// Absolute row positions `[start, end)` this block covers.
    pk_range: Range<u64>,
    /// Index of the backing summary row (the block ordinal).
    ordinal: usize,
}

impl RowBlock<'_> {
    /// Number of tuples in the block.
    pub fn len(&self) -> u64 {
        self.pk_range.end - self.pk_range.start
    }

    /// Whether the block holds no tuples (never true for blocks produced by
    /// [`TupleStream::next_block`]).
    pub fn is_empty(&self) -> bool {
        self.pk_range.is_empty()
    }

    /// Absolute row positions `[start, end)` covered by this block.
    pub fn pk_range(&self) -> Range<u64> {
        self.pk_range.clone()
    }

    /// Index of the backing summary row.  Two consecutive blocks with the
    /// same ordinal (split by a range/batch boundary) share their template,
    /// which is what the wire-frame template caches key on.
    pub fn ordinal(&self) -> usize {
        self.ordinal
    }

    /// The constant row shared by every tuple of the block; positions listed
    /// in [`auto_columns`](Self::auto_columns) hold an `Integer(0)`
    /// placeholder to be patched with the pk.
    pub fn template(&self) -> &Row {
        self.template
    }

    /// Column positions in [`template`](Self::template) that carry the
    /// auto-numbered primary key.
    pub fn auto_columns(&self) -> &[usize] {
        self.auto_columns
    }

    /// Expands the block into its tuples, bit-identical to the rows
    /// [`TupleStream::next`] yields over the same pk range.
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        self.pk_range.clone().map(move |pk| {
            let mut row = self.template.clone();
            for &i in self.auto_columns {
                row[i] = Value::Integer(pk as i64);
            }
            row
        })
    }
}

impl<'a> TupleStream<'a> {
    /// Creates a stream over one full relation (rows `[0, total)`).
    pub fn new(table: &'a Table, summary: &'a RelationSummary) -> Self {
        // A full stream starts at block 0 — no index needed for the seek.
        Self::at_position(table, summary, 0, 0, 0, summary.total_rows)
    }

    /// Creates a stream over the row range `rows` (clamped to the relation's
    /// `[0, total)`), seeking to the first block of the range in O(log B).
    ///
    /// When constructing many range streams over the same summary (sharding),
    /// build the index once and use [`TupleStream::with_range_using`].
    pub fn with_range(table: &'a Table, summary: &'a RelationSummary, rows: Range<u64>) -> Self {
        if rows.start == 0 {
            // Seeking to 0 is trivial; skip building the index.
            return Self::at_position(table, summary, 0, 0, 0, rows.end.min(summary.total_rows));
        }
        let index = summary.block_index();
        Self::with_range_using(table, summary, &index, rows)
    }

    /// Like [`TupleStream::with_range`], but seeks through a prebuilt
    /// [`PkBlockIndex`] (only used during construction, not retained).
    pub fn with_range_using(
        table: &'a Table,
        summary: &'a RelationSummary,
        index: &PkBlockIndex,
        rows: Range<u64>,
    ) -> Self {
        let total = summary.total_rows;
        let start = rows.start.min(total);
        let end = rows.end.clamp(start, total);
        let (row_index, offset) = match index.locate(start) {
            Some(pos) => (pos.block, pos.offset),
            // start == total: an exhausted stream.
            None => (summary.rows.len(), 0),
        };
        Self::at_position(table, summary, row_index, offset, start, end)
    }

    fn at_position(
        table: &'a Table,
        summary: &'a RelationSummary,
        row_index: usize,
        emitted_in_row: u64,
        start: u64,
        end: u64,
    ) -> Self {
        let pk = summary
            .pk_column
            .clone()
            .or_else(|| table.primary_key_column().map(str::to_string));
        let layout: Vec<ColumnSource> = table
            .columns()
            .iter()
            .map(|c| {
                if Some(c.name.as_str()) == pk.as_deref() {
                    ColumnSource::AutoNumber
                } else {
                    ColumnSource::Summary(c.name.clone())
                }
            })
            .collect();
        let auto_columns = layout
            .iter()
            .enumerate()
            .filter(|(_, src)| matches!(src, ColumnSource::AutoNumber))
            .map(|(i, _)| i)
            .collect();
        TupleStream {
            table,
            summary,
            row_index,
            emitted_in_row,
            next_pk: start,
            start,
            end,
            layout,
            auto_columns,
            template: Row::new(),
            template_block: NO_TEMPLATE,
        }
    }

    /// Rebuilds the per-block template row (one summary lookup + clone per
    /// block instead of per tuple).
    fn rebuild_template(&mut self) {
        let srow = &self.summary.rows[self.row_index];
        self.template = self
            .layout
            .iter()
            .map(|src| match src {
                ColumnSource::AutoNumber => Value::Integer(0),
                ColumnSource::Summary(name) => {
                    srow.values.get(name).cloned().unwrap_or(Value::Null)
                }
            })
            .collect();
        self.template_block = self.row_index;
    }

    /// The row range this stream produces (`0..total` for a full stream).
    pub fn range(&self) -> Range<u64> {
        self.start..self.end
    }

    /// Number of tuples remaining in the stream (correct for range streams:
    /// it counts down from the range length, not from the relation total).
    pub fn remaining(&self) -> u64 {
        self.end - self.next_pk
    }

    /// Number of tuples this stream has emitted so far (relative to the
    /// stream's own start, not to row 0).
    pub fn emitted(&self) -> u64 {
        self.next_pk - self.start
    }

    /// The table being generated.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Produces the next run of up to `max` tuples that share one summary
    /// block, advancing the stream past them.  Returns `None` when the
    /// stream is exhausted (or `max == 0`).
    ///
    /// Interleaving `next_block` with [`next`](Iterator::next) is valid: the
    /// block covers exactly the tuples `next` would have yielded, so
    /// `block.rows()` concatenated across calls is bit-identical to the
    /// row-at-a-time stream.  A block never spans a summary-row boundary and
    /// is clamped to the stream's range, so callers see range/shard splits
    /// as separate blocks with the same [`RowBlock::ordinal`].
    pub fn next_block(&mut self, max: u64) -> Option<RowBlock<'_>> {
        if max == 0 || self.next_pk >= self.end {
            return None;
        }
        // Advance past exhausted summary rows.
        while self.row_index < self.summary.rows.len()
            && self.emitted_in_row >= self.summary.rows[self.row_index].count
        {
            self.row_index += 1;
            self.emitted_in_row = 0;
        }
        if self.row_index >= self.summary.rows.len() {
            return None;
        }
        if self.template_block != self.row_index {
            self.rebuild_template();
        }
        let in_block = self.summary.rows[self.row_index].count - self.emitted_in_row;
        let n = in_block.min(self.end - self.next_pk).min(max);
        let start = self.next_pk;
        self.emitted_in_row += n;
        self.next_pk += n;
        Some(RowBlock {
            template: &self.template,
            auto_columns: &self.auto_columns,
            pk_range: start..start + n,
            ordinal: self.row_index,
        })
    }

    /// Moves up to `max` tuples into `out`, returning how many were produced.
    /// The caller's buffer is reused across calls (drain it between calls);
    /// this is the batched hot path used by the sharded driver.
    pub fn fill_batch(&mut self, out: &mut Vec<Row>, max: usize) -> usize {
        out.reserve(max.min(self.remaining() as usize));
        let mut produced = 0;
        while produced < max {
            match self.next() {
                Some(row) => {
                    out.push(row);
                    produced += 1;
                }
                None => break,
            }
        }
        produced
    }
}

impl Iterator for TupleStream<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.next_pk >= self.end {
            return None;
        }
        // Advance past exhausted summary rows.
        while self.row_index < self.summary.rows.len()
            && self.emitted_in_row >= self.summary.rows[self.row_index].count
        {
            self.row_index += 1;
            self.emitted_in_row = 0;
        }
        if self.row_index >= self.summary.rows.len() {
            return None;
        }
        if self.template_block != self.row_index {
            self.rebuild_template();
        }
        let mut row = self.template.clone();
        for &i in &self.auto_columns {
            row[i] = Value::Integer(self.next_pk as i64);
        }
        self.emitted_in_row += 1;
        self.next_pk += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;
    use std::collections::BTreeMap;

    fn table() -> Table {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
                    .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone()
    }

    fn summary() -> RelationSummary {
        let mut s = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_manager_id".to_string(), Value::Integer(40));
        v1.insert("i_category".to_string(), Value::str("Music"));
        s.push_row(917, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("i_manager_id".to_string(), Value::Integer(91));
        v2.insert("i_category".to_string(), Value::str("Women"));
        s.push_row(21, v2);
        s
    }

    #[test]
    fn stream_expands_summary_rows_with_auto_numbered_pk() {
        let table = table();
        let summary = summary();
        let rows: Vec<Row> = TupleStream::new(&table, &summary).collect();
        assert_eq!(rows.len(), 938);
        // Table 1 pattern: the first tuple of each block starts at the
        // cumulative count.
        assert_eq!(rows[0][0], Value::Integer(0));
        assert_eq!(rows[0][1], Value::Integer(40));
        assert_eq!(rows[0][2], Value::str("Music"));
        assert_eq!(rows[916][0], Value::Integer(916));
        assert_eq!(rows[917][0], Value::Integer(917));
        assert_eq!(rows[917][1], Value::Integer(91));
        assert_eq!(rows[917][2], Value::str("Women"));
    }

    #[test]
    fn stream_accounting() {
        let table = table();
        let summary = summary();
        let mut stream = TupleStream::new(&table, &summary);
        assert_eq!(stream.remaining(), 938);
        assert_eq!(stream.size_hint(), (938, Some(938)));
        stream.next();
        stream.next();
        assert_eq!(stream.emitted(), 2);
        assert_eq!(stream.remaining(), 936);
        assert_eq!(stream.table().name, "item");
        assert_eq!(stream.range(), 0..938);
    }

    #[test]
    fn range_stream_matches_full_stream_slice() {
        let table = table();
        let summary = summary();
        let full: Vec<Row> = TupleStream::new(&table, &summary).collect();
        // Ranges inside one block, straddling the block boundary, and at the
        // extremes.
        for range in [0..0, 0..1, 100..200, 900..930, 916..918, 937..938, 0..938] {
            let slice: Vec<Row> =
                TupleStream::with_range(&table, &summary, range.clone()).collect();
            assert_eq!(
                slice,
                full[range.start as usize..range.end as usize],
                "range {range:?}"
            );
        }
    }

    #[test]
    fn range_stream_accounting_is_range_relative() {
        let table = table();
        let summary = summary();
        let mut stream = TupleStream::with_range(&table, &summary, 900..930);
        assert_eq!(stream.remaining(), 30);
        assert_eq!(stream.size_hint(), (30, Some(30)));
        assert_eq!(stream.emitted(), 0);
        let first = stream.next().unwrap();
        assert_eq!(first[0], Value::Integer(900));
        assert_eq!(stream.emitted(), 1);
        assert_eq!(stream.remaining(), 29);
        assert_eq!(stream.by_ref().count(), 29);
        assert_eq!(stream.remaining(), 0);
        assert_eq!(stream.next(), None);
    }

    #[test]
    fn out_of_bounds_ranges_are_clamped() {
        let table = table();
        let summary = summary();
        assert_eq!(
            TupleStream::with_range(&table, &summary, 930..10_000).count(),
            8
        );
        assert_eq!(
            TupleStream::with_range(&table, &summary, 938..940).count(),
            0
        );
        assert_eq!(
            TupleStream::with_range(&table, &summary, 5_000..6_000).count(),
            0
        );
        let empty = TupleStream::with_range(&table, &summary, 10..10);
        assert_eq!(empty.remaining(), 0);
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn prebuilt_index_seek_matches_internal_seek() {
        let table = table();
        let summary = summary();
        let index = summary.block_index();
        let a: Vec<Row> =
            TupleStream::with_range_using(&table, &summary, &index, 910..920).collect();
        let b: Vec<Row> = TupleStream::with_range(&table, &summary, 910..920).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fill_batch_drains_in_order_and_reuses_buffer() {
        let table = table();
        let summary = summary();
        let full: Vec<Row> = TupleStream::new(&table, &summary).collect();
        let mut stream = TupleStream::new(&table, &summary);
        let mut buffer: Vec<Row> = Vec::new();
        let mut collected: Vec<Row> = Vec::new();
        loop {
            let n = stream.fill_batch(&mut buffer, 100);
            if n == 0 {
                break;
            }
            assert_eq!(buffer.len(), n);
            collected.append(&mut buffer);
        }
        assert_eq!(collected, full);
    }

    #[test]
    fn blocks_expand_to_the_exact_row_stream() {
        let table = table();
        let summary = summary();
        let full: Vec<Row> = TupleStream::new(&table, &summary).collect();
        // Various chunk caps, including ones that split blocks mid-way.
        for max in [1, 7, 100, 917, 938, u64::MAX] {
            let mut stream = TupleStream::new(&table, &summary);
            let mut rows: Vec<Row> = Vec::new();
            let mut ordinals: Vec<usize> = Vec::new();
            while let Some(block) = stream.next_block(max) {
                assert!(!block.is_empty());
                assert_eq!(block.len(), block.rows().count() as u64);
                ordinals.push(block.ordinal());
                rows.extend(block.rows());
            }
            assert_eq!(rows, full, "max {max}");
            assert!(ordinals.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn blocks_never_span_summary_rows() {
        let table = table();
        let summary = summary();
        let mut stream = TupleStream::new(&table, &summary);
        let a = stream.next_block(u64::MAX).unwrap();
        assert_eq!((a.pk_range(), a.ordinal()), (0..917, 0));
        assert_eq!(a.template()[1], Value::Integer(40));
        assert_eq!(a.auto_columns(), &[0]);
        let b = stream.next_block(u64::MAX).unwrap();
        assert_eq!((b.pk_range(), b.ordinal()), (917..938, 1));
        assert!(stream.next_block(u64::MAX).is_none());
    }

    #[test]
    fn next_and_next_block_interleave() {
        let table = table();
        let summary = summary();
        let full: Vec<Row> = TupleStream::new(&table, &summary).collect();
        let mut stream = TupleStream::with_range(&table, &summary, 910..930);
        let mut rows: Vec<Row> = Vec::new();
        rows.push(stream.next().unwrap());
        rows.extend(stream.next_block(5).unwrap().rows());
        rows.push(stream.next().unwrap());
        while let Some(block) = stream.next_block(u64::MAX) {
            rows.extend(block.rows());
        }
        assert_eq!(rows, full[910..930]);
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn missing_summary_values_become_null() {
        let table = table();
        let mut s = RelationSummary::new("item", Some("i_item_sk".to_string()));
        s.push_row(2, BTreeMap::new());
        let rows: Vec<Row> = TupleStream::new(&table, &s).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::Null);
        assert_eq!(rows[1][0], Value::Integer(1));
    }

    #[test]
    fn empty_summary_empty_stream() {
        let table = table();
        let s = RelationSummary::new("item", Some("i_item_sk".to_string()));
        assert_eq!(TupleStream::new(&table, &s).count(), 0);
        assert_eq!(TupleStream::with_range(&table, &s, 0..10).count(), 0);
    }
}
