//! Lazy expansion of a relation summary into tuples.

use hydra_catalog::schema::Table;
use hydra_catalog::types::Value;
use hydra_engine::row::Row;
use hydra_summary::summary::RelationSummary;

/// An iterator that regenerates the tuples of one relation from its summary.
///
/// Tuples are produced in deterministic order: summary rows in order, each
/// expanded into `#TUPLES` tuples; the primary key is the running tuple index
/// (auto-number).  All tuples of a summary row share its value vector.
pub struct TupleStream<'a> {
    table: &'a Table,
    summary: &'a RelationSummary,
    /// Index of the current summary row.
    row_index: usize,
    /// How many tuples of the current summary row have been emitted.
    emitted_in_row: u64,
    /// Total tuples emitted so far (= next primary key).
    emitted_total: u64,
    /// Cached column layout: for each table column, where its value comes from.
    layout: Vec<ColumnSource>,
}

/// Where a generated column's value comes from.
enum ColumnSource {
    /// The auto-numbered primary key.
    AutoNumber,
    /// A value from the summary row (by column name).
    Summary(String),
}

impl<'a> TupleStream<'a> {
    /// Creates a stream over one relation.
    pub fn new(table: &'a Table, summary: &'a RelationSummary) -> Self {
        let pk = summary
            .pk_column
            .clone()
            .or_else(|| table.primary_key_column().map(str::to_string));
        let layout = table
            .columns()
            .iter()
            .map(|c| {
                if Some(c.name.as_str()) == pk.as_deref() {
                    ColumnSource::AutoNumber
                } else {
                    ColumnSource::Summary(c.name.clone())
                }
            })
            .collect();
        TupleStream {
            table,
            summary,
            row_index: 0,
            emitted_in_row: 0,
            emitted_total: 0,
            layout,
        }
    }

    /// Number of tuples remaining in the stream.
    pub fn remaining(&self) -> u64 {
        self.summary.total_rows - self.emitted_total
    }

    /// Number of tuples emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted_total
    }

    /// The table being generated.
    pub fn table(&self) -> &Table {
        self.table
    }
}

impl Iterator for TupleStream<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        // Advance past exhausted summary rows.
        while self.row_index < self.summary.rows.len()
            && self.emitted_in_row >= self.summary.rows[self.row_index].count
        {
            self.row_index += 1;
            self.emitted_in_row = 0;
        }
        if self.row_index >= self.summary.rows.len() {
            return None;
        }
        let srow = &self.summary.rows[self.row_index];
        let row: Row = self
            .layout
            .iter()
            .map(|src| match src {
                ColumnSource::AutoNumber => Value::Integer(self.emitted_total as i64),
                ColumnSource::Summary(name) => {
                    srow.values.get(name).cloned().unwrap_or(Value::Null)
                }
            })
            .collect();
        self.emitted_in_row += 1;
        self.emitted_total += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;
    use std::collections::BTreeMap;

    fn table() -> Table {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
                    .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone()
    }

    fn summary() -> RelationSummary {
        let mut s = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_manager_id".to_string(), Value::Integer(40));
        v1.insert("i_category".to_string(), Value::str("Music"));
        s.push_row(917, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("i_manager_id".to_string(), Value::Integer(91));
        v2.insert("i_category".to_string(), Value::str("Women"));
        s.push_row(21, v2);
        s
    }

    #[test]
    fn stream_expands_summary_rows_with_auto_numbered_pk() {
        let table = table();
        let summary = summary();
        let rows: Vec<Row> = TupleStream::new(&table, &summary).collect();
        assert_eq!(rows.len(), 938);
        // Table 1 pattern: the first tuple of each block starts at the
        // cumulative count.
        assert_eq!(rows[0][0], Value::Integer(0));
        assert_eq!(rows[0][1], Value::Integer(40));
        assert_eq!(rows[0][2], Value::str("Music"));
        assert_eq!(rows[916][0], Value::Integer(916));
        assert_eq!(rows[917][0], Value::Integer(917));
        assert_eq!(rows[917][1], Value::Integer(91));
        assert_eq!(rows[917][2], Value::str("Women"));
    }

    #[test]
    fn stream_accounting() {
        let table = table();
        let summary = summary();
        let mut stream = TupleStream::new(&table, &summary);
        assert_eq!(stream.remaining(), 938);
        assert_eq!(stream.size_hint(), (938, Some(938)));
        stream.next();
        stream.next();
        assert_eq!(stream.emitted(), 2);
        assert_eq!(stream.remaining(), 936);
        assert_eq!(stream.table().name, "item");
    }

    #[test]
    fn missing_summary_values_become_null() {
        let table = table();
        let mut s = RelationSummary::new("item", Some("i_item_sk".to_string()));
        s.push_row(2, BTreeMap::new());
        let rows: Vec<Row> = TupleStream::new(&table, &s).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::Null);
        assert_eq!(rows[1][0], Value::Integer(1));
    }

    #[test]
    fn empty_summary_empty_stream() {
        let table = table();
        let s = RelationSummary::new("item", Some("i_item_sk".to_string()));
        assert_eq!(TupleStream::new(&table, &s).count(), 0);
    }
}
