//! The analytical query engine: summary-direct answering with a sharded
//! tuple-scan fallback.
//!
//! [`QueryEngine`] is the dispatch layer over one regenerated database:
//!
//! 1. **Summary-direct** (the default, [`ExecMode::Auto`]): in-class queries
//!    are answered by `hydra_summary::exec::SummaryExecutor` from block
//!    cardinalities alone — latency is O(summary blocks), *independent of
//!    the logical row count*, which is the whole point of the paper's
//!    "the summary is the database" claim.
//! 2. **Tuple-scan fallback**: out-of-class queries (see
//!    [`SummaryExecutor::classify`]) are answered by regenerating the fact
//!    relation through the ordinary sharded generation path — one
//!    [`crate::sink::TupleSink`] per shard folding tuples into the shared
//!    [`Aggregator`] kernel, partial aggregates merged in shard order.
//!
//! Because both strategies feed the same order-independent aggregation
//! kernel and share one join resolver, their answers are **bit-identical**;
//! `tests/query_differential.rs` (workspace root) proves it with a
//! property-based differential oracle.

use crate::generator::DynamicGenerator;
use crate::sink::TupleSink;
use crate::stream::RowBlock;
use hydra_catalog::schema::Schema;
use hydra_catalog::types::Value;
use hydra_engine::error::EngineError;
use hydra_engine::row::Row;
use hydra_query::error::QueryError;
use hydra_query::exec::{AggFunc, AggInput, AggregateQuery, Aggregator, ExecStrategy, QueryAnswer};
use hydra_query::parser::parse_aggregate_query_for_schema;
use hydra_query::predicate::ColumnPredicate;
use hydra_summary::error::SummaryError;
use hydra_summary::exec::{JoinResolver, SummaryExecutor};
use hydra_summary::summary::DatabaseSummary;
use std::collections::BTreeMap;
use std::fmt;

/// How [`QueryEngine::execute_mode`] is allowed to answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Summary-direct when the query is in class, tuple scan otherwise.
    #[default]
    Auto,
    /// Summary-direct or error — never scan.  An out-of-class query is
    /// reported as [`ExecError::OutOfClass`], not silently scanned.
    SummaryOnly,
    /// Always regenerate and scan (differential testing, benchmarking).
    ScanOnly,
}

/// Errors raised by the query engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Parsing or validating the query failed.
    Query(QueryError),
    /// Regeneration/streaming failed.
    Engine(EngineError),
    /// The summary layer failed (missing relation, malformed summary).
    Summary(SummaryError),
    /// The query is outside the summary-direct class and the caller forbade
    /// the scan fallback ([`ExecMode::SummaryOnly`]).  The payload names the
    /// out-of-class construct.
    OutOfClass(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Query(e) => write!(f, "query error: {e}"),
            ExecError::Engine(e) => write!(f, "engine error: {e}"),
            ExecError::Summary(e) => write!(f, "summary error: {e}"),
            ExecError::OutOfClass(reason) => {
                write!(f, "out of the summary-direct class: {reason}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<QueryError> for ExecError {
    fn from(e: QueryError) -> Self {
        ExecError::Query(e)
    }
}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        ExecError::Engine(e)
    }
}

impl From<SummaryError> for ExecError {
    fn from(e: SummaryError) -> Self {
        ExecError::Summary(e)
    }
}

/// Convenience result alias.
pub type ExecResult<T> = Result<T, ExecError>;

/// An analytical query engine over one regenerated database.
///
/// ```
/// use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
/// use hydra_catalog::types::Value;
/// use hydra_datagen::exec::QueryEngine;
/// use hydra_datagen::generator::DynamicGenerator;
/// use hydra_summary::summary::{DatabaseSummary, RelationSummary};
/// use hydra_catalog::types::DataType;
/// use std::collections::BTreeMap;
///
/// let schema = SchemaBuilder::new("db")
///     .table("item", |t| {
///         t.column(ColumnBuilder::new("i_pk", DataType::BigInt).primary_key())
///             .column(ColumnBuilder::new("i_qty", DataType::Integer))
///     })
///     .build()
///     .unwrap();
/// let mut item = RelationSummary::new("item", Some("i_pk".to_string()));
/// let mut v = BTreeMap::new();
/// v.insert("i_qty".to_string(), Value::Integer(3));
/// item.push_row(1_000_000, v);
/// let mut summary = DatabaseSummary::new();
/// summary.insert(item);
/// let generator = DynamicGenerator::new(schema, summary);
///
/// // A million-row aggregate answered without generating a single tuple.
/// let engine = QueryEngine::new(&generator);
/// let answer = engine.query("select count(*), sum(item.i_qty) from item").unwrap();
/// assert_eq!(answer.single().unwrap().aggregates[0], Value::Integer(1_000_000));
/// assert_eq!(answer.single().unwrap().aggregates[1], Value::Integer(3_000_000));
/// assert_eq!(answer.scanned_tuples, 0);
/// ```
pub struct QueryEngine<'a> {
    schema: &'a Schema,
    summary: &'a DatabaseSummary,
    scan_shards: usize,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine; scan fallbacks shard across the available cores.
    pub fn new(generator: &'a DynamicGenerator) -> Self {
        Self::over(&generator.schema, &generator.summary)
    }

    /// Creates an engine over borrowed schema + summary — no clones, so the
    /// per-query cost really is independent of the summary size (callers
    /// holding a `RegenerationResult` or registry entry query in place).
    pub fn over(schema: &'a Schema, summary: &'a DatabaseSummary) -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        QueryEngine {
            schema,
            summary,
            scan_shards: shards.max(1),
        }
    }

    /// Overrides the shard count used by tuple-scan fallbacks (answers are
    /// bit-identical for every shard count).
    pub fn with_scan_shards(mut self, shards: usize) -> Self {
        self.scan_shards = shards.max(1);
        self
    }

    /// Parses, validates and executes a SQL aggregate query with
    /// [`ExecMode::Auto`].
    pub fn query(&self, sql: &str) -> ExecResult<QueryAnswer> {
        self.query_mode(sql, ExecMode::Auto)
    }

    /// Parses, validates and executes a SQL aggregate query under `mode`.
    pub fn query_mode(&self, sql: &str, mode: ExecMode) -> ExecResult<QueryAnswer> {
        let query = parse_aggregate_query_for_schema("query", sql, self.schema)?;
        self.execute_mode(&query, mode)
    }

    /// Executes an already-parsed query with [`ExecMode::Auto`].
    pub fn execute(&self, query: &AggregateQuery) -> ExecResult<QueryAnswer> {
        self.execute_mode(query, ExecMode::Auto)
    }

    /// Executes an already-parsed (and schema-validated) query under `mode`.
    /// Classification runs exactly once: `execute` classifies internally and
    /// reports out-of-class queries as a structured error this dispatch
    /// turns into either a refusal or the scan fallback.
    pub fn execute_mode(&self, query: &AggregateQuery, mode: ExecMode) -> ExecResult<QueryAnswer> {
        let direct = SummaryExecutor::new(self.schema, self.summary);
        match mode {
            ExecMode::ScanOnly => self.scan(query),
            ExecMode::SummaryOnly => match direct.execute(query) {
                Ok(answer) => Ok(answer),
                Err(SummaryError::OutOfClass(reason)) => Err(ExecError::OutOfClass(reason)),
                Err(e) => Err(e.into()),
            },
            ExecMode::Auto => match direct.execute(query) {
                Ok(answer) => Ok(answer),
                Err(SummaryError::OutOfClass(_)) => self.scan(query),
                Err(e) => Err(e.into()),
            },
        }
    }

    /// The tuple-scan plan: regenerate the fact relation through the sharded
    /// generation path and fold every tuple into the aggregation kernel.
    fn scan(&self, query: &AggregateQuery) -> ExecResult<QueryAnswer> {
        let root = query.spj.root_table()?.to_string();
        let table = self
            .schema
            .table(&root)
            .ok_or_else(|| EngineError::UnknownTable(root.clone()))?;
        let root_summary = self
            .summary
            .relation(&root)
            .ok_or_else(|| EngineError::UnknownTable(format!("{root} (no summary)")))?;
        let ctx = ScanContext {
            query,
            root: &root,
            resolver: JoinResolver::new(query, &root, self.schema, self.summary)?,
            col_index: table
                .columns()
                .iter()
                .enumerate()
                .map(|(i, c)| (c.name.clone(), i))
                .collect(),
            conjuncts: query
                .spj
                .predicate(&root)
                .map(|p| p.conjuncts().to_vec())
                .unwrap_or_default(),
        };
        let run =
            crate::shard::run_sharded(table, root_summary, self.scan_shards, |_, _| ScanSink {
                ctx: &ctx,
                agg: Aggregator::for_query(query),
                scanned: 0,
            });
        let mut merged = Aggregator::for_query(query);
        let mut scanned = 0u64;
        for sink in run.into_sinks() {
            merged.merge(&sink.agg);
            scanned += sink.scanned;
        }
        Ok(merged.into_answer(
            query,
            ExecStrategy::TupleScan,
            root_summary.row_count() as u64,
            scanned,
        ))
    }
}

/// Shared scan-side context (one per query, borrowed by every shard sink).
struct ScanContext<'q> {
    query: &'q AggregateQuery,
    root: &'q str,
    resolver: JoinResolver<'q>,
    col_index: BTreeMap<String, usize>,
    conjuncts: Vec<ColumnPredicate>,
}

impl ScanContext<'_> {
    fn column<'r>(&self, row: &'r Row, name: &str) -> Option<&'r Value> {
        self.col_index.get(name).map(|&i| &row[i])
    }
}

/// A [`TupleSink`] that folds regenerated tuples into the aggregation
/// kernel; one per shard, merged in shard order after the run.
struct ScanSink<'q, 'c> {
    ctx: &'c ScanContext<'q>,
    agg: Aggregator,
    scanned: u64,
}

impl TupleSink for ScanSink<'_, '_> {
    fn accept(&mut self, row: Row) {
        self.scanned += 1;
        let ctx = self.ctx;
        // Root predicate (pk conjuncts included — the tuple carries its pk).
        if !ctx.conjuncts.iter().all(|c| {
            ctx.column(&row, &c.column)
                .map(|v| c.matches(v))
                .unwrap_or(false)
        }) {
            return;
        }
        // Join fan-out through the shared resolver.
        let Some(resolved) = ctx.resolver.resolve(|col| ctx.column(&row, col)) else {
            return;
        };
        let read = |colref: &hydra_query::exec::ColumnRef| -> Value {
            if colref.table == ctx.root {
                ctx.column(&row, &colref.column)
                    .cloned()
                    .unwrap_or(Value::Null)
            } else {
                match resolved.get(colref.table.as_str()) {
                    Some(dim) => ctx.resolver.dim_value(&colref.table, &colref.column, dim),
                    None => Value::Null,
                }
            }
        };
        let key: Vec<Value> = ctx.query.group_by.iter().map(&read).collect();
        let values: Vec<Option<Value>> = ctx
            .query
            .aggregates
            .iter()
            .map(|agg| match (&agg.func, &agg.target) {
                (AggFunc::Count, _) | (_, None) => None,
                (_, Some(col)) => Some(read(col)),
            })
            .collect();
        let inputs: Vec<AggInput<'_>> = values
            .iter()
            .map(|v| match v {
                None => AggInput::Tuples { n: 1 },
                Some(value) => AggInput::Repeat { value, n: 1 },
            })
            .collect();
        self.agg.add(key, &inputs);
    }

    fn write_block(&mut self, block: &RowBlock<'_>) -> u64 {
        let ctx = self.ctx;
        let n = block.len();
        let template = block.template();
        let is_auto = |name: &str| {
            ctx.col_index
                .get(name)
                .is_some_and(|i| block.auto_columns().contains(i))
        };
        // The pk varies within the block, so any reference to it outside an
        // aggregate target keeps the block's tuples distinguishable — take
        // the bit-identical row-at-a-time path for those queries.
        let pk_in_predicate = ctx.conjuncts.iter().any(|c| is_auto(&c.column));
        let pk_in_group_key = ctx
            .query
            .group_by
            .iter()
            .any(|g| g.table == ctx.root && is_auto(&g.column));
        // Probe the join fan-out on the template while recording whether the
        // resolver ever reads an auto column (it resolves through root fk
        // columns, which are block-constant; the probe guards the invariant).
        let touched_auto = std::cell::Cell::new(false);
        let resolved = ctx.resolver.resolve(|col| {
            if is_auto(col) {
                touched_auto.set(true);
            }
            ctx.column(template, col)
        });
        if pk_in_predicate || pk_in_group_key || touched_auto.get() {
            for row in block.rows() {
                self.accept(row);
            }
            return n;
        }
        // Everything below is block-constant: evaluate once, contribute for
        // all `n` tuples; pk-targeted aggregates use the closed-form
        // `IntRange` input over the block's pk range.
        self.scanned += n;
        if !ctx.conjuncts.iter().all(|c| {
            ctx.column(template, &c.column)
                .map(|v| c.matches(v))
                .unwrap_or(false)
        }) {
            return n;
        }
        let Some(resolved) = resolved else {
            return n;
        };
        let read = |colref: &hydra_query::exec::ColumnRef| -> Value {
            if colref.table == ctx.root {
                ctx.column(template, &colref.column)
                    .cloned()
                    .unwrap_or(Value::Null)
            } else {
                match resolved.get(colref.table.as_str()) {
                    Some(dim) => ctx.resolver.dim_value(&colref.table, &colref.column, dim),
                    None => Value::Null,
                }
            }
        };
        let key: Vec<Value> = ctx.query.group_by.iter().map(&read).collect();
        /// The per-block shape of one aggregate's contribution.
        enum BlockInput {
            /// Count-only: the value is irrelevant.
            Tuples,
            /// Target is the auto-numbered pk: closed form over the range.
            PkRange,
            /// Target is block-constant: one value repeated `n` times.
            Constant(Value),
        }
        let classified: Vec<BlockInput> = ctx
            .query
            .aggregates
            .iter()
            .map(|agg| match (&agg.func, &agg.target) {
                (AggFunc::Count, _) | (_, None) => BlockInput::Tuples,
                (_, Some(col)) if col.table == ctx.root && is_auto(&col.column) => {
                    BlockInput::PkRange
                }
                (_, Some(col)) => BlockInput::Constant(read(col)),
            })
            .collect();
        let pk_range = block.pk_range();
        let inputs: Vec<AggInput<'_>> = classified
            .iter()
            .map(|c| match c {
                BlockInput::Tuples => AggInput::Tuples { n },
                BlockInput::PkRange => AggInput::IntRange {
                    lo: pk_range.start as i64,
                    hi: pk_range.end as i64,
                },
                BlockInput::Constant(value) => AggInput::Repeat { value, n },
            })
            .collect();
        self.agg.add(key, &inputs);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;
    use hydra_summary::summary::{DatabaseSummary, RelationSummary};

    /// sales → item star with a pk-split-friendly block structure.
    fn generator() -> DynamicGenerator {
        let schema = SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_cat", DataType::Varchar(None)))
                    .column(ColumnBuilder::new("i_price", DataType::Double))
            })
            .table("sales", |t| {
                t.column(ColumnBuilder::new("s_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("s_item_fk", DataType::BigInt)
                            .references("item", "i_pk"),
                    )
                    .column(ColumnBuilder::new("s_qty", DataType::Integer))
            })
            .build()
            .unwrap();
        let mut item = RelationSummary::new("item", Some("i_pk".to_string()));
        for (count, cat, price) in [(10u64, "Music", 0.1), (5, "Books", 2.0)] {
            let mut v = BTreeMap::new();
            v.insert("i_cat".to_string(), Value::str(cat));
            v.insert("i_price".to_string(), Value::Double(price));
            item.push_row(count, v);
        }
        let mut sales = RelationSummary::new("sales", Some("s_pk".to_string()));
        for (count, fk, qty) in [(500u64, 2i64, 3i64), (250, 12, 7), (100, 777, 1)] {
            let mut v = BTreeMap::new();
            v.insert("s_item_fk".to_string(), Value::Integer(fk));
            v.insert("s_qty".to_string(), Value::Integer(qty));
            sales.push_row(count, v);
        }
        let mut db = DatabaseSummary::new();
        db.insert(item);
        db.insert(sales);
        DynamicGenerator::new(schema, db)
    }

    #[test]
    fn auto_mode_answers_in_class_queries_summary_direct() {
        let gen = generator();
        let engine = QueryEngine::new(&gen);
        let answer = engine
            .query("select count(*), sum(sales.s_qty) from sales")
            .unwrap();
        assert_eq!(answer.strategy(), ExecStrategy::SummaryDirect);
        assert_eq!(answer.scanned_tuples, 0);
        assert_eq!(answer.single().unwrap().aggregates[0], Value::Integer(850));
        assert_eq!(
            answer.single().unwrap().aggregates[1],
            Value::Integer(500 * 3 + 250 * 7 + 100)
        );
    }

    #[test]
    fn scan_only_matches_summary_direct_bit_for_bit() {
        let gen = generator();
        let engine = QueryEngine::new(&gen).with_scan_shards(3);
        for sql in [
            "select count(*) from sales",
            "select count(*), sum(sales.s_pk), avg(sales.s_qty) from sales \
             where sales.s_pk >= 123 and sales.s_pk < 641",
            "select count(*), sum(item.i_price) from sales, item \
             where sales.s_item_fk = item.i_pk group by item.i_cat",
            "select avg(item.i_price) from sales, item \
             where sales.s_item_fk = item.i_pk and item.i_cat = 'Music'",
        ] {
            let direct = engine.query_mode(sql, ExecMode::SummaryOnly).unwrap();
            let scanned = engine.query_mode(sql, ExecMode::ScanOnly).unwrap();
            assert_eq!(direct.rows, scanned.rows, "{sql}");
            assert_eq!(direct.strategy(), ExecStrategy::SummaryDirect);
            assert_eq!(scanned.strategy(), ExecStrategy::TupleScan);
            assert_eq!(scanned.scanned_tuples, 850, "{sql}");
        }
    }

    #[test]
    fn auto_mode_falls_back_to_scan_for_out_of_class() {
        let gen = generator();
        let engine = QueryEngine::new(&gen).with_scan_shards(2);
        let sql = "select count(*) from sales group by sales.s_pk";
        let answer = engine.query(sql).unwrap();
        assert_eq!(answer.strategy(), ExecStrategy::TupleScan);
        assert_eq!(answer.rows.len(), 850); // every tuple its own group
        assert!(answer
            .rows
            .iter()
            .all(|r| r.aggregates[0] == Value::Integer(1)));

        // summary_only refuses instead of silently scanning.
        let err = engine.query_mode(sql, ExecMode::SummaryOnly).unwrap_err();
        assert!(matches!(err, ExecError::OutOfClass(_)));
        assert!(err.to_string().contains("out of the summary-direct class"));
    }

    #[test]
    fn shard_count_does_not_change_scan_answers() {
        let gen = generator();
        let sql = "select count(*), sum(item.i_price) from sales, item \
                   where sales.s_item_fk = item.i_pk group by sales.s_qty";
        let baseline = QueryEngine::new(&gen)
            .with_scan_shards(1)
            .query_mode(sql, ExecMode::ScanOnly)
            .unwrap();
        for shards in [2, 5, 13] {
            let sharded = QueryEngine::new(&gen)
                .with_scan_shards(shards)
                .query_mode(sql, ExecMode::ScanOnly)
                .unwrap();
            assert_eq!(baseline.rows, sharded.rows, "{shards} shards");
        }
    }

    #[test]
    fn parse_and_validation_errors_surface() {
        let gen = generator();
        let engine = QueryEngine::new(&gen);
        assert!(matches!(
            engine.query("select nonsense"),
            Err(ExecError::Query(_))
        ));
        assert!(matches!(
            engine.query("select count(*) from ghost"),
            Err(ExecError::Query(_))
        ));
        assert!(matches!(
            engine.query("select sum(item.i_cat) from item"),
            Err(ExecError::Query(_))
        ));
    }
}
