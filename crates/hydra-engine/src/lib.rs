//! # hydra-engine
//!
//! A small in-memory relational execution engine.  It plays the role that
//! PostgreSQL v9.3 plays in the original HYDRA system:
//!
//! * at the **client site** it executes the query workload over the client's
//!   warehouse and records the output cardinality of every plan operator —
//!   which is exactly how Annotated Query Plans are produced;
//! * at the **vendor site** it executes the same plans over a *dataless*
//!   database whose scans are served by the dynamic tuple generator
//!   (`hydra-datagen`'s `DatalessDatabase` implements this crate's
//!   [`exec::TableProvider`] trait), demonstrating dynamic regeneration.
//!
//! The engine supports the query class HYDRA targets: scans, conjunctive
//! range/equality filters, and key/foreign-key joins, executed over
//! materialized or generated row streams.
//!
//! ## Example
//!
//! ```
//! use hydra_catalog::schema::{SchemaBuilder, ColumnBuilder};
//! use hydra_catalog::types::{DataType, Value};
//! use hydra_catalog::domain::Domain;
//! use hydra_engine::database::Database;
//! use hydra_engine::exec::Executor;
//! use hydra_query::parser::parse_query_for_schema;
//! use hydra_query::plan::LogicalPlan;
//!
//! let schema = SchemaBuilder::new("db")
//!     .table("item", |t| {
//!         t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
//!          .column(ColumnBuilder::new("i_manager_id", DataType::BigInt)
//!              .domain(Domain::integer(0, 100)))
//!     })
//!     .build()
//!     .unwrap();
//! let mut db = Database::empty(schema.clone());
//! for i in 0..100 {
//!     db.insert("item", vec![Value::Integer(i), Value::Integer(i % 100)]).unwrap();
//! }
//! let q = parse_query_for_schema("q", "select * from item where item.i_manager_id < 40", &schema).unwrap();
//! let plan = LogicalPlan::from_query(&q).unwrap();
//! let result = Executor::new(&db).run(&plan).unwrap();
//! assert_eq!(result.rows.len(), 40);
//! ```

pub mod database;
pub mod error;
pub mod exec;
pub mod row;
pub mod table;

pub use database::Database;
pub use error::{EngineError, EngineResult};
pub use exec::{ExecutionResult, Executor, TableProvider};
pub use row::{OutputColumn, Row};
pub use table::MemTable;
