//! Rows and output column descriptors.

use hydra_catalog::types::Value;

/// A row of values.  Operator outputs concatenate the rows of their inputs,
/// so a row's layout is described by the accompanying [`OutputColumn`] list.
pub type Row = Vec<Value>;

/// Describes one column of an operator's output: which table it came from and
/// what it is called there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputColumn {
    /// Originating table name.
    pub table: String,
    /// Column name within that table.
    pub column: String,
}

impl OutputColumn {
    /// Creates an output column descriptor.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        OutputColumn {
            table: table.into(),
            column: column.into(),
        }
    }
}

/// Finds the index of `table.column` in an output column list.
pub fn find_column(columns: &[OutputColumn], table: &str, column: &str) -> Option<usize> {
    columns
        .iter()
        .position(|c| c.table == table && c.column == column)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_column_by_table_and_name() {
        let cols = vec![
            OutputColumn::new("R", "R_pk"),
            OutputColumn::new("R", "S_fk"),
            OutputColumn::new("S", "S_pk"),
        ];
        assert_eq!(find_column(&cols, "R", "S_fk"), Some(1));
        assert_eq!(find_column(&cols, "S", "S_pk"), Some(2));
        assert_eq!(find_column(&cols, "S", "S_fk"), None);
    }
}
