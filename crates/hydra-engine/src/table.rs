//! In-memory tables.

use crate::error::{EngineError, EngineResult};
use crate::row::Row;
use hydra_catalog::schema::Table;
use hydra_catalog::stats::{ColumnStatistics, TableStatistics};
use hydra_catalog::types::{DataType, Value};

/// A materialized, memory-resident table: its schema plus a vector of rows.
#[derive(Debug, Clone)]
pub struct MemTable {
    /// The table's schema definition.
    pub schema: Table,
    rows: Vec<Row>,
}

impl MemTable {
    /// Creates an empty table with the given schema.
    pub fn empty(schema: Table) -> Self {
        MemTable {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Inserts a row after validating arity and (loosely) types.
    pub fn insert(&mut self, row: Row) -> EngineResult<()> {
        if row.len() != self.schema.arity() {
            return Err(EngineError::RowMismatch(format!(
                "table `{}` expects {} columns, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (value, column) in row.iter().zip(self.schema.columns()) {
            if value.is_null() {
                if column.nullable {
                    continue;
                }
                return Err(EngineError::RowMismatch(format!(
                    "NULL in non-nullable column `{}`.`{}`",
                    self.schema.name, column.name
                )));
            }
            let ok = match column.data_type {
                DataType::Integer | DataType::BigInt | DataType::Date => {
                    matches!(value, Value::Integer(_))
                }
                DataType::Double => matches!(value, Value::Double(_) | Value::Integer(_)),
                DataType::Varchar(_) => matches!(value, Value::Varchar(_)),
                DataType::Boolean => matches!(value, Value::Boolean(_)),
            };
            if !ok {
                return Err(EngineError::RowMismatch(format!(
                    "value `{value}` does not fit column `{}`.`{}` of type {}",
                    self.schema.name, column.name, column.data_type
                )));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Inserts many rows.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> EngineResult<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Bulk-loads rows without per-row validation (used by generators that
    /// construct rows directly from the schema and are valid by construction).
    pub fn load_unchecked(&mut self, rows: Vec<Row>) {
        self.rows.extend(rows);
    }

    /// Returns the values of one column.
    pub fn column_values(&self, column: &str) -> EngineResult<Vec<Value>> {
        let idx = self.schema.column_index(column).ok_or_else(|| {
            EngineError::UnknownColumn(format!("{}.{}", self.schema.name, column))
        })?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Profiles this table into catalog statistics (row count, per-column
    /// MCVs and equi-depth histograms) — the client-side `ANALYZE`.
    pub fn profile(&self, mcv_limit: usize, histogram_buckets: usize) -> TableStatistics {
        let mut stats = TableStatistics::with_row_count(self.rows.len() as u64);
        for (idx, column) in self.schema.columns().iter().enumerate() {
            let values: Vec<Value> = self.rows.iter().map(|r| r[idx].clone()).collect();
            stats.add_column(
                column.name.clone(),
                ColumnStatistics::profile(&values, mcv_limit, histogram_buckets),
            );
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};

    fn item_table() -> Table {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("i_category", DataType::Varchar(None))
                            .domain(Domain::categorical(["Books", "Music"])),
                    )
                    .column(ColumnBuilder::new("i_price", DataType::Double).nullable())
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone()
    }

    #[test]
    fn insert_and_scan() {
        let mut t = MemTable::empty(item_table());
        t.insert(vec![
            Value::Integer(1),
            Value::str("Books"),
            Value::Double(9.99),
        ])
        .unwrap();
        t.insert(vec![Value::Integer(2), Value::str("Music"), Value::Null])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.rows()[1][1], Value::str("Music"));
        assert_eq!(
            t.column_values("i_category").unwrap(),
            vec![Value::str("Books"), Value::str("Music")]
        );
        assert!(t.column_values("nope").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = MemTable::empty(item_table());
        assert!(matches!(
            t.insert(vec![Value::Integer(1)]),
            Err(EngineError::RowMismatch(_))
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = MemTable::empty(item_table());
        assert!(t
            .insert(vec![
                Value::str("one"),
                Value::str("Books"),
                Value::Double(1.0)
            ])
            .is_err());
    }

    #[test]
    fn null_in_non_nullable_rejected() {
        let mut t = MemTable::empty(item_table());
        assert!(t
            .insert(vec![Value::Null, Value::str("Books"), Value::Double(1.0)])
            .is_err());
        // Nullable column accepts NULL.
        assert!(t
            .insert(vec![Value::Integer(1), Value::str("Books"), Value::Null])
            .is_ok());
    }

    #[test]
    fn integer_accepted_in_double_column() {
        let mut t = MemTable::empty(item_table());
        assert!(t
            .insert(vec![
                Value::Integer(1),
                Value::str("Books"),
                Value::Integer(10)
            ])
            .is_ok());
    }

    #[test]
    fn insert_all_and_load_unchecked() {
        let mut t = MemTable::empty(item_table());
        t.insert_all(vec![
            vec![Value::Integer(1), Value::str("Books"), Value::Double(1.0)],
            vec![Value::Integer(2), Value::str("Music"), Value::Double(2.0)],
        ])
        .unwrap();
        t.load_unchecked(vec![vec![
            Value::Integer(3),
            Value::str("Books"),
            Value::Double(3.0),
        ]]);
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn profiling_produces_statistics() {
        let mut t = MemTable::empty(item_table());
        for i in 0..50 {
            t.insert(vec![
                Value::Integer(i),
                Value::str(if i % 5 == 0 { "Music" } else { "Books" }),
                Value::Double(i as f64),
            ])
            .unwrap();
        }
        let stats = t.profile(4, 8);
        assert_eq!(stats.row_count, 50);
        let cat = &stats.columns["i_category"];
        assert_eq!(cat.n_distinct, 2);
        assert_eq!(cat.most_common[0].0, Value::str("Books"));
        assert!(stats.columns["i_price"].histogram.bucket_count() > 0);
    }
}
