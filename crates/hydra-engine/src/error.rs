//! Error type for the execution engine.

use std::fmt;

/// Errors raised by the execution engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A referenced table is not known to the provider.
    UnknownTable(String),
    /// A referenced column does not exist in the operator's input.
    UnknownColumn(String),
    /// A row's arity or types do not match the table schema.
    RowMismatch(String),
    /// The plan shape is not executable (e.g. wrong child count).
    BadPlan(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            EngineError::RowMismatch(msg) => write!(f, "row mismatch: {msg}"),
            EngineError::BadPlan(msg) => write!(f, "bad plan: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias.
pub type EngineResult<T> = Result<T, EngineError>;
