//! A database: a schema plus one [`MemTable`] per relation.

use crate::error::{EngineError, EngineResult};
use crate::exec::TableProvider;
use crate::row::Row;
use crate::table::MemTable;
use hydra_catalog::metadata::DatabaseMetadata;
use hydra_catalog::schema::Schema;
use std::collections::BTreeMap;

/// An in-memory database instance.
#[derive(Debug, Clone)]
pub struct Database {
    /// The schema this database instantiates.
    pub schema: Schema,
    tables: BTreeMap<String, MemTable>,
}

impl Database {
    /// Creates a database with one empty table per schema relation.
    pub fn empty(schema: Schema) -> Self {
        let tables = schema
            .tables()
            .into_iter()
            .map(|t| (t.name.clone(), MemTable::empty(t.clone())))
            .collect();
        Database { schema, tables }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&MemTable> {
        self.tables.get(name)
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> EngineResult<&mut MemTable> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Inserts one row into a table.
    pub fn insert(&mut self, table: &str, row: Row) -> EngineResult<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Inserts many rows into a table.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> EngineResult<()> {
        self.table_mut(table)?.insert_all(rows)
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> u64 {
        self.tables.values().map(|t| t.row_count() as u64).sum()
    }

    /// Row count of one table (0 for unknown tables).
    pub fn row_count(&self, table: &str) -> u64 {
        self.tables
            .get(table)
            .map(|t| t.row_count() as u64)
            .unwrap_or(0)
    }

    /// Profiles every table, producing the metadata package the client ships
    /// to the vendor (`ANALYZE` + CODD metadata transfer).
    pub fn profile(&self, mcv_limit: usize, histogram_buckets: usize) -> DatabaseMetadata {
        let mut md = DatabaseMetadata::new(self.schema.clone());
        for (name, table) in &self.tables {
            md.set_table(name.clone(), table.profile(mcv_limit, histogram_buckets));
        }
        md
    }

    /// Verifies referential integrity: every non-NULL foreign-key value in
    /// every table references an existing primary-key value.  Returns the
    /// number of dangling references found.
    pub fn dangling_foreign_keys(&self) -> u64 {
        let mut dangling = 0u64;
        for table in self.schema.tables() {
            let Some(mem) = self.tables.get(&table.name) else {
                continue;
            };
            for fk in table.foreign_keys() {
                let Some(fk_idx) = table.column_index(&fk.column) else {
                    continue;
                };
                let Some(dim) = self.tables.get(&fk.referenced_table) else {
                    continue;
                };
                let Some(dim_table) = self.schema.table(&fk.referenced_table) else {
                    continue;
                };
                let Some(pk_idx) = dim_table.column_index(&fk.referenced_column) else {
                    continue;
                };
                let pk_values: std::collections::HashSet<&hydra_catalog::types::Value> =
                    dim.rows().iter().map(|r| &r[pk_idx]).collect();
                for row in mem.rows() {
                    let v = &row[fk_idx];
                    if !v.is_null() && !pk_values.contains(v) {
                        dangling += 1;
                    }
                }
            }
        }
        dangling
    }
}

impl TableProvider for Database {
    fn table_columns(&self, table: &str) -> Option<Vec<String>> {
        self.schema
            .table(table)
            .map(|t| t.columns().iter().map(|c| c.name.clone()).collect())
    }

    fn scan(&self, table: &str) -> Option<Box<dyn Iterator<Item = Row> + '_>> {
        self.tables
            .get(table)
            .map(|t| Box::new(t.rows().iter().cloned()) as Box<dyn Iterator<Item = Row> + '_>)
    }

    fn estimated_rows(&self, table: &str) -> Option<u64> {
        self.tables.get(table).map(|t| t.row_count() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};

    fn toy_schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
            })
            .table("R", |t| {
                t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
            })
            .build()
            .unwrap()
    }

    fn populated() -> Database {
        let mut db = Database::empty(toy_schema());
        for i in 0..10 {
            db.insert("S", vec![Value::Integer(i), Value::Integer(i * 10)])
                .unwrap();
        }
        for i in 0..50 {
            db.insert("R", vec![Value::Integer(i), Value::Integer(i % 10)])
                .unwrap();
        }
        db
    }

    #[test]
    fn construction_and_row_counts() {
        let db = populated();
        assert_eq!(db.row_count("S"), 10);
        assert_eq!(db.row_count("R"), 50);
        assert_eq!(db.row_count("missing"), 0);
        assert_eq!(db.total_rows(), 60);
        assert!(db.table("S").is_some());
        assert!(db.table("missing").is_none());
    }

    #[test]
    fn unknown_table_insert_fails() {
        let mut db = populated();
        assert!(matches!(
            db.insert("missing", vec![Value::Integer(1)]),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn profiling_matches_contents() {
        let db = populated();
        let md = db.profile(4, 8);
        assert_eq!(md.row_count("S"), 10);
        assert_eq!(md.row_count("R"), 50);
        assert_eq!(md.column_stats("S", "A").unwrap().n_distinct, 10);
    }

    #[test]
    fn referential_integrity_check() {
        let mut db = populated();
        assert_eq!(db.dangling_foreign_keys(), 0);
        db.insert("R", vec![Value::Integer(99), Value::Integer(42)])
            .unwrap();
        assert_eq!(db.dangling_foreign_keys(), 1);
    }

    #[test]
    fn table_provider_interface() {
        let db = populated();
        assert_eq!(
            db.table_columns("S"),
            Some(vec!["S_pk".to_string(), "A".to_string()])
        );
        assert_eq!(db.table_columns("missing"), None);
        assert_eq!(db.estimated_rows("R"), Some(50));
        let rows: Vec<Row> = db.scan("S").unwrap().collect();
        assert_eq!(rows.len(), 10);
    }
}
