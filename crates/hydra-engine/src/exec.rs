//! Plan execution with per-operator cardinality instrumentation.
//!
//! [`Executor::run`] evaluates a logical plan bottom-up, materializing each
//! operator's output and recording its row count.  The counts, in plan
//! pre-order, are exactly the annotations of an AQP —
//! [`Executor::run_annotated`] returns them packaged as an
//! [`AnnotatedQueryPlan`].
//!
//! Scans are served through the [`TableProvider`] trait, so the same executor
//! runs over a materialized [`crate::database::Database`] (client site) or
//! over a dataless, dynamically generated database (vendor site, see
//! `hydra-datagen`).

use crate::error::{EngineError, EngineResult};
use crate::row::{find_column, OutputColumn, Row};
use hydra_query::aqp::AnnotatedQueryPlan;
use hydra_query::plan::{LogicalPlan, PlanOp};
use hydra_query::query::SpjQuery;
use std::collections::HashMap;

/// Supplies rows for base-table scans.
pub trait TableProvider {
    /// Column names of the table, in order, or `None` if the table is unknown.
    fn table_columns(&self, table: &str) -> Option<Vec<String>>;
    /// An iterator over the table's rows, or `None` if the table is unknown.
    fn scan(&self, table: &str) -> Option<Box<dyn Iterator<Item = Row> + '_>>;
    /// Estimated (or exact) row count, if known.
    fn estimated_rows(&self, table: &str) -> Option<u64>;
}

/// The materialized output of a plan execution.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Layout of `rows`.
    pub columns: Vec<OutputColumn>,
    /// Output rows of the plan root.
    pub rows: Vec<Row>,
    /// Output cardinality of every plan node, in pre-order.
    pub node_cardinalities: Vec<u64>,
}

impl ExecutionResult {
    /// Output cardinality of the plan root.
    pub fn root_cardinality(&self) -> u64 {
        self.node_cardinalities.first().copied().unwrap_or(0)
    }
}

/// Executes logical plans against a [`TableProvider`].
pub struct Executor<'a> {
    provider: &'a dyn TableProvider,
}

impl<'a> Executor<'a> {
    /// Creates an executor over the given provider.
    pub fn new(provider: &'a dyn TableProvider) -> Self {
        Executor { provider }
    }

    /// Executes a plan, returning its output and per-node cardinalities.
    pub fn run(&self, plan: &LogicalPlan) -> EngineResult<ExecutionResult> {
        let mut cards = vec![0u64; plan.node_count()];
        let mut next_index = 0usize;
        let (columns, rows) = self.exec_node(plan, &mut cards, &mut next_index)?;
        Ok(ExecutionResult {
            columns,
            rows,
            node_cardinalities: cards,
        })
    }

    /// Executes a plan and packages the observed cardinalities as an AQP.
    pub fn run_annotated(
        &self,
        query_name: &str,
        plan: &LogicalPlan,
    ) -> EngineResult<(ExecutionResult, AnnotatedQueryPlan)> {
        let result = self.run(plan)?;
        let aqp = AnnotatedQueryPlan::from_plan_with_cardinalities(
            query_name,
            plan,
            &result.node_cardinalities,
        )
        .map_err(|e| EngineError::BadPlan(e.to_string()))?;
        Ok((result, aqp))
    }

    /// Convenience: plans and executes an [`SpjQuery`], returning its AQP.
    pub fn run_query(
        &self,
        query: &SpjQuery,
    ) -> EngineResult<(ExecutionResult, AnnotatedQueryPlan)> {
        let plan =
            LogicalPlan::from_query(query).map_err(|e| EngineError::BadPlan(e.to_string()))?;
        self.run_annotated(&query.name, &plan)
    }

    fn exec_node(
        &self,
        plan: &LogicalPlan,
        cards: &mut [u64],
        next_index: &mut usize,
    ) -> EngineResult<(Vec<OutputColumn>, Vec<Row>)> {
        let my_index = *next_index;
        *next_index += 1;
        let (columns, rows) = match &plan.op {
            PlanOp::Scan { table } => self.exec_scan(table)?,
            PlanOp::Filter { table, predicate } => {
                if plan.children.len() != 1 {
                    return Err(EngineError::BadPlan(
                        "filter needs exactly one input".into(),
                    ));
                }
                let (columns, rows) = self.exec_node(&plan.children[0], cards, next_index)?;
                let filtered: Vec<Row> = rows
                    .into_iter()
                    .filter(|row| {
                        predicate
                            .evaluate(|col| find_column(&columns, table, col).map(|idx| &row[idx]))
                    })
                    .collect();
                (columns, filtered)
            }
            PlanOp::Join { edge } => {
                if plan.children.len() != 2 {
                    return Err(EngineError::BadPlan("join needs exactly two inputs".into()));
                }
                let (left_cols, left_rows) =
                    self.exec_node(&plan.children[0], cards, next_index)?;
                let (right_cols, right_rows) =
                    self.exec_node(&plan.children[1], cards, next_index)?;

                // Locate the FK column (fact side) and PK column (dim side)
                // in whichever child carries them.
                let fk_in_left = find_column(&left_cols, &edge.fact_table, &edge.fk_column);
                let pk_in_right = find_column(&right_cols, &edge.dim_table, &edge.pk_column);
                let fk_in_right = find_column(&right_cols, &edge.fact_table, &edge.fk_column);
                let pk_in_left = find_column(&left_cols, &edge.dim_table, &edge.pk_column);

                let (
                    probe_rows,
                    probe_cols,
                    probe_key,
                    build_rows,
                    build_cols,
                    build_key,
                    probe_is_left,
                ) = match (fk_in_left, pk_in_right, fk_in_right, pk_in_left) {
                    (Some(fk), Some(pk), _, _) => {
                        (left_rows, left_cols, fk, right_rows, right_cols, pk, true)
                    }
                    (_, _, Some(fk), Some(pk)) => {
                        (right_rows, right_cols, fk, left_rows, left_cols, pk, false)
                    }
                    _ => {
                        return Err(EngineError::UnknownColumn(format!(
                            "join columns for `{}` not found in inputs",
                            edge.to_sql()
                        )))
                    }
                };

                // Hash join: build on the dimension (PK) side, probe with the
                // fact (FK) side.
                let mut hash: HashMap<&hydra_catalog::types::Value, Vec<usize>> = HashMap::new();
                for (i, row) in build_rows.iter().enumerate() {
                    let key = &row[build_key];
                    if !key.is_null() {
                        hash.entry(key).or_default().push(i);
                    }
                }
                let mut out_rows = Vec::new();
                for row in &probe_rows {
                    let key = &row[probe_key];
                    if key.is_null() {
                        continue;
                    }
                    if let Some(matches) = hash.get(key) {
                        for &m in matches {
                            let mut combined;
                            if probe_is_left {
                                combined = row.clone();
                                combined.extend(build_rows[m].iter().cloned());
                            } else {
                                combined = build_rows[m].clone();
                                combined.extend(row.iter().cloned());
                            }
                            out_rows.push(combined);
                        }
                    }
                }
                let mut out_cols;
                if probe_is_left {
                    out_cols = probe_cols;
                    out_cols.extend(build_cols);
                } else {
                    out_cols = build_cols;
                    out_cols.extend(probe_cols);
                }
                (out_cols, out_rows)
            }
            PlanOp::Aggregate { .. } => {
                // This executor materializes SPJ outputs for AQP harvesting;
                // aggregate roots are answered by the summary-direct /
                // tuple-scan engine in hydra-datagen instead.
                return Err(EngineError::BadPlan(
                    "aggregate operators are not executed by the SPJ executor; \
                     use the query engine (hydra-datagen::exec)"
                        .into(),
                ));
            }
        };
        cards[my_index] = rows.len() as u64;
        Ok((columns, rows))
    }

    fn exec_scan(&self, table: &str) -> EngineResult<(Vec<OutputColumn>, Vec<Row>)> {
        let column_names = self
            .provider
            .table_columns(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        let columns: Vec<OutputColumn> = column_names
            .iter()
            .map(|c| OutputColumn::new(table, c.clone()))
            .collect();
        let rows: Vec<Row> = self
            .provider
            .scan(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?
            .collect();
        Ok((columns, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};
    use hydra_query::parser::parse_query_for_schema;
    use hydra_query::plan::LogicalPlan;

    /// The paper's Figure 1 scenario: R(R_pk, S_fk, T_fk), S(S_pk, A, B), T(T_pk, C).
    fn toy_schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
                    .column(
                        ColumnBuilder::new("B", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
            })
            .table("T", |t| {
                t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)),
                    )
            })
            .table("R", |t| {
                t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                    .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
            })
            .build()
            .unwrap()
    }

    /// Deterministic toy instance:
    /// * S has 100 rows, S_pk = i, A = i (so 20 <= A < 60 selects 40 rows).
    /// * T has 10 rows, T_pk = i, C = i (so 2 <= C < 3 selects 1 row).
    /// * R has 1000 rows, S_fk = i % 100, T_fk = i % 10.
    fn toy_db() -> Database {
        let mut db = Database::empty(toy_schema());
        for i in 0..100 {
            db.insert(
                "S",
                vec![Value::Integer(i), Value::Integer(i), Value::Integer(99 - i)],
            )
            .unwrap();
        }
        for i in 0..10 {
            db.insert("T", vec![Value::Integer(i), Value::Integer(i)])
                .unwrap();
        }
        for i in 0..1000 {
            db.insert(
                "R",
                vec![
                    Value::Integer(i),
                    Value::Integer(i % 100),
                    Value::Integer(i % 10),
                ],
            )
            .unwrap();
        }
        db
    }

    const FIG1_SQL: &str = "select * from R, S, T \
        where R.S_fk = S.S_pk and R.T_fk = T.T_pk \
        and S.A >= 20 and S.A < 60 and T.C >= 2 and T.C < 3";

    #[test]
    fn scan_execution() {
        let db = toy_db();
        let plan = LogicalPlan::scan("S");
        let result = Executor::new(&db).run(&plan).unwrap();
        assert_eq!(result.rows.len(), 100);
        assert_eq!(result.columns.len(), 3);
        assert_eq!(result.root_cardinality(), 100);
    }

    #[test]
    fn unknown_table_fails() {
        let db = toy_db();
        let plan = LogicalPlan::scan("missing");
        assert!(matches!(
            Executor::new(&db).run(&plan),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn filter_execution() {
        let db = toy_db();
        let schema = toy_schema();
        let q =
            parse_query_for_schema("q", "select * from S where S.A >= 20 and S.A < 60", &schema)
                .unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        let result = Executor::new(&db).run(&plan).unwrap();
        assert_eq!(result.rows.len(), 40);
    }

    #[test]
    fn figure1_join_cardinalities() {
        let db = toy_db();
        let schema = toy_schema();
        let q = parse_query_for_schema("fig1", FIG1_SQL, &schema).unwrap();
        let (result, aqp) = Executor::new(&db).run_query(&q).unwrap();

        // Selectivities: σ(S) keeps S_pk in [20,60) → R rows with S_fk in that
        // range: 400.  σ(T) keeps T_pk = 2 → of those, the ones with T_fk = 2.
        // R rows have S_fk = i % 100 and T_fk = i % 10; S_fk in [20,60) and
        // T_fk = 2 → i % 100 in {22,32,42,52} → 40 rows.
        assert_eq!(result.rows.len(), 40);
        assert_eq!(aqp.root.cardinality, 40);

        // Check the full set of annotations via the constraint extraction.
        let constraints = aqp.constraints().unwrap();
        let filter_s = constraints
            .iter()
            .find(|c| c.table == "S" && !c.predicate.is_trivial())
            .unwrap();
        assert_eq!(filter_s.cardinality, 40);
        let join_s = constraints
            .iter()
            .find(|c| c.table == "R" && c.fk_conditions.len() == 1)
            .unwrap();
        assert_eq!(join_s.cardinality, 400);
        let scan_r = constraints
            .iter()
            .find(|c| c.table == "R" && c.is_total_row_count())
            .unwrap();
        assert_eq!(scan_r.cardinality, 1000);
    }

    #[test]
    fn join_output_columns_include_both_sides() {
        let db = toy_db();
        let schema = toy_schema();
        let q = parse_query_for_schema("q", "select * from R, S where R.S_fk = S.S_pk", &schema)
            .unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        let result = Executor::new(&db).run(&plan).unwrap();
        assert_eq!(result.rows.len(), 1000);
        assert_eq!(result.columns.len(), 6); // 3 from R + 3 from S
                                             // Every output row's S_fk equals its S_pk.
        let fk = find_column(&result.columns, "R", "S_fk").unwrap();
        let pk = find_column(&result.columns, "S", "S_pk").unwrap();
        assert!(result.rows.iter().all(|r| r[fk] == r[pk]));
    }

    #[test]
    fn join_with_dangling_fk_drops_rows() {
        let mut db = toy_db();
        // An R row referencing a non-existent S_pk.
        db.insert(
            "R",
            vec![
                Value::Integer(5000),
                Value::Integer(5000),
                Value::Integer(0),
            ],
        )
        .unwrap();
        let schema = toy_schema();
        let q = parse_query_for_schema("q", "select * from R, S where R.S_fk = S.S_pk", &schema)
            .unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        let result = Executor::new(&db).run(&plan).unwrap();
        assert_eq!(result.rows.len(), 1000); // dangling row contributes nothing
    }

    #[test]
    fn null_fk_never_joins() {
        let schema = SchemaBuilder::new("n")
            .table("D", |t| {
                t.column(ColumnBuilder::new("d_pk", DataType::BigInt).primary_key())
            })
            .table("F", |t| {
                t.column(ColumnBuilder::new("f_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("d_fk", DataType::BigInt)
                            .references("D", "d_pk")
                            .nullable(),
                    )
            })
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert("D", vec![Value::Integer(0)]).unwrap();
        db.insert("F", vec![Value::Integer(0), Value::Integer(0)])
            .unwrap();
        db.insert("F", vec![Value::Integer(1), Value::Null])
            .unwrap();
        let q = parse_query_for_schema("q", "select * from F, D where F.d_fk = D.d_pk", &schema)
            .unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        let result = Executor::new(&db).run(&plan).unwrap();
        assert_eq!(result.rows.len(), 1);
    }

    #[test]
    fn annotated_plan_shape_matches_logical_plan() {
        let db = toy_db();
        let schema = toy_schema();
        let q = parse_query_for_schema("fig1", FIG1_SQL, &schema).unwrap();
        let plan = LogicalPlan::from_query(&q).unwrap();
        let (result, aqp) = Executor::new(&db).run_annotated("fig1", &plan).unwrap();
        assert_eq!(aqp.edge_count(), plan.node_count());
        assert_eq!(result.node_cardinalities.len(), plan.node_count());
        // Scan cardinalities appear in the AQP exactly as observed.
        let scan_cards: Vec<u64> = aqp
            .root
            .preorder()
            .into_iter()
            .filter(|n| matches!(n.op, PlanOp::Scan { .. }))
            .map(|n| n.cardinality)
            .collect();
        assert!(scan_cards.contains(&1000));
        assert!(scan_cards.contains(&100));
        assert!(scan_cards.contains(&10));
    }
}
