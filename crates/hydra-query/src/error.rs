//! Error type for query parsing, planning and AQP processing.

use std::fmt;

/// Errors raised by the query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The SQL text could not be parsed.
    Parse(String),
    /// A table or column referenced by the query is not in the schema.
    UnknownReference(String),
    /// The query shape is not supported (e.g. non-FK join).
    Unsupported(String),
    /// An AQP was malformed (e.g. annotation missing).
    MalformedAqp(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
            QueryError::UnknownReference(msg) => write!(f, "unknown reference: {msg}"),
            QueryError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            QueryError::MalformedAqp(msg) => write!(f, "malformed AQP: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Convenience result alias.
pub type QueryResult<T> = Result<T, QueryError>;
