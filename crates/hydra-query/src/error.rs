//! Error type for query parsing, planning and AQP processing.

use std::fmt;

/// A byte range into the SQL text a parse error points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte of the offending region.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Errors raised by the query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The SQL text could not be parsed; when available, `span` is the byte
    /// range of the offending token(s).
    Parse {
        /// What went wrong.
        message: String,
        /// Where in the input it went wrong, if known.
        span: Option<Span>,
    },
    /// A table or column referenced by the query is not in the schema.
    UnknownReference(String),
    /// The query shape is not supported (e.g. non-FK join).
    Unsupported(String),
    /// An AQP was malformed (e.g. annotation missing).
    MalformedAqp(String),
    /// A workload delta could not be applied (unknown query retired,
    /// duplicate add, retire + re-annotate of the same query, …).
    Delta(String),
}

impl QueryError {
    /// A parse error without location information.
    pub fn parse(message: impl Into<String>) -> Self {
        QueryError::Parse {
            message: message.into(),
            span: None,
        }
    }

    /// A parse error pointing at a byte range of the input.
    pub fn parse_at(message: impl Into<String>, span: Span) -> Self {
        QueryError::Parse {
            message: message.into(),
            span: Some(span),
        }
    }

    /// The span of a parse error, if one was recorded.
    pub fn span(&self) -> Option<Span> {
        match self {
            QueryError::Parse { span, .. } => *span,
            _ => None,
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse {
                message,
                span: Some(span),
            } => write!(f, "parse error at {span}: {message}"),
            QueryError::Parse {
                message,
                span: None,
            } => write!(f, "parse error: {message}"),
            QueryError::UnknownReference(msg) => write!(f, "unknown reference: {msg}"),
            QueryError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            QueryError::MalformedAqp(msg) => write!(f, "malformed AQP: {msg}"),
            QueryError::Delta(msg) => write!(f, "workload delta rejected: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Convenience result alias.
pub type QueryResult<T> = Result<T, QueryError>;
