//! Logical plans for SPJ queries.
//!
//! Plans are trees of [`PlanOp`]s.  The same shape is reused by the annotated
//! query plan (`aqp` module), which attaches an observed output cardinality to
//! every node.  Plan construction is deliberately simple — filters sit
//! directly above scans and joins form a left-deep tree rooted at the query's
//! fact table — because what HYDRA needs from the plan is its *edges and
//! cardinalities*, not a cost-optimal operator ordering.  (The paper relies on
//! CODD's metadata transfer to make the client and vendor pick the same plan;
//! here both sides use this deterministic planner, which achieves the same.)

use crate::error::{QueryError, QueryResult};
use crate::exec::{AggExpr, AggregateQuery, ColumnRef};
use crate::predicate::TablePredicate;
use crate::query::{JoinEdge, SpjQuery};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single plan operator (without its children).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanOp {
    /// Full scan of a base table.
    Scan {
        /// Table being scanned.
        table: String,
    },
    /// Filter over the named table's columns.
    Filter {
        /// Table whose columns the predicate references.
        table: String,
        /// The conjunctive predicate.
        predicate: TablePredicate,
    },
    /// Key / foreign-key join.
    Join {
        /// The FK edge being joined.
        edge: JoinEdge,
    },
    /// Grouped aggregation over the SPJ subtree below it (always the plan
    /// root; carries the select list and GROUP BY of an
    /// [`AggregateQuery`]).
    Aggregate {
        /// The aggregate select list.
        aggregates: Vec<AggExpr>,
        /// The GROUP BY columns (empty: one global group).
        group_by: Vec<ColumnRef>,
    },
}

impl PlanOp {
    /// Short human-readable operator name (for plan printouts).
    pub fn name(&self) -> String {
        match self {
            PlanOp::Scan { table } => format!("Scan({table})"),
            PlanOp::Filter { table, predicate } => format!("Filter({table}: {predicate})"),
            PlanOp::Join { edge } => format!("Join({})", edge.to_sql()),
            PlanOp::Aggregate {
                aggregates,
                group_by,
            } => {
                let select: Vec<String> = aggregates.iter().map(AggExpr::to_sql).collect();
                if group_by.is_empty() {
                    format!("Aggregate({})", select.join(", "))
                } else {
                    let by: Vec<String> = group_by.iter().map(ToString::to_string).collect();
                    format!("Aggregate({} by {})", select.join(", "), by.join(", "))
                }
            }
        }
    }
}

/// A logical plan: an operator and its children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalPlan {
    /// The operator at this node.
    pub op: PlanOp,
    /// Child plans (0 for scans, 1 for filters/aggregates, 2 for joins).
    pub children: Vec<LogicalPlan>,
}

impl LogicalPlan {
    /// Leaf scan node.
    pub fn scan(table: impl Into<String>) -> Self {
        LogicalPlan {
            op: PlanOp::Scan {
                table: table.into(),
            },
            children: Vec::new(),
        }
    }

    /// Filter node over an input.
    pub fn filter(table: impl Into<String>, predicate: TablePredicate, input: LogicalPlan) -> Self {
        LogicalPlan {
            op: PlanOp::Filter {
                table: table.into(),
                predicate,
            },
            children: vec![input],
        }
    }

    /// Join node over two inputs (fact side left, dimension side right).
    pub fn join(edge: JoinEdge, left: LogicalPlan, right: LogicalPlan) -> Self {
        LogicalPlan {
            op: PlanOp::Join { edge },
            children: vec![left, right],
        }
    }

    /// Aggregate node over one input (the plan root of an aggregate query).
    pub fn aggregate(
        aggregates: Vec<AggExpr>,
        group_by: Vec<ColumnRef>,
        input: LogicalPlan,
    ) -> Self {
        LogicalPlan {
            op: PlanOp::Aggregate {
                aggregates,
                group_by,
            },
            children: vec![input],
        }
    }

    /// Builds the canonical plan for an aggregate query: the SPJ plan of the
    /// body with one [`PlanOp::Aggregate`] root carrying the select list and
    /// GROUP BY.
    pub fn from_aggregate_query(query: &AggregateQuery) -> QueryResult<Self> {
        let body = Self::from_query(&query.spj)?;
        Ok(Self::aggregate(
            query.aggregates.clone(),
            query.group_by.clone(),
            body,
        ))
    }

    /// Builds the canonical plan for an SPJ query: per-table scan (+ filter)
    /// leaves, joined left-deep starting from the root fact table, with
    /// snowflake branches expanded recursively.
    pub fn from_query(query: &SpjQuery) -> QueryResult<Self> {
        if query.tables.is_empty() {
            return Err(QueryError::Unsupported("query references no tables".into()));
        }
        let root = query.root_table()?.to_string();
        let mut used_edges = vec![false; query.joins.len()];
        let plan = Self::build_subtree(query, &root, &mut used_edges);
        if used_edges.iter().any(|u| !u) {
            return Err(QueryError::Unsupported(
                "join graph is not connected to the root fact table".into(),
            ));
        }
        Ok(plan)
    }

    fn build_subtree(query: &SpjQuery, table: &str, used_edges: &mut [bool]) -> LogicalPlan {
        let scan = LogicalPlan::scan(table);
        let mut plan = match query.predicate(table) {
            Some(pred) if !pred.is_trivial() => LogicalPlan::filter(table, pred.clone(), scan),
            _ => scan,
        };
        // Join with every dimension referenced from this table, in edge order.
        let edges: Vec<(usize, JoinEdge)> = query
            .joins
            .iter()
            .enumerate()
            .filter(|(i, e)| !used_edges[*i] && e.fact_table == table)
            .map(|(i, e)| (i, e.clone()))
            .collect();
        for (i, edge) in edges {
            used_edges[i] = true;
            let dim_plan = Self::build_subtree(query, &edge.dim_table, used_edges);
            plan = LogicalPlan::join(edge, plan, dim_plan);
        }
        plan
    }

    /// Number of nodes in the plan.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LogicalPlan::node_count)
            .sum::<usize>()
    }

    /// All nodes in pre-order (self first).
    pub fn preorder(&self) -> Vec<&LogicalPlan> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.preorder());
        }
        out
    }

    /// Tables scanned anywhere in the plan.
    pub fn scanned_tables(&self) -> Vec<&str> {
        self.preorder()
            .into_iter()
            .filter_map(|n| match &n.op {
                PlanOp::Scan { table } => Some(table.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Indented textual rendering of the plan ("EXPLAIN" output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.op.name());
        out.push('\n');
        for c in &self.children {
            c.explain_into(out, depth + 1);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColumnPredicate, CompareOp};

    fn figure1_query() -> SpjQuery {
        let mut q = SpjQuery::new("fig1");
        q.add_join(JoinEdge::new("R", "S_fk", "S", "S_pk"));
        q.add_join(JoinEdge::new("R", "T_fk", "T", "T_pk"));
        q.set_predicate(
            "S",
            TablePredicate::always_true()
                .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
                .with(ColumnPredicate::new("A", CompareOp::Lt, 60)),
        );
        q.set_predicate(
            "T",
            TablePredicate::always_true()
                .with(ColumnPredicate::new("C", CompareOp::Ge, 2))
                .with(ColumnPredicate::new("C", CompareOp::Lt, 3)),
        );
        q
    }

    #[test]
    fn figure1_plan_shape() {
        let q = figure1_query();
        let plan = LogicalPlan::from_query(&q).unwrap();
        // Root is the join with T; its left child is the join with S; the
        // R leaf is a bare scan while S and T get filters above their scans.
        assert!(matches!(&plan.op, PlanOp::Join { edge } if edge.dim_table == "T"));
        assert_eq!(plan.node_count(), 7);
        let tables = plan.scanned_tables();
        assert_eq!(tables.len(), 3);
        assert!(tables.contains(&"R") && tables.contains(&"S") && tables.contains(&"T"));
        let explain = plan.explain();
        assert!(explain.contains("Join(R.T_fk = T.T_pk)"));
        assert!(explain.contains("Filter(S: A >= 20 AND A < 60)"));
        assert!(explain.contains("Scan(R)"));
    }

    #[test]
    fn single_table_plan() {
        let mut q = SpjQuery::new("single");
        q.set_predicate(
            "S",
            TablePredicate::always_true().with(ColumnPredicate::new("A", CompareOp::Lt, 5)),
        );
        let plan = LogicalPlan::from_query(&q).unwrap();
        assert!(matches!(plan.op, PlanOp::Filter { .. }));
        assert_eq!(plan.node_count(), 2);
    }

    #[test]
    fn trivial_predicate_is_not_planned_as_filter() {
        let mut q = SpjQuery::new("single");
        q.add_table("S");
        let plan = LogicalPlan::from_query(&q).unwrap();
        assert!(matches!(plan.op, PlanOp::Scan { .. }));
    }

    #[test]
    fn snowflake_plan() {
        // fact -> mid -> leaf chain.
        let mut q = SpjQuery::new("snow");
        q.add_join(JoinEdge::new("fact", "mid_fk", "mid", "mid_pk"));
        q.add_join(JoinEdge::new("mid", "leaf_fk", "leaf", "leaf_pk"));
        let plan = LogicalPlan::from_query(&q).unwrap();
        assert_eq!(plan.node_count(), 5);
        // Root joins fact with the (mid ⋈ leaf) subtree.
        assert!(matches!(&plan.op, PlanOp::Join { edge } if edge.fact_table == "fact"));
        let right = &plan.children[1];
        assert!(matches!(&right.op, PlanOp::Join { edge } if edge.fact_table == "mid"));
    }

    #[test]
    fn disconnected_join_graph_is_rejected() {
        let mut q = SpjQuery::new("bad");
        q.add_join(JoinEdge::new("a", "b_fk", "b", "b_pk"));
        q.add_join(JoinEdge::new("c", "d_fk", "d", "d_pk"));
        assert!(LogicalPlan::from_query(&q).is_err());
    }

    #[test]
    fn empty_query_is_rejected() {
        let q = SpjQuery::new("empty");
        assert!(LogicalPlan::from_query(&q).is_err());
    }

    #[test]
    fn aggregate_plan_has_an_aggregate_root() {
        use crate::exec::{AggExpr, AggregateQuery, ColumnRef};
        let q = AggregateQuery::new(
            figure1_query(),
            vec![AggExpr::count(), AggExpr::avg("S", "A")],
            vec![ColumnRef::new("T", "C")],
        );
        let plan = LogicalPlan::from_aggregate_query(&q).unwrap();
        assert!(matches!(plan.op, PlanOp::Aggregate { .. }));
        assert_eq!(plan.children.len(), 1);
        assert_eq!(plan.node_count(), 8);
        assert!(plan
            .explain()
            .contains("Aggregate(count(*), avg(S.A) by T.C)"));
        // A global aggregate renders without the `by` clause.
        let global = AggregateQuery::new(figure1_query(), vec![AggExpr::count()], vec![]);
        let plan = LogicalPlan::from_aggregate_query(&global).unwrap();
        assert!(plan.explain().contains("Aggregate(count(*))"));
    }

    #[test]
    fn preorder_enumeration() {
        let q = figure1_query();
        let plan = LogicalPlan::from_query(&q).unwrap();
        let nodes = plan.preorder();
        assert_eq!(nodes.len(), plan.node_count());
        assert_eq!(nodes[0].op.name(), plan.op.name());
    }
}
