//! A small SQL parser for the SPJ query dialect HYDRA supports.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT '*' FROM table (',' table)* [WHERE cond (AND cond)*]
//! cond    := qualified op literal          -- filter predicate
//!          | qualified '=' qualified       -- join condition
//! qualified := ident '.' ident
//! op      := '=' | '<' | '<=' | '>' | '>='
//! literal := integer | float | quoted string
//! ```
//!
//! This is exactly the class of queries the paper's example (Figure 1b) and
//! the canonical SPJ workloads on TPC-DS use.  Join conditions are recognized
//! as `fact.fk = dim.pk`; which side is the foreign key is resolved later
//! against the schema by [`SpjQuery::validate`] / the planner, so the parser
//! simply records both orientations and lets the caller normalize.

use crate::error::{QueryError, QueryResult};
use crate::predicate::{ColumnPredicate, CompareOp};
use crate::query::{JoinEdge, SpjQuery};
use hydra_catalog::schema::Schema;
use hydra_catalog::types::Value;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(String),
    Comma,
    Star,
    Dot,
}

fn tokenize(input: &str) -> QueryResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(QueryError::Parse("unterminated string literal".into()));
                }
                i += 1; // closing quote
                tokens.push(Token::Str(s));
            }
            '<' | '>' | '=' => {
                let mut s = String::from(c);
                if (c == '<' || c == '>') && i + 1 < chars.len() && chars[i + 1] == '=' {
                    s.push('=');
                    i += 1;
                }
                tokens.push(Token::Symbol(s));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::from(c);
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Number(s));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::from(c);
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Ident(s));
            }
            other => return Err(QueryError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> QueryResult<()> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(QueryError::Parse(format!(
                "expected `{kw}`, found {other:?}"
            ))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> QueryResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(QueryError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_dot(&mut self) -> QueryResult<()> {
        match self.next() {
            Some(Token::Dot) => Ok(()),
            other => Err(QueryError::Parse(format!("expected `.`, found {other:?}"))),
        }
    }

    /// Parses `table.column`.
    fn qualified(&mut self) -> QueryResult<(String, String)> {
        let table = self.expect_ident()?;
        self.expect_dot()?;
        let column = self.expect_ident()?;
        Ok((table, column))
    }
}

/// Either a filter predicate or a join condition, as parsed.
enum Condition {
    Filter {
        table: String,
        pred: ColumnPredicate,
    },
    Join {
        left: (String, String),
        right: (String, String),
    },
}

/// Parses an SPJ SQL query into an [`SpjQuery`].
///
/// The query name defaults to `"query"`; use [`parse_named_query`] to attach a
/// workload-specific name.
pub fn parse_query(sql: &str) -> QueryResult<SpjQuery> {
    parse_named_query("query", sql)
}

/// Parses an SPJ SQL query, attaching the given name.
pub fn parse_named_query(name: &str, sql: &str) -> QueryResult<SpjQuery> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect_keyword("select")?;
    match p.next() {
        Some(Token::Star) => {}
        other => return Err(QueryError::Parse(format!("expected `*`, found {other:?}"))),
    }
    p.expect_keyword("from")?;

    let mut query = SpjQuery::new(name);
    // Table list.
    loop {
        let table = p.expect_ident()?;
        query.add_table(table);
        match p.peek() {
            Some(Token::Comma) => {
                p.next();
            }
            _ => break,
        }
    }

    // Optional WHERE clause.
    let mut conditions: Vec<Condition> = Vec::new();
    if p.peek_keyword("where") {
        p.next();
        loop {
            let left = p.qualified()?;
            let op = match p.next() {
                Some(Token::Symbol(s)) => s,
                other => {
                    return Err(QueryError::Parse(format!(
                        "expected operator, found {other:?}"
                    )))
                }
            };
            match p.peek() {
                Some(Token::Ident(_)) if op == "=" => {
                    let right = p.qualified()?;
                    conditions.push(Condition::Join { left, right });
                }
                _ => {
                    let value =
                        match p.next() {
                            Some(Token::Number(n)) => {
                                if n.contains('.') {
                                    Value::Double(n.parse().map_err(|_| {
                                        QueryError::Parse(format!("bad number `{n}`"))
                                    })?)
                                } else {
                                    Value::Integer(n.parse().map_err(|_| {
                                        QueryError::Parse(format!("bad number `{n}`"))
                                    })?)
                                }
                            }
                            Some(Token::Str(s)) => Value::Varchar(s),
                            other => {
                                return Err(QueryError::Parse(format!(
                                    "expected literal, found {other:?}"
                                )))
                            }
                        };
                    let cmp = match op.as_str() {
                        "=" => CompareOp::Eq,
                        "<" => CompareOp::Lt,
                        "<=" => CompareOp::Le,
                        ">" => CompareOp::Gt,
                        ">=" => CompareOp::Ge,
                        other => {
                            return Err(QueryError::Parse(format!("unknown operator `{other}`")))
                        }
                    };
                    conditions.push(Condition::Filter {
                        table: left.0,
                        pred: ColumnPredicate::new(left.1, cmp, value),
                    });
                }
            }
            if p.peek_keyword("and") {
                p.next();
            } else {
                break;
            }
        }
    }
    if p.peek().is_some() {
        return Err(QueryError::Parse(format!(
            "trailing tokens at position {}",
            p.pos
        )));
    }

    // Assemble predicates and joins.
    for cond in conditions {
        match cond {
            Condition::Filter { table, pred } => {
                let mut existing = query.predicate_or_true(&table);
                existing.and(pred);
                query.set_predicate(table, existing);
            }
            Condition::Join { left, right } => {
                // Orientation (which side is the FK) is unknown without the
                // schema; record left-as-fact and let `normalize_joins` or
                // validation fix it up.
                query.add_join(JoinEdge::new(left.0, left.1, right.0, right.1));
            }
        }
    }
    Ok(query)
}

/// Re-orients every join edge of a parsed query so that the foreign-key side
/// is the fact table, using the schema's declared foreign keys.
pub fn normalize_joins(query: &mut SpjQuery, schema: &Schema) -> QueryResult<()> {
    for edge in &mut query.joins {
        let fact_has_fk = schema
            .table(&edge.fact_table)
            .and_then(|t| t.foreign_key_on(&edge.fk_column))
            .map(|fk| {
                fk.referenced_table == edge.dim_table && fk.referenced_column == edge.pk_column
            })
            .unwrap_or(false);
        if fact_has_fk {
            continue;
        }
        // Try the flipped orientation.
        let dim_has_fk = schema
            .table(&edge.dim_table)
            .and_then(|t| t.foreign_key_on(&edge.pk_column))
            .map(|fk| {
                fk.referenced_table == edge.fact_table && fk.referenced_column == edge.fk_column
            })
            .unwrap_or(false);
        if dim_has_fk {
            *edge = JoinEdge::new(
                edge.dim_table.clone(),
                edge.pk_column.clone(),
                edge.fact_table.clone(),
                edge.fk_column.clone(),
            );
        } else {
            return Err(QueryError::Unsupported(format!(
                "join `{}` does not follow a declared foreign key in either direction",
                edge.to_sql()
            )));
        }
    }
    Ok(())
}

/// Parses a query and normalizes its join orientations against a schema in a
/// single call.
pub fn parse_query_for_schema(name: &str, sql: &str, schema: &Schema) -> QueryResult<SpjQuery> {
    let mut q = parse_named_query(name, sql)?;
    normalize_joins(&mut q, schema)?;
    q.validate(schema)?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;

    const FIG1_SQL: &str = "select * from R, S, T \
        where R.S_fk = S.S_pk and R.T_fk = T.T_pk \
        and S.A >= 20 and S.A < 60 and T.C >= 2 and T.C < 3";

    fn toy_schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
            })
            .table("T", |t| {
                t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)),
                    )
            })
            .table("R", |t| {
                t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                    .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn parse_figure1_query() {
        let q = parse_query(FIG1_SQL).unwrap();
        assert_eq!(q.tables, vec!["R", "S", "T"]);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.predicate("S").unwrap().conjuncts().len(), 2);
        assert_eq!(q.predicate("T").unwrap().conjuncts().len(), 2);
        assert!(q.predicate("R").is_none());
    }

    #[test]
    fn parse_and_validate_against_schema() {
        let schema = toy_schema();
        let q = parse_query_for_schema("fig1", FIG1_SQL, &schema).unwrap();
        assert!(q.validate(&schema).is_ok());
        assert_eq!(q.root_table().unwrap(), "R");
    }

    #[test]
    fn join_orientation_is_normalized() {
        // Join written dim-first: S.S_pk = R.S_fk.
        let schema = toy_schema();
        let sql = "select * from R, S where S.S_pk = R.S_fk";
        let q = parse_query_for_schema("q", sql, &schema).unwrap();
        assert_eq!(q.joins[0].fact_table, "R");
        assert_eq!(q.joins[0].fk_column, "S_fk");
        assert_eq!(q.joins[0].dim_table, "S");
    }

    #[test]
    fn parse_string_and_float_literals() {
        let q = parse_query(
            "select * from item where item.i_category = 'Music' and item.i_price >= 9.99",
        )
        .unwrap();
        let pred = q.predicate("item").unwrap();
        assert_eq!(pred.conjuncts().len(), 2);
        assert_eq!(pred.conjuncts()[0].value, Value::str("Music"));
        assert_eq!(pred.conjuncts()[1].value, Value::Double(9.99));
    }

    #[test]
    fn parse_negative_numbers() {
        let q = parse_query("select * from t where t.x >= -5").unwrap();
        assert_eq!(
            q.predicate("t").unwrap().conjuncts()[0].value,
            Value::Integer(-5)
        );
    }

    #[test]
    fn parse_no_where_clause() {
        let q = parse_query("select * from item").unwrap();
        assert_eq!(q.tables, vec!["item"]);
        assert!(q.joins.is_empty());
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("delete from x").is_err());
        assert!(parse_query("select x from t").is_err());
        assert!(parse_query("select * from t where t.x >").is_err());
        assert!(parse_query("select * from t where t.x >= 'unterminated").is_err());
        assert!(parse_query("select * from t where x = 1").is_err()); // unqualified column
        assert!(parse_query("select * from t extra garbage !").is_err());
    }

    #[test]
    fn non_fk_join_rejected_by_normalization() {
        let schema = toy_schema();
        let sql = "select * from S, T where S.A = T.C";
        assert!(parse_query_for_schema("q", sql, &schema).is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("SELECT * FROM R, S WHERE R.S_fk = S.S_pk AND S.A < 10").unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1);
    }
}
