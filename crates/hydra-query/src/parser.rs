//! A small SQL parser for the SPJ query dialect HYDRA supports.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT select FROM table (',' table)*
//!            [WHERE cond (AND cond)*]
//!            [GROUP BY qualified (',' qualified)*]
//! select  := '*' | item (',' item)*
//! item    := COUNT '(' '*' ')'             -- aggregate select list
//!          | SUM '(' qualified ')'
//!          | AVG '(' qualified ')'
//!          | qualified                      -- must appear in GROUP BY
//! cond    := qualified op literal           -- filter predicate
//!          | qualified '=' qualified        -- join condition
//! qualified := ident '.' ident
//! op      := '=' | '<' | '<=' | '>' | '>='
//! literal := integer | float | quoted string
//! ```
//!
//! `select *` queries are the paper's Figure-1b SPJ class and parse into
//! [`SpjQuery`]; aggregate select lists parse into
//! [`AggregateQuery`] and are what the summary-direct
//! executor answers from block cardinalities alone.  Every parse error
//! carries a [`Span`] pointing at the offending bytes of the input — a select
//! list the dialect cannot represent is *rejected with a located error*,
//! never panicked on and never silently reinterpreted.
//!
//! Join conditions are recognized as `fact.fk = dim.pk`; which side is the
//! foreign key is resolved later against the schema by
//! [`normalize_joins`] / [`SpjQuery::validate`], so the parser simply records
//! both orientations and lets the caller normalize.

use crate::error::{QueryError, QueryResult, Span};
use crate::exec::{AggExpr, AggFunc, AggregateQuery, ColumnRef};
use crate::predicate::{ColumnPredicate, CompareOp};
use crate::query::{JoinEdge, SpjQuery};
use hydra_catalog::schema::Schema;
use hydra_catalog::types::Value;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(String),
    Comma,
    Star,
    Dot,
    LParen,
    RParen,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Number(n) => format!("number `{n}`"),
            Token::Str(s) => format!("string '{s}'"),
            Token::Symbol(s) => format!("`{s}`"),
            Token::Comma => "`,`".to_string(),
            Token::Star => "`*`".to_string(),
            Token::Dot => "`.`".to_string(),
            Token::LParen => "`(`".to_string(),
            Token::RParen => "`)`".to_string(),
        }
    }
}

/// A token plus the byte range of the input it was lexed from.
#[derive(Debug, Clone)]
struct Tok {
    token: Token,
    span: Span,
}

fn tokenize(input: &str) -> QueryResult<Vec<Tok>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut byte = 0usize;
    let mut push = |token: Token, start: usize, end: usize| {
        tokens.push(Tok {
            token,
            span: Span::new(start, end),
        })
    };
    while i < chars.len() {
        let c = chars[i];
        let start = byte;
        match c {
            c if c.is_whitespace() => {
                byte += c.len_utf8();
                i += 1;
            }
            ',' => {
                push(Token::Comma, start, start + 1);
                byte += 1;
                i += 1;
            }
            '*' => {
                push(Token::Star, start, start + 1);
                byte += 1;
                i += 1;
            }
            '.' => {
                push(Token::Dot, start, start + 1);
                byte += 1;
                i += 1;
            }
            '(' => {
                push(Token::LParen, start, start + 1);
                byte += 1;
                i += 1;
            }
            ')' => {
                push(Token::RParen, start, start + 1);
                byte += 1;
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                byte += 1;
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    byte += chars[i].len_utf8();
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(QueryError::parse_at(
                        "unterminated string literal",
                        Span::new(start, byte),
                    ));
                }
                byte += 1; // closing quote
                i += 1;
                push(Token::Str(s), start, byte);
            }
            '<' | '>' | '=' => {
                let mut s = String::from(c);
                byte += 1;
                i += 1;
                if (c == '<' || c == '>') && i < chars.len() && chars[i] == '=' {
                    s.push('=');
                    byte += 1;
                    i += 1;
                }
                push(Token::Symbol(s), start, byte);
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::from(c);
                byte += 1;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    s.push(chars[i]);
                    byte += 1;
                    i += 1;
                }
                push(Token::Number(s), start, byte);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::from(c);
                byte += c.len_utf8();
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    byte += chars[i].len_utf8();
                    i += 1;
                }
                push(Token::Ident(s), start, byte);
            }
            other => {
                return Err(QueryError::parse_at(
                    format!("unexpected character `{other}`"),
                    Span::new(start, start + other.len_utf8()),
                ))
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    /// Span of the current token, or an empty span at end of input.
    fn here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or(Span::new(self.input_len, self.input_len))
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or(Span::new(self.input_len, self.input_len))
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, expected: &str) -> QueryError {
        let found = self
            .peek()
            .map(Token::describe)
            .unwrap_or_else(|| "end of input".to_string());
        QueryError::parse_at(format!("expected {expected}, found {found}"), self.here())
    }

    fn expect_keyword(&mut self, kw: &str) -> QueryResult<()> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err_here(&format!("`{kw}`"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> QueryResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err_here("an identifier")),
        }
    }

    fn expect(&mut self, token: Token) -> QueryResult<()> {
        if self.peek() == Some(&token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_here(&token.describe()))
        }
    }

    /// Parses `table.column`.
    fn qualified(&mut self) -> QueryResult<(String, String, Span)> {
        let start = self.here();
        let table = self.expect_ident()?;
        if self.peek() != Some(&Token::Dot) {
            return Err(QueryError::parse_at(
                format!(
                    "column references must be qualified as `table.column` (got bare `{table}`)"
                ),
                Span::new(start.start, self.prev_span().end),
            ));
        }
        self.pos += 1;
        let column = self.expect_ident()?;
        Ok((table, column, Span::new(start.start, self.prev_span().end)))
    }
}

/// One parsed select-list item with its source span.
enum SelectItem {
    Aggregate(AggExpr),
    /// A plain qualified column — legal only when it appears in GROUP BY.
    Column(ColumnRef, Span),
}

/// The parsed select list.
enum SelectList {
    Star,
    Items(Vec<SelectItem>),
}

/// Either a filter predicate or a join condition, as parsed.
enum Condition {
    Filter {
        table: String,
        pred: ColumnPredicate,
    },
    Join {
        left: (String, String),
        right: (String, String),
    },
}

/// Everything one `SELECT` statement parses into, before it is narrowed to
/// an [`SpjQuery`] or an [`AggregateQuery`].
struct ParsedQuery {
    spj: SpjQuery,
    select: SelectList,
    group_by: Vec<ColumnRef>,
}

fn parse_select_item(p: &mut Parser) -> QueryResult<SelectItem> {
    let start = p.here();
    let ident = p.expect_ident()?;
    // An aggregate function call?
    if p.peek() == Some(&Token::LParen) {
        let func = match ident.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            other => {
                return Err(QueryError::parse_at(
                    format!("unknown aggregate function `{other}` (supported: count, sum, avg)"),
                    start,
                ))
            }
        };
        p.pos += 1; // consume '('
        let expr = match func {
            AggFunc::Count => {
                if p.peek() == Some(&Token::Star) {
                    p.pos += 1;
                } else {
                    return Err(QueryError::parse_at(
                        "count takes `*` (per-column COUNT is not representable)",
                        p.here(),
                    ));
                }
                AggExpr::count()
            }
            AggFunc::Sum | AggFunc::Avg => {
                let (table, column, _) = p.qualified()?;
                AggExpr {
                    func,
                    target: Some(ColumnRef::new(table, column)),
                }
            }
        };
        p.expect(Token::RParen)?;
        return Ok(SelectItem::Aggregate(expr));
    }
    // A plain qualified column.
    if p.peek() != Some(&Token::Dot) {
        return Err(QueryError::parse_at(
            format!(
                "select list items must be `*`, count(*), sum(table.column), \
                 avg(table.column) or a GROUP BY column (got bare `{ident}`)"
            ),
            Span::new(start.start, p.prev_span().end),
        ));
    }
    p.pos += 1;
    let column = p.expect_ident()?;
    let span = Span::new(start.start, p.prev_span().end);
    Ok(SelectItem::Column(ColumnRef::new(ident, column), span))
}

/// Parses a full `SELECT` statement into its SPJ body, select list and
/// GROUP BY clause.
fn parse_statement(name: &str, sql: &str) -> QueryResult<ParsedQuery> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: sql.len(),
    };
    p.expect_keyword("select")?;

    // Select list.
    let select = if p.peek() == Some(&Token::Star) {
        p.pos += 1;
        SelectList::Star
    } else {
        let mut items = vec![parse_select_item(&mut p)?];
        while p.peek() == Some(&Token::Comma) {
            p.pos += 1;
            if p.peek() == Some(&Token::Star) {
                return Err(QueryError::parse_at(
                    "`*` cannot be mixed with an aggregate select list",
                    p.here(),
                ));
            }
            items.push(parse_select_item(&mut p)?);
        }
        SelectList::Items(items)
    };

    p.expect_keyword("from")?;
    let mut query = SpjQuery::new(name);
    // Table list.
    loop {
        let table = p.expect_ident()?;
        query.add_table(table);
        match p.peek() {
            Some(Token::Comma) => {
                p.next();
            }
            _ => break,
        }
    }

    // Optional WHERE clause.
    let mut conditions: Vec<Condition> = Vec::new();
    if p.peek_keyword("where") {
        p.next();
        loop {
            let left = p.qualified()?;
            let op = match p.peek() {
                Some(Token::Symbol(s)) => {
                    let s = s.clone();
                    p.pos += 1;
                    s
                }
                _ => return Err(p.err_here("a comparison operator")),
            };
            match p.peek() {
                Some(Token::Ident(_)) if op == "=" => {
                    let right = p.qualified()?;
                    conditions.push(Condition::Join {
                        left: (left.0, left.1),
                        right: (right.0, right.1),
                    });
                }
                _ => {
                    let literal_span = p.here();
                    let value = match p.next() {
                        Some(Token::Number(n)) => {
                            if n.contains('.') {
                                Value::Double(n.parse().map_err(|_| {
                                    QueryError::parse_at(format!("bad number `{n}`"), literal_span)
                                })?)
                            } else {
                                Value::Integer(n.parse().map_err(|_| {
                                    QueryError::parse_at(format!("bad number `{n}`"), literal_span)
                                })?)
                            }
                        }
                        Some(Token::Str(s)) => Value::Varchar(s),
                        _ => {
                            return Err(QueryError::parse_at(
                                "expected a literal (number or 'string')",
                                literal_span,
                            ))
                        }
                    };
                    let cmp = match op.as_str() {
                        "=" => CompareOp::Eq,
                        "<" => CompareOp::Lt,
                        "<=" => CompareOp::Le,
                        ">" => CompareOp::Gt,
                        ">=" => CompareOp::Ge,
                        other => {
                            return Err(QueryError::parse_at(
                                format!("unknown operator `{other}`"),
                                literal_span,
                            ))
                        }
                    };
                    conditions.push(Condition::Filter {
                        table: left.0,
                        pred: ColumnPredicate::new(left.1, cmp, value),
                    });
                }
            }
            if p.peek_keyword("and") {
                p.next();
            } else {
                break;
            }
        }
    }

    // Optional GROUP BY clause.
    let mut group_by: Vec<ColumnRef> = Vec::new();
    if p.peek_keyword("group") {
        p.next();
        p.expect_keyword("by")?;
        loop {
            let (table, column, _) = p.qualified()?;
            group_by.push(ColumnRef::new(table, column));
            if p.peek() == Some(&Token::Comma) {
                p.pos += 1;
            } else {
                break;
            }
        }
    }

    if p.peek().is_some() {
        return Err(QueryError::parse_at(
            format!(
                "trailing {} after the end of the query",
                p.peek().map(Token::describe).unwrap_or_default()
            ),
            p.here(),
        ));
    }

    // Assemble predicates and joins.
    for cond in conditions {
        match cond {
            Condition::Filter { table, pred } => {
                let mut existing = query.predicate_or_true(&table);
                existing.and(pred);
                query.set_predicate(table, existing);
            }
            Condition::Join { left, right } => {
                // Orientation (which side is the FK) is unknown without the
                // schema; record left-as-fact and let `normalize_joins` or
                // validation fix it up.
                query.add_join(JoinEdge::new(left.0, left.1, right.0, right.1));
            }
        }
    }
    Ok(ParsedQuery {
        spj: query,
        select,
        group_by,
    })
}

/// Parses an SPJ (`select *`) SQL query into an [`SpjQuery`].
///
/// The query name defaults to `"query"`; use [`parse_named_query`] to attach
/// a workload-specific name.  Aggregate select lists are rejected — parse
/// those with [`parse_aggregate_query`].
pub fn parse_query(sql: &str) -> QueryResult<SpjQuery> {
    parse_named_query("query", sql)
}

/// Parses an SPJ (`select *`) SQL query, attaching the given name.
pub fn parse_named_query(name: &str, sql: &str) -> QueryResult<SpjQuery> {
    let parsed = parse_statement(name, sql)?;
    match parsed.select {
        SelectList::Star if parsed.group_by.is_empty() => Ok(parsed.spj),
        SelectList::Star => Err(QueryError::Unsupported(
            "GROUP BY requires an aggregate select list (parse with parse_aggregate_query)".into(),
        )),
        SelectList::Items(_) => Err(QueryError::Unsupported(
            "aggregate select list; parse with parse_aggregate_query".into(),
        )),
    }
}

/// Parses an aggregate SQL query (`select count(*), sum(t.x) ... group by`)
/// into an [`AggregateQuery`].
pub fn parse_aggregate_query(sql: &str) -> QueryResult<AggregateQuery> {
    parse_named_aggregate_query("query", sql)
}

/// Parses an aggregate SQL query, attaching the given name.
///
/// Select lists the dialect cannot represent — bare `*`, unknown functions,
/// unqualified columns, plain columns missing from GROUP BY — are rejected
/// with an error spanning the offending bytes.
pub fn parse_named_aggregate_query(name: &str, sql: &str) -> QueryResult<AggregateQuery> {
    let parsed = parse_statement(name, sql)?;
    let items = match parsed.select {
        SelectList::Star => {
            return Err(QueryError::Unsupported(
                "`select *` produces tuples, not aggregates; parse with parse_query or \
                 stream the relation instead"
                    .into(),
            ))
        }
        SelectList::Items(items) => items,
    };
    let mut aggregates = Vec::new();
    for item in &items {
        match item {
            SelectItem::Aggregate(expr) => aggregates.push(expr.clone()),
            SelectItem::Column(col, span) => {
                if !parsed.group_by.contains(col) {
                    return Err(QueryError::parse_at(
                        format!("select column `{col}` must appear in GROUP BY"),
                        *span,
                    ));
                }
            }
        }
    }
    if aggregates.is_empty() {
        return Err(QueryError::parse(
            "select list has no aggregate function (count/sum/avg)",
        ));
    }
    Ok(AggregateQuery::new(parsed.spj, aggregates, parsed.group_by))
}

/// Parses an aggregate query, normalizes its join orientations and validates
/// it against a schema in one call.
pub fn parse_aggregate_query_for_schema(
    name: &str,
    sql: &str,
    schema: &Schema,
) -> QueryResult<AggregateQuery> {
    let mut q = parse_named_aggregate_query(name, sql)?;
    normalize_joins(&mut q.spj, schema)?;
    q.validate(schema)?;
    Ok(q)
}

/// Re-orients every join edge of a parsed query so that the foreign-key side
/// is the fact table, using the schema's declared foreign keys.
pub fn normalize_joins(query: &mut SpjQuery, schema: &Schema) -> QueryResult<()> {
    for edge in &mut query.joins {
        let fact_has_fk = schema
            .table(&edge.fact_table)
            .and_then(|t| t.foreign_key_on(&edge.fk_column))
            .map(|fk| {
                fk.referenced_table == edge.dim_table && fk.referenced_column == edge.pk_column
            })
            .unwrap_or(false);
        if fact_has_fk {
            continue;
        }
        // Try the flipped orientation.
        let dim_has_fk = schema
            .table(&edge.dim_table)
            .and_then(|t| t.foreign_key_on(&edge.pk_column))
            .map(|fk| {
                fk.referenced_table == edge.fact_table && fk.referenced_column == edge.fk_column
            })
            .unwrap_or(false);
        if dim_has_fk {
            *edge = JoinEdge::new(
                edge.dim_table.clone(),
                edge.pk_column.clone(),
                edge.fact_table.clone(),
                edge.fk_column.clone(),
            );
        } else {
            return Err(QueryError::Unsupported(format!(
                "join `{}` does not follow a declared foreign key in either direction",
                edge.to_sql()
            )));
        }
    }
    Ok(())
}

/// Parses a query and normalizes its join orientations against a schema in a
/// single call.
pub fn parse_query_for_schema(name: &str, sql: &str, schema: &Schema) -> QueryResult<SpjQuery> {
    let mut q = parse_named_query(name, sql)?;
    normalize_joins(&mut q, schema)?;
    q.validate(schema)?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;

    const FIG1_SQL: &str = "select * from R, S, T \
        where R.S_fk = S.S_pk and R.T_fk = T.T_pk \
        and S.A >= 20 and S.A < 60 and T.C >= 2 and T.C < 3";

    fn toy_schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
            })
            .table("T", |t| {
                t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)),
                    )
            })
            .table("R", |t| {
                t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                    .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn parse_figure1_query() {
        let q = parse_query(FIG1_SQL).unwrap();
        assert_eq!(q.tables, vec!["R", "S", "T"]);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.predicate("S").unwrap().conjuncts().len(), 2);
        assert_eq!(q.predicate("T").unwrap().conjuncts().len(), 2);
        assert!(q.predicate("R").is_none());
    }

    #[test]
    fn parse_and_validate_against_schema() {
        let schema = toy_schema();
        let q = parse_query_for_schema("fig1", FIG1_SQL, &schema).unwrap();
        assert!(q.validate(&schema).is_ok());
        assert_eq!(q.root_table().unwrap(), "R");
    }

    #[test]
    fn join_orientation_is_normalized() {
        // Join written dim-first: S.S_pk = R.S_fk.
        let schema = toy_schema();
        let sql = "select * from R, S where S.S_pk = R.S_fk";
        let q = parse_query_for_schema("q", sql, &schema).unwrap();
        assert_eq!(q.joins[0].fact_table, "R");
        assert_eq!(q.joins[0].fk_column, "S_fk");
        assert_eq!(q.joins[0].dim_table, "S");
    }

    #[test]
    fn parse_string_and_float_literals() {
        let q = parse_query(
            "select * from item where item.i_category = 'Music' and item.i_price >= 9.99",
        )
        .unwrap();
        let pred = q.predicate("item").unwrap();
        assert_eq!(pred.conjuncts().len(), 2);
        assert_eq!(pred.conjuncts()[0].value, Value::str("Music"));
        assert_eq!(pred.conjuncts()[1].value, Value::Double(9.99));
    }

    #[test]
    fn parse_negative_numbers() {
        let q = parse_query("select * from t where t.x >= -5").unwrap();
        assert_eq!(
            q.predicate("t").unwrap().conjuncts()[0].value,
            Value::Integer(-5)
        );
    }

    #[test]
    fn parse_no_where_clause() {
        let q = parse_query("select * from item").unwrap();
        assert_eq!(q.tables, vec!["item"]);
        assert!(q.joins.is_empty());
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("delete from x").is_err());
        assert!(parse_query("select x from t").is_err());
        assert!(parse_query("select * from t where t.x >").is_err());
        assert!(parse_query("select * from t where t.x >= 'unterminated").is_err());
        assert!(parse_query("select * from t where x = 1").is_err()); // unqualified column
        assert!(parse_query("select * from t extra garbage !").is_err());
    }

    #[test]
    fn non_fk_join_rejected_by_normalization() {
        let schema = toy_schema();
        let sql = "select * from S, T where S.A = T.C";
        assert!(parse_query_for_schema("q", sql, &schema).is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("SELECT * FROM R, S WHERE R.S_fk = S.S_pk AND S.A < 10").unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1);
    }

    // ---- aggregate grammar -------------------------------------------------

    #[test]
    fn parse_aggregates_with_group_by() {
        let q = parse_aggregate_query(
            "select count(*), sum(R.S_fk), avg(S.A) from R, S \
             where R.S_fk = S.S_pk and S.A >= 20 group by S.A, T.C",
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 3);
        assert_eq!(q.aggregates[0], AggExpr::count());
        assert_eq!(q.aggregates[1], AggExpr::sum("R", "S_fk"));
        assert_eq!(q.aggregates[2], AggExpr::avg("S", "A"));
        assert_eq!(
            q.group_by,
            vec![ColumnRef::new("S", "A"), ColumnRef::new("T", "C")]
        );
        assert_eq!(q.spj.joins.len(), 1);
        assert!(q.to_sql().contains("group by S.A, T.C"));
    }

    #[test]
    fn parse_plain_select_column_requires_group_by_membership() {
        // In GROUP BY: fine.
        let q = parse_aggregate_query("select S.A, count(*) from S group by S.A").unwrap();
        assert_eq!(q.aggregates, vec![AggExpr::count()]);
        assert_eq!(q.group_by, vec![ColumnRef::new("S", "A")]);

        // Not in GROUP BY: rejected with a span pointing at the column.
        let sql = "select S.A, count(*) from S group by S.B";
        let err = parse_aggregate_query(sql).unwrap_err();
        let span = err.span().expect("error must carry a span");
        assert_eq!(&sql[span.start..span.end], "S.A");
        assert!(err.to_string().contains("must appear in GROUP BY"));
    }

    #[test]
    fn aggregate_keywords_are_case_insensitive() {
        let q = parse_aggregate_query("SELECT COUNT(*), SUM(S.A) FROM S GROUP BY S.B").unwrap();
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn unrepresentable_select_lists_are_spanned_errors() {
        // Unknown function, span on the function name.
        let sql = "select median(S.A) from S";
        let err = parse_aggregate_query(sql).unwrap_err();
        let span = err.span().unwrap();
        assert_eq!(&sql[span.start..span.end], "median");

        // COUNT of a column.
        let err = parse_aggregate_query("select count(S.A) from S").unwrap_err();
        assert!(err.to_string().contains("count takes `*`"));
        assert!(err.span().is_some());

        // Bare (unqualified) select column.
        let err = parse_aggregate_query("select A from S").unwrap_err();
        assert!(err.span().is_some());
        assert!(err.to_string().contains("select list items"));

        // `*` mixed into an aggregate list.
        assert!(parse_aggregate_query("select count(*), * from S").is_err());

        // Missing closing paren.
        let err = parse_aggregate_query("select sum(S.A from S").unwrap_err();
        assert!(err.span().is_some());

        // No aggregate at all.
        let err = parse_aggregate_query("select S.A from S group by S.A").unwrap_err();
        assert!(err.to_string().contains("no aggregate function"));

        // GROUP BY with a `select *` list.
        assert!(matches!(
            parse_query("select * from S group by S.A"),
            Err(QueryError::Unsupported(_))
        ));
        assert!(matches!(
            parse_aggregate_query("select * from S"),
            Err(QueryError::Unsupported(_))
        ));

        // Aggregate list handed to the SPJ entry point.
        assert!(matches!(
            parse_query("select count(*) from S"),
            Err(QueryError::Unsupported(_))
        ));

        // Malformed GROUP BY clauses.
        assert!(parse_aggregate_query("select count(*) from S group").is_err());
        assert!(parse_aggregate_query("select count(*) from S group by").is_err());
        assert!(parse_aggregate_query("select count(*) from S group by A").is_err());
        assert!(parse_aggregate_query("select count(*) from S group by S.A,").is_err());
    }

    #[test]
    fn spans_point_at_offending_bytes() {
        let sql = "select * from t where t.x > !";
        let err = parse_query(sql).unwrap_err();
        let span = err.span().expect("span recorded");
        assert_eq!(&sql[span.start..span.end], "!");

        let sql = "select * from t where t.x >= 'open";
        let err = parse_query(sql).unwrap_err();
        let span = err.span().unwrap();
        assert_eq!(span.start, sql.find('\'').unwrap());

        // End-of-input errors use an empty span at the end.
        let sql = "select * from";
        let err = parse_query(sql).unwrap_err();
        let span = err.span().unwrap();
        assert_eq!((span.start, span.end), (sql.len(), sql.len()));
    }

    #[test]
    fn aggregate_query_validates_against_schema() {
        let schema = toy_schema();
        let q = parse_aggregate_query_for_schema(
            "agg",
            "select count(*), avg(S.A) from R, S where S.S_pk = R.S_fk group by S.A",
            &schema,
        )
        .unwrap();
        // Join normalized even when written dim-first.
        assert_eq!(q.spj.joins[0].fact_table, "R");
        assert_eq!(q.spj.root_table().unwrap(), "R");

        // Unknown column caught by validation.
        assert!(
            parse_aggregate_query_for_schema("agg", "select sum(S.missing) from S", &schema)
                .is_err()
        );
    }
}
