//! The SPJ query model.

use crate::error::{QueryError, QueryResult};
use crate::predicate::TablePredicate;
use hydra_catalog::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A key/foreign-key equi-join edge: `fact.fk_column = dim.pk_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// The referencing (fact-side) table.
    pub fact_table: String,
    /// The foreign-key column in the fact table.
    pub fk_column: String,
    /// The referenced (dimension-side) table.
    pub dim_table: String,
    /// The primary-key column in the dimension table.
    pub pk_column: String,
}

impl JoinEdge {
    /// Creates a join edge.
    pub fn new(
        fact_table: impl Into<String>,
        fk_column: impl Into<String>,
        dim_table: impl Into<String>,
        pk_column: impl Into<String>,
    ) -> Self {
        JoinEdge {
            fact_table: fact_table.into(),
            fk_column: fk_column.into(),
            dim_table: dim_table.into(),
            pk_column: pk_column.into(),
        }
    }

    /// SQL rendering of the join condition.
    pub fn to_sql(&self) -> String {
        format!(
            "{}.{} = {}.{}",
            self.fact_table, self.fk_column, self.dim_table, self.pk_column
        )
    }
}

/// A select-project-join query: a set of tables, per-table conjunctive
/// predicates, and FK equi-joins between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpjQuery {
    /// Query name (used in reports and constraint labels).
    pub name: String,
    /// Referenced tables, in FROM-clause order.
    pub tables: Vec<String>,
    /// Per-table filter predicates.
    pub predicates: BTreeMap<String, TablePredicate>,
    /// FK join edges.
    pub joins: Vec<JoinEdge>,
}

impl SpjQuery {
    /// Creates an empty query over no tables.
    pub fn new(name: impl Into<String>) -> Self {
        SpjQuery {
            name: name.into(),
            tables: Vec::new(),
            predicates: BTreeMap::new(),
            joins: Vec::new(),
        }
    }

    /// Adds a table to the FROM clause (idempotent).
    pub fn add_table(&mut self, table: impl Into<String>) -> &mut Self {
        let table = table.into();
        if !self.tables.contains(&table) {
            self.tables.push(table);
        }
        self
    }

    /// Sets (replaces) the filter predicate on a table.
    pub fn set_predicate(&mut self, table: impl Into<String>, pred: TablePredicate) -> &mut Self {
        let table = table.into();
        self.add_table(table.clone());
        self.predicates.insert(table, pred);
        self
    }

    /// Adds a join edge.
    pub fn add_join(&mut self, edge: JoinEdge) -> &mut Self {
        self.add_table(edge.fact_table.clone());
        self.add_table(edge.dim_table.clone());
        self.joins.push(edge);
        self
    }

    /// The filter predicate on a table, if any.
    pub fn predicate(&self, table: &str) -> Option<&TablePredicate> {
        self.predicates.get(table)
    }

    /// The filter predicate on a table, or the trivial predicate.
    pub fn predicate_or_true(&self, table: &str) -> TablePredicate {
        self.predicates.get(table).cloned().unwrap_or_default()
    }

    /// Join edges whose fact side is the given table.
    pub fn joins_from(&self, table: &str) -> Vec<&JoinEdge> {
        self.joins
            .iter()
            .filter(|j| j.fact_table == table)
            .collect()
    }

    /// Validates the query against a schema: tables and predicate columns
    /// exist, and every join edge follows a declared foreign key.
    pub fn validate(&self, schema: &Schema) -> QueryResult<()> {
        for t in &self.tables {
            schema
                .table(t)
                .ok_or_else(|| QueryError::UnknownReference(format!("table `{t}`")))?;
        }
        for (t, pred) in &self.predicates {
            let table = schema
                .table(t)
                .ok_or_else(|| QueryError::UnknownReference(format!("table `{t}`")))?;
            for c in pred.conjuncts() {
                if table.column(&c.column).is_none() {
                    return Err(QueryError::UnknownReference(format!(
                        "column `{}`.`{}`",
                        t, c.column
                    )));
                }
            }
        }
        for j in &self.joins {
            let fact = schema
                .table(&j.fact_table)
                .ok_or_else(|| QueryError::UnknownReference(format!("table `{}`", j.fact_table)))?;
            let fk = fact.foreign_key_on(&j.fk_column).ok_or_else(|| {
                QueryError::Unsupported(format!(
                    "join `{}` does not follow a declared foreign key",
                    j.to_sql()
                ))
            })?;
            if fk.referenced_table != j.dim_table || fk.referenced_column != j.pk_column {
                return Err(QueryError::Unsupported(format!(
                    "join `{}` does not match foreign key `{}`.`{}` -> `{}`.`{}`",
                    j.to_sql(),
                    j.fact_table,
                    j.fk_column,
                    fk.referenced_table,
                    fk.referenced_column
                )));
            }
        }
        Ok(())
    }

    /// Identifies the *root* fact table of the join graph: the table that is
    /// never on the dimension side of a join.  For star and snowflake SPJ
    /// queries there is exactly one; single-table queries return that table.
    pub fn root_table(&self) -> QueryResult<&str> {
        if self.joins.is_empty() {
            return self
                .tables
                .first()
                .map(String::as_str)
                .ok_or_else(|| QueryError::Unsupported("query references no tables".into()));
        }
        let mut candidates: Vec<&str> = self.tables.iter().map(String::as_str).collect();
        candidates.retain(|t| !self.joins.iter().any(|j| j.dim_table == *t));
        // Also require the candidate to actually appear on a fact side.
        candidates.retain(|t| self.joins.iter().any(|j| j.fact_table == *t));
        match candidates.len() {
            1 => Ok(candidates[0]),
            0 => Err(QueryError::Unsupported(
                "join graph has no root (cyclic join graph?)".into(),
            )),
            _ => Err(QueryError::Unsupported(format!(
                "join graph has multiple roots: {candidates:?}"
            ))),
        }
    }

    /// Renders the query as SQL text.
    pub fn to_sql(&self) -> String {
        let mut where_clauses: Vec<String> = self.joins.iter().map(|j| j.to_sql()).collect();
        for (t, p) in &self.predicates {
            if !p.is_trivial() {
                where_clauses.push(p.to_sql(t));
            }
        }
        let where_part = if where_clauses.is_empty() {
            String::new()
        } else {
            format!(" where {}", where_clauses.join(" and "))
        };
        format!("select * from {}{}", self.tables.join(", "), where_part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColumnPredicate, CompareOp};
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;

    fn toy_schema() -> Schema {
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
            })
            .table("T", |t| {
                t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)),
                    )
            })
            .table("R", |t| {
                t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                    .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
            })
            .build()
            .unwrap()
    }

    fn figure1_query() -> SpjQuery {
        let mut q = SpjQuery::new("fig1");
        q.add_join(JoinEdge::new("R", "S_fk", "S", "S_pk"));
        q.add_join(JoinEdge::new("R", "T_fk", "T", "T_pk"));
        q.set_predicate(
            "S",
            TablePredicate::always_true()
                .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
                .with(ColumnPredicate::new("A", CompareOp::Lt, 60)),
        );
        q.set_predicate(
            "T",
            TablePredicate::always_true()
                .with(ColumnPredicate::new("C", CompareOp::Ge, 2))
                .with(ColumnPredicate::new("C", CompareOp::Lt, 3)),
        );
        q
    }

    #[test]
    fn build_and_validate_figure1() {
        let q = figure1_query();
        assert_eq!(q.tables, vec!["R", "S", "T"]);
        assert!(q.validate(&toy_schema()).is_ok());
        assert_eq!(q.root_table().unwrap(), "R");
        assert_eq!(q.joins_from("R").len(), 2);
        assert!(q.predicate("S").is_some());
        assert!(q.predicate("R").is_none());
        assert!(q.predicate_or_true("R").is_trivial());
    }

    #[test]
    fn validation_catches_unknown_table() {
        let mut q = figure1_query();
        q.add_table("Missing");
        assert!(matches!(
            q.validate(&toy_schema()),
            Err(QueryError::UnknownReference(_))
        ));
    }

    #[test]
    fn validation_catches_unknown_column() {
        let mut q = figure1_query();
        q.set_predicate(
            "S",
            TablePredicate::always_true().with(ColumnPredicate::new("nope", CompareOp::Eq, 1)),
        );
        assert!(matches!(
            q.validate(&toy_schema()),
            Err(QueryError::UnknownReference(_))
        ));
    }

    #[test]
    fn validation_catches_non_fk_join() {
        let mut q = SpjQuery::new("bad");
        q.add_join(JoinEdge::new("S", "A", "T", "T_pk"));
        assert!(matches!(
            q.validate(&toy_schema()),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn validation_catches_mismatched_fk_target() {
        let mut q = SpjQuery::new("bad");
        q.add_join(JoinEdge::new("R", "S_fk", "T", "T_pk"));
        assert!(matches!(
            q.validate(&toy_schema()),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn root_of_single_table_query() {
        let mut q = SpjQuery::new("single");
        q.add_table("S");
        assert_eq!(q.root_table().unwrap(), "S");
        let empty = SpjQuery::new("none");
        assert!(empty.root_table().is_err());
    }

    #[test]
    fn sql_rendering() {
        let q = figure1_query();
        let sql = q.to_sql();
        assert!(sql.starts_with("select * from R, S, T where"));
        assert!(sql.contains("R.S_fk = S.S_pk"));
        assert!(sql.contains("S.A >= 20"));
        assert!(sql.contains("T.C < 3"));
    }

    #[test]
    fn add_table_is_idempotent() {
        let mut q = SpjQuery::new("q");
        q.add_table("S").add_table("S");
        assert_eq!(q.tables.len(), 1);
    }
}
