//! Predicates: conjunctions of range / equality comparisons on one table.
//!
//! HYDRA's LP formulation needs predicates in *interval normal form*: for each
//! referenced column, a half-open interval `[lo, hi)` on the column's
//! normalized integer axis (see [`hydra_catalog::domain::Domain`]).  The
//! [`TablePredicate::normalized_intervals`] method performs that conversion.

use hydra_catalog::schema::Table;
use hydra_catalog::types::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A single comparison `column op value` on one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnPredicate {
    /// Column name (unqualified; the owning table is implied by the
    /// enclosing [`TablePredicate`]).
    pub column: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Comparison constant.
    pub value: Value,
}

impl ColumnPredicate {
    /// Creates a comparison predicate.
    pub fn new(column: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        ColumnPredicate {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates the comparison for a concrete value (NULL never matches).
    pub fn matches(&self, value: &Value) -> bool {
        if value.is_null() || self.value.is_null() {
            return false;
        }
        match self.op {
            CompareOp::Eq => value == &self.value,
            CompareOp::Lt => value < &self.value,
            CompareOp::Le => value <= &self.value,
            CompareOp::Gt => value > &self.value,
            CompareOp::Ge => value >= &self.value,
        }
    }
}

impl fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

/// A conjunction of [`ColumnPredicate`]s on a single table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TablePredicate {
    conjuncts: Vec<ColumnPredicate>,
}

impl TablePredicate {
    /// The always-true predicate.
    pub fn always_true() -> Self {
        TablePredicate::default()
    }

    /// Builds a predicate from a list of conjuncts.
    pub fn from_conjuncts(conjuncts: Vec<ColumnPredicate>) -> Self {
        TablePredicate { conjuncts }
    }

    /// Adds a conjunct.
    pub fn and(&mut self, pred: ColumnPredicate) -> &mut Self {
        self.conjuncts.push(pred);
        self
    }

    /// Builder-style conjunct addition.
    pub fn with(mut self, pred: ColumnPredicate) -> Self {
        self.conjuncts.push(pred);
        self
    }

    /// The individual comparisons.
    pub fn conjuncts(&self) -> &[ColumnPredicate] {
        &self.conjuncts
    }

    /// True if there are no conjuncts (predicate is always true).
    pub fn is_trivial(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Names of the columns referenced by this predicate (deduplicated,
    /// sorted).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = self.conjuncts.iter().map(|c| c.column.as_str()).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Evaluates the conjunction against a row of `(column name, value)`
    /// lookups provided by the closure.
    pub fn evaluate<'a>(&self, lookup: impl Fn(&str) -> Option<&'a Value>) -> bool {
        self.conjuncts
            .iter()
            .all(|c| lookup(&c.column).map(|v| c.matches(v)).unwrap_or(false))
    }

    /// Converts the conjunction into per-column half-open intervals on each
    /// column's normalized axis, intersecting multiple conjuncts on the same
    /// column.
    ///
    /// Returns a map `column name -> (lo, hi)` (normalized, half-open); an
    /// empty interval (`lo >= hi`) means the predicate is unsatisfiable on
    /// that column.  Columns not mentioned are absent from the map (their
    /// interval is the full domain).
    pub fn normalized_intervals(&self, table: &Table) -> BTreeMap<String, (i64, i64)> {
        let mut out: BTreeMap<String, (i64, i64)> = BTreeMap::new();
        for conj in &self.conjuncts {
            let Some(column) = table.column(&conj.column) else {
                continue;
            };
            let domain = column.domain_or_default();
            let (dom_lo, dom_hi) = domain.normalized_bounds();
            let Some(v) = domain.normalize(&conj.value) else {
                continue;
            };
            let (lo, hi) = match conj.op {
                CompareOp::Eq => (v, v + 1),
                CompareOp::Lt => (dom_lo, v),
                CompareOp::Le => (dom_lo, v + 1),
                CompareOp::Gt => (v + 1, dom_hi),
                CompareOp::Ge => (v, dom_hi),
            };
            out.entry(conj.column.clone())
                .and_modify(|(cur_lo, cur_hi)| {
                    *cur_lo = (*cur_lo).max(lo);
                    *cur_hi = (*cur_hi).min(hi);
                })
                .or_insert((lo.max(dom_lo), hi.min(dom_hi)));
        }
        out
    }

    /// Renders the predicate as SQL text (`a >= 20 AND a < 60`).
    pub fn to_sql(&self, table: &str) -> String {
        if self.conjuncts.is_empty() {
            return "TRUE".to_string();
        }
        self.conjuncts
            .iter()
            .map(|c| format!("{}.{} {} {}", table, c.column, c.op, sql_literal(&c.value)))
            .collect::<Vec<_>>()
            .join(" AND ")
    }
}

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Varchar(s) => format!("'{s}'"),
        other => other.to_string(),
    }
}

impl fmt::Display for TablePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "TRUE");
        }
        let parts: Vec<String> = self.conjuncts.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" AND "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::domain::Domain;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::DataType;

    fn table() -> hydra_catalog::schema::Table {
        SchemaBuilder::new("t")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
                    .column(
                        ColumnBuilder::new("cat", DataType::Varchar(None))
                            .domain(Domain::categorical(["Books", "Music", "Women"])),
                    )
            })
            .build()
            .unwrap()
            .table("S")
            .unwrap()
            .clone()
    }

    #[test]
    fn column_predicate_matching() {
        let p = ColumnPredicate::new("A", CompareOp::Ge, 20);
        assert!(p.matches(&Value::Integer(20)));
        assert!(p.matches(&Value::Integer(50)));
        assert!(!p.matches(&Value::Integer(19)));
        assert!(!p.matches(&Value::Null));
        let eq = ColumnPredicate::new("cat", CompareOp::Eq, "Music");
        assert!(eq.matches(&Value::str("Music")));
        assert!(!eq.matches(&Value::str("Books")));
    }

    #[test]
    fn conjunction_evaluation() {
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        let a30 = Value::Integer(30);
        let a70 = Value::Integer(70);
        assert!(pred.evaluate(|c| if c == "A" { Some(&a30) } else { None }));
        assert!(!pred.evaluate(|c| if c == "A" { Some(&a70) } else { None }));
        // Missing column → false.
        assert!(!pred.evaluate(|_| None));
        assert!(TablePredicate::always_true().evaluate(|_| None));
    }

    #[test]
    fn normalized_intervals_intersect_conjuncts() {
        let t = table();
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        let iv = pred.normalized_intervals(&t);
        assert_eq!(iv.get("A"), Some(&(20, 60)));
    }

    #[test]
    fn normalized_intervals_for_equality_and_categorical() {
        let t = table();
        let pred =
            TablePredicate::always_true().with(ColumnPredicate::new("cat", CompareOp::Eq, "Music"));
        let iv = pred.normalized_intervals(&t);
        assert_eq!(iv.get("cat"), Some(&(1, 2)));
    }

    #[test]
    fn normalized_intervals_clamp_to_domain() {
        let t = table();
        let pred =
            TablePredicate::always_true().with(ColumnPredicate::new("A", CompareOp::Le, 1_000_000));
        let iv = pred.normalized_intervals(&t);
        assert_eq!(iv.get("A"), Some(&(0, 100)));
    }

    #[test]
    fn contradictory_conjuncts_give_empty_interval() {
        let t = table();
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Lt, 10))
            .with(ColumnPredicate::new("A", CompareOp::Ge, 50));
        let iv = pred.normalized_intervals(&t);
        let (lo, hi) = iv["A"];
        assert!(lo >= hi);
    }

    #[test]
    fn referenced_columns_and_display() {
        let pred = TablePredicate::always_true()
            .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
            .with(ColumnPredicate::new("cat", CompareOp::Eq, "Music"))
            .with(ColumnPredicate::new("A", CompareOp::Lt, 60));
        assert_eq!(pred.referenced_columns(), vec!["A", "cat"]);
        assert_eq!(pred.to_string(), "A >= 20 AND cat = Music AND A < 60");
        assert_eq!(
            pred.to_sql("S"),
            "S.A >= 20 AND S.cat = 'Music' AND S.A < 60"
        );
        assert_eq!(TablePredicate::always_true().to_sql("S"), "TRUE");
        assert!(TablePredicate::always_true().is_trivial());
    }

    #[test]
    fn serde_round_trip() {
        let pred = TablePredicate::always_true().with(ColumnPredicate::new("A", CompareOp::Ge, 20));
        let json = serde_json::to_string(&pred).unwrap();
        let back: TablePredicate = serde_json::from_str(&json).unwrap();
        assert_eq!(pred, back);
    }
}
