//! Workload evolution: deltas over an annotated query workload and the
//! incremental constraint-set merge they induce.
//!
//! Production workloads drift query by query: new reports are added, stale
//! dashboards are retired, and a re-run of an existing query against the
//! (grown) warehouse revises its cardinality annotations.  A
//! [`WorkloadDelta`] captures exactly those three operations, and
//! [`ConstraintSet`] carries the per-relation volumetric constraints of a
//! workload together with the bookkeeping needed to merge a delta
//! *incrementally*: constraints extracted from untouched queries are reused
//! verbatim, and only the relations whose constraint set actually changed
//! are reported for re-solving.
//!
//! The merge is provably equivalent to re-extracting from scratch: the
//! merged workload's entry order is deterministic (retained entries keep
//! their positions, re-annotated entries are replaced in place, added
//! entries are appended), and [`ConstraintSet::from_workload`] walks entries
//! in that order — so [`QueryWorkload::apply_delta`] followed by an
//! incremental merge yields bit-identical constraints to a from-scratch
//! extraction over the merged workload (asserted by the unit tests below and
//! by the `delta_differential` harness end to end).

use crate::aqp::{AnnotatedQueryPlan, VolumetricConstraint};
use crate::error::{QueryError, QueryResult};
use crate::query::SpjQuery;
use crate::workload::{QueryWorkload, WorkloadEntry};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// An evolution step over an annotated workload: queries added, queries
/// retired, and existing queries whose annotations were revised by a fresh
/// execution against the (possibly drifted) client warehouse.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadDelta {
    /// Newly observed queries with their annotated plans, in arrival order.
    pub added: Vec<WorkloadEntry>,
    /// Names of queries to retire from the workload.
    pub retired: Vec<String>,
    /// Replacement annotated plans for queries that stay in the workload but
    /// were re-executed (each plan's `query_name` selects the entry).
    pub reannotated: Vec<AnnotatedQueryPlan>,
    /// Revised client row counts observed alongside the re-annotations
    /// (empty when the warehouse itself did not drift).
    pub row_counts: BTreeMap<String, u64>,
}

impl WorkloadDelta {
    /// An empty delta (applying it is the identity).
    pub fn new() -> Self {
        WorkloadDelta::default()
    }

    /// Adds a newly observed annotated query.
    pub fn add_annotated(mut self, query: SpjQuery, aqp: AnnotatedQueryPlan) -> Self {
        self.added.push(WorkloadEntry {
            query,
            aqp: Some(aqp),
        });
        self
    }

    /// Retires a query by name.
    pub fn retire(mut self, query_name: impl Into<String>) -> Self {
        self.retired.push(query_name.into());
        self
    }

    /// Revises the annotations of an existing query (the plan's `query_name`
    /// selects which entry is replaced).
    pub fn reannotate(mut self, aqp: AnnotatedQueryPlan) -> Self {
        self.reannotated.push(aqp);
        self
    }

    /// Records a revised client row count for one relation.
    pub fn with_row_count(mut self, table: impl Into<String>, rows: u64) -> Self {
        self.row_counts.insert(table.into(), rows);
        self
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.retired.is_empty()
            && self.reannotated.is_empty()
            && self.row_counts.is_empty()
    }

    /// Human-readable one-line summary (`+a -r ~n` counts).
    pub fn describe(&self) -> String {
        format!(
            "+{} added, -{} retired, ~{} re-annotated, {} row counts revised",
            self.added.len(),
            self.retired.len(),
            self.reannotated.len(),
            self.row_counts.len()
        )
    }
}

impl QueryWorkload {
    /// Applies a [`WorkloadDelta`], producing the merged workload.
    ///
    /// Ordering is deterministic so that incremental constraint merging is
    /// equivalent to from-scratch extraction: surviving entries keep their
    /// positions (re-annotated entries are replaced in place) and added
    /// entries are appended in delta order.
    ///
    /// Fails on a delta that cannot be meaningfully applied: retiring or
    /// re-annotating a query that is not in the workload, adding a query
    /// whose name is already taken, retiring and re-annotating the same
    /// query, or adding an entry without an annotated plan.
    pub fn apply_delta(&self, delta: &WorkloadDelta) -> QueryResult<QueryWorkload> {
        let existing: BTreeSet<&str> = self.entries.iter().map(|e| e.query.name.as_str()).collect();
        let retired: BTreeSet<&str> = delta.retired.iter().map(String::as_str).collect();
        for name in &retired {
            if !existing.contains(name) {
                return Err(QueryError::Delta(format!(
                    "cannot retire unknown query `{name}`"
                )));
            }
        }
        let mut replacements: BTreeMap<&str, &AnnotatedQueryPlan> = BTreeMap::new();
        for aqp in &delta.reannotated {
            let name = aqp.query_name.as_str();
            if !existing.contains(name) {
                return Err(QueryError::Delta(format!(
                    "cannot re-annotate unknown query `{name}`"
                )));
            }
            if retired.contains(name) {
                return Err(QueryError::Delta(format!(
                    "query `{name}` is both retired and re-annotated"
                )));
            }
            if replacements.insert(name, aqp).is_some() {
                return Err(QueryError::Delta(format!(
                    "query `{name}` is re-annotated twice in one delta"
                )));
            }
        }
        let mut seen_added: BTreeSet<&str> = BTreeSet::new();
        for entry in &delta.added {
            let name = entry.query.name.as_str();
            if existing.contains(name) && !retired.contains(name) {
                return Err(QueryError::Delta(format!(
                    "cannot add query `{name}`: the name is already in the workload"
                )));
            }
            if !seen_added.insert(name) {
                return Err(QueryError::Delta(format!(
                    "query `{name}` is added twice in one delta"
                )));
            }
            if entry.aqp.is_none() {
                return Err(QueryError::Delta(format!(
                    "added query `{name}` has no annotated plan"
                )));
            }
        }

        let mut merged = QueryWorkload::new();
        for entry in &self.entries {
            let name = entry.query.name.as_str();
            if retired.contains(name) {
                continue;
            }
            match replacements.get(name) {
                Some(aqp) => merged.entries.push(WorkloadEntry {
                    query: entry.query.clone(),
                    aqp: Some((*aqp).clone()),
                }),
                None => merged.entries.push(entry.clone()),
            }
        }
        merged.entries.extend(delta.added.iter().cloned());
        Ok(merged)
    }
}

/// The per-relation volumetric constraints of a workload, with per-query
/// provenance retained so a [`WorkloadDelta`] can be merged without
/// re-extracting constraints from untouched annotated plans.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConstraintSet {
    /// Constraints grouped by constrained relation, in workload entry order.
    by_table: BTreeMap<String, Vec<VolumetricConstraint>>,
    /// Constraints grouped by originating query, in workload entry order
    /// (the provenance that makes incremental merging possible).
    by_query: Vec<(String, Vec<VolumetricConstraint>)>,
}

impl ConstraintSet {
    /// Extracts the constraint set of a workload from scratch.
    pub fn from_workload(workload: &QueryWorkload) -> QueryResult<ConstraintSet> {
        let mut by_query = Vec::with_capacity(workload.entries.len());
        for entry in &workload.entries {
            let constraints = match &entry.aqp {
                Some(aqp) => aqp.constraints()?,
                None => Vec::new(),
            };
            by_query.push((entry.query.name.clone(), constraints));
        }
        Ok(Self::from_query_groups(by_query))
    }

    /// Merges a delta into this constraint set *incrementally*: constraints
    /// of untouched queries are reused verbatim; only added and re-annotated
    /// plans are decomposed.  `merged_workload` must be the output of
    /// [`QueryWorkload::apply_delta`] for the same delta — it fixes the
    /// query order the merge follows, which is what makes the result
    /// bit-identical to [`ConstraintSet::from_workload`] on it.
    pub fn merge_delta(
        &self,
        merged_workload: &QueryWorkload,
        delta: &WorkloadDelta,
    ) -> QueryResult<ConstraintSet> {
        let touched: BTreeSet<&str> = delta
            .reannotated
            .iter()
            .map(|a| a.query_name.as_str())
            .chain(delta.added.iter().map(|e| e.query.name.as_str()))
            .collect();
        let previous: BTreeMap<&str, &Vec<VolumetricConstraint>> = self
            .by_query
            .iter()
            .map(|(name, cs)| (name.as_str(), cs))
            .collect();
        let mut by_query = Vec::with_capacity(merged_workload.entries.len());
        for entry in &merged_workload.entries {
            let name = entry.query.name.as_str();
            let constraints = match previous.get(name) {
                Some(cs) if !touched.contains(name) => (*cs).clone(),
                _ => match &entry.aqp {
                    Some(aqp) => aqp.constraints()?,
                    None => Vec::new(),
                },
            };
            by_query.push((entry.query.name.clone(), constraints));
        }
        Ok(Self::from_query_groups(by_query))
    }

    fn from_query_groups(by_query: Vec<(String, Vec<VolumetricConstraint>)>) -> ConstraintSet {
        let mut by_table: BTreeMap<String, Vec<VolumetricConstraint>> = BTreeMap::new();
        for (_, constraints) in &by_query {
            for c in constraints {
                by_table.entry(c.table.clone()).or_default().push(c.clone());
            }
        }
        ConstraintSet { by_table, by_query }
    }

    /// The constraints grouped by constrained relation (the preprocessor
    /// output the LP formulation consumes).
    pub fn by_table(&self) -> &BTreeMap<String, Vec<VolumetricConstraint>> {
        &self.by_table
    }

    /// The constraints of one relation (empty slice when unconstrained).
    pub fn of_table(&self, table: &str) -> &[VolumetricConstraint] {
        self.by_table.get(table).map_or(&[], Vec::as_slice)
    }

    /// Total number of constraints across relations.
    pub fn len(&self) -> usize {
        self.by_table.values().map(Vec::len).sum()
    }

    /// True when no query contributed any constraint.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fingerprint of one relation's constraint list (canonical-JSON hash,
    /// the same trick the summary cache uses).  Two constraint sets with
    /// equal signatures for a relation put identical volumetric demands on
    /// it.
    pub fn table_signature(&self, table: &str) -> u64 {
        let mut hasher = DefaultHasher::new();
        serde_json::to_string(&self.of_table(table).to_vec())
            .unwrap_or_default()
            .hash(&mut hasher);
        hasher.finish()
    }

    /// The relations whose constraint lists differ between `self` and
    /// `other` (present in one but not the other, or present in both with
    /// different constraints).
    pub fn changed_tables(&self, other: &ConstraintSet) -> BTreeSet<String> {
        let mut changed = BTreeSet::new();
        for table in self.by_table.keys().chain(other.by_table.keys()) {
            if self.by_table.get(table) != other.by_table.get(table) {
                changed.insert(table.clone());
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LogicalPlan;
    use crate::predicate::{ColumnPredicate, CompareOp, TablePredicate};
    use crate::query::JoinEdge;

    fn annotated(name: &str, lo: i64, card: u64) -> (SpjQuery, AnnotatedQueryPlan) {
        let mut q = SpjQuery::new(name);
        q.add_join(JoinEdge::new("R", "S_fk", "S", "S_pk"));
        q.set_predicate(
            "S",
            TablePredicate::always_true().with(ColumnPredicate::new("A", CompareOp::Ge, lo)),
        );
        let plan = LogicalPlan::from_query(&q).unwrap();
        let cards: Vec<u64> = (0..plan.node_count() as u64).map(|i| card + i).collect();
        let aqp = AnnotatedQueryPlan::from_plan_with_cardinalities(name, &plan, &cards).unwrap();
        (q, aqp)
    }

    fn base_workload() -> QueryWorkload {
        let mut wl = QueryWorkload::new();
        for (name, lo, card) in [("q1", 10, 100), ("q2", 20, 200), ("q3", 30, 300)] {
            let (q, aqp) = annotated(name, lo, card);
            wl.add_annotated(q, aqp);
        }
        wl
    }

    #[test]
    fn empty_delta_is_identity() {
        let wl = base_workload();
        let merged = wl.apply_delta(&WorkloadDelta::new()).unwrap();
        assert_eq!(merged, wl);
        assert!(WorkloadDelta::new().is_empty());
    }

    #[test]
    fn add_retire_reannotate_merge_in_order() {
        let wl = base_workload();
        let (q4, aqp4) = annotated("q4", 40, 400);
        let (_, revised) = annotated("q2", 25, 999);
        let delta = WorkloadDelta::new()
            .retire("q1")
            .reannotate(revised.clone())
            .add_annotated(q4, aqp4)
            .with_row_count("R", 5_000);
        assert!(!delta.is_empty());
        assert!(delta.describe().contains("+1 added"));

        let merged = wl.apply_delta(&delta).unwrap();
        let names: Vec<&str> = merged
            .entries
            .iter()
            .map(|e| e.query.name.as_str())
            .collect();
        assert_eq!(names, vec!["q2", "q3", "q4"]);
        // The re-annotated entry carries the revised plan, in place.
        assert_eq!(merged.entries[0].aqp.as_ref().unwrap(), &revised);
    }

    #[test]
    fn invalid_deltas_are_rejected() {
        let wl = base_workload();
        let (q1, aqp1) = annotated("q1", 1, 1);
        let (q9, aqp9) = annotated("q9", 9, 9);
        let (_, re_q9) = annotated("q9", 9, 9);
        let (_, re_q1) = annotated("q1", 1, 2);

        // Unknown retire / unknown re-annotate.
        assert!(wl
            .apply_delta(&WorkloadDelta::new().retire("nope"))
            .is_err());
        assert!(wl
            .apply_delta(&WorkloadDelta::new().reannotate(re_q9))
            .is_err());
        // Name collision on add.
        assert!(wl
            .apply_delta(&WorkloadDelta::new().add_annotated(q1.clone(), aqp1.clone()))
            .is_err());
        // Retire + re-annotate the same query.
        assert!(wl
            .apply_delta(&WorkloadDelta::new().retire("q1").reannotate(re_q1.clone()))
            .is_err());
        // Double re-annotate.
        assert!(wl
            .apply_delta(
                &WorkloadDelta::new()
                    .reannotate(re_q1.clone())
                    .reannotate(re_q1)
            )
            .is_err());
        // Double add.
        assert!(wl
            .apply_delta(
                &WorkloadDelta::new()
                    .add_annotated(q9.clone(), aqp9.clone())
                    .add_annotated(q9.clone(), aqp9)
            )
            .is_err());
        // Added entry must be annotated.
        let mut delta = WorkloadDelta::new();
        delta.added.push(WorkloadEntry {
            query: q9,
            aqp: None,
        });
        assert!(wl.apply_delta(&delta).is_err());
        // Retiring a name frees it for a same-delta add.
        let (q1b, aqp1b) = annotated("q1", 2, 3);
        assert!(wl
            .apply_delta(&WorkloadDelta::new().retire("q1").add_annotated(q1b, aqp1b))
            .is_ok());
    }

    #[test]
    fn incremental_merge_equals_from_scratch() {
        let wl = base_workload();
        let base = ConstraintSet::from_workload(&wl).unwrap();
        assert!(!base.is_empty());
        assert_eq!(
            base.by_table().clone(),
            wl.constraints_by_table().unwrap(),
            "from_workload must agree with the legacy extraction"
        );

        let (q4, aqp4) = annotated("q4", 40, 400);
        let (_, revised) = annotated("q3", 35, 950);
        let delta = WorkloadDelta::new()
            .retire("q2")
            .reannotate(revised)
            .add_annotated(q4, aqp4);
        let merged_wl = wl.apply_delta(&delta).unwrap();
        let incremental = base.merge_delta(&merged_wl, &delta).unwrap();
        let scratch = ConstraintSet::from_workload(&merged_wl).unwrap();
        assert_eq!(incremental, scratch);
        assert_eq!(incremental.by_table(), scratch.by_table());
    }

    #[test]
    fn changed_tables_and_signatures_track_the_delta() {
        let wl = base_workload();
        let base = ConstraintSet::from_workload(&wl).unwrap();
        // Re-annotating q2 (which touches R and S) changes both relations'
        // constraint lists; nothing else exists in this workload.
        let (_, revised) = annotated("q2", 25, 777);
        let delta = WorkloadDelta::new().reannotate(revised);
        let merged_wl = wl.apply_delta(&delta).unwrap();
        let merged = base.merge_delta(&merged_wl, &delta).unwrap();
        let changed = base.changed_tables(&merged);
        assert!(changed.contains("R") && changed.contains("S"));
        assert_ne!(base.table_signature("S"), merged.table_signature("S"));
        // An empty delta changes nothing.
        let same = base
            .merge_delta(
                &wl.apply_delta(&WorkloadDelta::new()).unwrap(),
                &WorkloadDelta::new(),
            )
            .unwrap();
        assert!(base.changed_tables(&same).is_empty());
        assert_eq!(base.table_signature("R"), same.table_signature("R"));
        // Signature of an unconstrained relation is stable too.
        assert_eq!(base.table_signature("zzz"), same.table_signature("zzz"));
        assert_eq!(base.of_table("zzz").len(), 0);
    }

    #[test]
    fn delta_serde_round_trip() {
        let (q4, aqp4) = annotated("q4", 40, 400);
        let (_, revised) = annotated("q2", 25, 999);
        let delta = WorkloadDelta::new()
            .retire("q1")
            .reannotate(revised)
            .add_annotated(q4, aqp4)
            .with_row_count("R", 123);
        let json = serde_json::to_string(&delta).unwrap();
        let back: WorkloadDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(delta, back);
    }
}
