//! The aggregate query model and the shared, order-independent aggregation
//! kernel behind summary-direct query answering.
//!
//! HYDRA's central claim is that the LP-solved summary *is* the database:
//! every volumetric question in the closed SPJ workload class — COUNT / SUM /
//! AVG aggregates with conjunctive range/equality predicates, key–FK joins
//! and GROUP BY — is answerable from region (block) cardinalities alone,
//! without materializing a tuple.  This module defines that workload class
//! ([`AggregateQuery`]), the answer shape ([`QueryAnswer`]), and the
//! aggregation kernel ([`Aggregator`]) shared by *both* evaluation
//! strategies:
//!
//! * the **summary-direct** executor (`hydra-summary::exec`) feeds the kernel
//!   one contribution per summary block (closed-form: a value × multiplicity,
//!   or a primary-key range);
//! * the **tuple-scan** executor (`hydra-datagen::exec`) feeds it one
//!   contribution per regenerated tuple.
//!
//! ## Exact, order-independent aggregation semantics
//!
//! For the differential guarantee — summary-direct answers must be *bit
//! identical* to a tuple scan — every aggregate is defined so that its result
//! does not depend on evaluation order or grouping of the input:
//!
//! * `COUNT(*)` and integer `SUM` accumulate in 128-bit integers, which are
//!   associative and exact.
//! * `SUM` over DOUBLE columns is **defined** as Σ (distinct value ×
//!   multiplicity), summed in ascending value order ([`f64::total_cmp`]).
//!   Accumulation therefore builds a value → multiplicity multiset; blockwise
//!   (`v × n`), sharded, and sequential evaluation all build the same
//!   multiset and finalize through the same fold, so they agree bit-for-bit
//!   where naive left-to-right floating-point addition would not.
//! * `AVG` is the double quotient of the `SUM` defined above and the
//!   non-NULL count.
//!
//! NULLs follow SQL semantics: they are skipped by `SUM`/`AVG`, an empty
//! `SUM`/`AVG` is NULL, and `COUNT(*)` of an empty group is 0.

use crate::error::{QueryError, QueryResult};
use crate::query::SpjQuery;
use hydra_catalog::schema::Schema;
use hydra_catalog::types::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A qualified `table.column` reference in a select or GROUP BY list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Owning table.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates a reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// An aggregate function of the closed workload class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` — number of qualifying (joined) tuples.
    Count,
    /// `SUM(column)` — exact integer sum, or the order-independent double
    /// sum defined in the module docs.
    Sum,
    /// `AVG(column)` — `SUM / non-NULL count` as a double.
    Avg,
}

/// One aggregate expression of a select list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated column (`None` for `COUNT(*)`).
    pub target: Option<ColumnRef>,
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count() -> Self {
        AggExpr {
            func: AggFunc::Count,
            target: None,
        }
    }

    /// `SUM(table.column)`.
    pub fn sum(table: impl Into<String>, column: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Sum,
            target: Some(ColumnRef::new(table, column)),
        }
    }

    /// `AVG(table.column)`.
    pub fn avg(table: impl Into<String>, column: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Avg,
            target: Some(ColumnRef::new(table, column)),
        }
    }

    /// SQL rendering (`sum(t.c)`), used as the answer column name.
    pub fn to_sql(&self) -> String {
        match (&self.func, &self.target) {
            (AggFunc::Count, _) => "count(*)".to_string(),
            (AggFunc::Sum, Some(c)) => format!("sum({c})"),
            (AggFunc::Avg, Some(c)) => format!("avg({c})"),
            (f, None) => format!("{f:?}(?)").to_lowercase(),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql())
    }
}

/// An aggregate SPJ query: the SPJ body (tables, predicates, FK joins) plus
/// an aggregate select list and optional GROUP BY.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateQuery {
    /// The SPJ body.
    pub spj: SpjQuery,
    /// The aggregate select list (at least one entry).
    pub aggregates: Vec<AggExpr>,
    /// GROUP BY columns (possibly empty: one global group).
    pub group_by: Vec<ColumnRef>,
}

impl AggregateQuery {
    /// Wraps an SPJ body with a select list and GROUP BY.
    pub fn new(spj: SpjQuery, aggregates: Vec<AggExpr>, group_by: Vec<ColumnRef>) -> Self {
        AggregateQuery {
            spj,
            aggregates,
            group_by,
        }
    }

    /// Every column reference of the select list and GROUP BY.
    fn referenced_columns(&self) -> impl Iterator<Item = &ColumnRef> {
        self.aggregates
            .iter()
            .filter_map(|a| a.target.as_ref())
            .chain(self.group_by.iter())
    }

    /// Validates the query against a schema: the SPJ body validates, every
    /// referenced column exists in a table of the FROM list, and SUM/AVG
    /// targets are numeric.
    pub fn validate(&self, schema: &Schema) -> QueryResult<()> {
        self.spj.validate(schema)?;
        if self.aggregates.is_empty() {
            return Err(QueryError::Unsupported(
                "aggregate query has an empty select list".into(),
            ));
        }
        for col in self.referenced_columns() {
            if !self.spj.tables.contains(&col.table) {
                return Err(QueryError::UnknownReference(format!(
                    "column `{col}` references a table outside the FROM list"
                )));
            }
            let table = schema
                .table(&col.table)
                .ok_or_else(|| QueryError::UnknownReference(format!("table `{}`", col.table)))?;
            if table.column(&col.column).is_none() {
                return Err(QueryError::UnknownReference(format!("column `{col}`")));
            }
        }
        for agg in &self.aggregates {
            if let (AggFunc::Sum | AggFunc::Avg, Some(col)) = (&agg.func, &agg.target) {
                let dt = &schema
                    .table(&col.table)
                    .and_then(|t| t.column(&col.column))
                    .expect("checked above")
                    .data_type;
                if !dt.is_numeric() {
                    return Err(QueryError::Unsupported(format!(
                        "{}: {} column `{col}` is not numeric",
                        agg.to_sql(),
                        dt
                    )));
                }
            }
        }
        Ok(())
    }

    /// Renders the query as SQL text.
    pub fn to_sql(&self) -> String {
        let select: Vec<String> = self.aggregates.iter().map(AggExpr::to_sql).collect();
        let mut sql =
            self.spj
                .to_sql()
                .replacen("select *", &format!("select {}", select.join(", ")), 1);
        if !self.group_by.is_empty() {
            let cols: Vec<String> = self.group_by.iter().map(ToString::to_string).collect();
            sql.push_str(&format!(" group by {}", cols.join(", ")));
        }
        sql
    }
}

/// How a [`QueryAnswer`] was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecStrategy {
    /// Answered from region cardinalities alone — closed-form per-block
    /// contributions, no tuple was ever materialized.
    SummaryDirect,
    /// Answered by regenerating and scanning tuples (the fallback for
    /// out-of-class queries).
    TupleScan,
}

impl fmt::Display for ExecStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecStrategy::SummaryDirect => write!(f, "summary-direct"),
            ExecStrategy::TupleScan => write!(f, "tuple-scan"),
        }
    }
}

/// One result row of an aggregate query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerRow {
    /// The GROUP BY key values, in GROUP BY order (empty for a global
    /// aggregate).
    pub key: Vec<Value>,
    /// One value per select-list aggregate.
    pub aggregates: Vec<Value>,
}

/// The answer to an [`AggregateQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// Names of the GROUP BY key columns (`table.column`).
    pub group_columns: Vec<String>,
    /// Names of the aggregate columns (`count(*)`, `sum(t.c)`, ...).
    pub aggregate_columns: Vec<String>,
    /// Result rows in ascending key order (one keyless row for a global
    /// aggregate).
    pub rows: Vec<AnswerRow>,
    /// How the answer was computed.
    pub strategy: ExecStrategy,
    /// Summary blocks of the root (fact) relation inspected.
    pub fact_blocks: u64,
    /// Tuples regenerated and scanned (0 for summary-direct answers).
    pub scanned_tuples: u64,
}

impl QueryAnswer {
    /// How the answer was computed.
    pub fn strategy(&self) -> ExecStrategy {
        self.strategy
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the answer has no rows (a GROUP BY that matched nothing).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single row of a global (non-GROUP-BY) aggregate.
    pub fn single(&self) -> Option<&AnswerRow> {
        if self.group_columns.is_empty() && self.rows.len() == 1 {
            self.rows.first()
        } else {
            None
        }
    }

    /// Renders the answer as a text table.
    pub fn to_display_table(&self) -> String {
        let mut out = String::new();
        let header: Vec<&str> = self
            .group_columns
            .iter()
            .chain(self.aggregate_columns.iter())
            .map(String::as_str)
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .key
                .iter()
                .chain(row.aggregates.iter())
                .map(ToString::to_string)
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out.push_str(&format!("({} rows, {})\n", self.rows.len(), self.strategy));
        out
    }
}

/// Monotone sort key over `f64` values: orders exactly like
/// [`f64::total_cmp`], usable as an integer map key.
fn f64_sort_key(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// One aggregate's running state (the per-group accumulator).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct AggState {
    /// Qualifying tuples (drives `COUNT(*)`).
    count: u64,
    /// Exact sum of integer contributions.
    sum_int: i128,
    /// Double contributions: total-order sort key → multiplicity.
    sum_doubles: BTreeMap<u64, u64>,
    /// Non-NULL contributions seen by SUM/AVG.
    non_null: u64,
}

impl AggState {
    /// The double total: ascending distinct doubles × multiplicity, then the
    /// integer part.  This fold *is* the definition of the double SUM — both
    /// strategies and the differential oracle implement it identically.
    fn double_total(&self) -> f64 {
        let mut acc = 0.0f64;
        for (&key, &n) in &self.sum_doubles {
            let bits = if key >> 63 == 1 {
                key & !(1 << 63)
            } else {
                !key
            };
            acc += f64::from_bits(bits) * n as f64;
        }
        acc + self.sum_int as f64
    }

    fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum_int += other.sum_int;
        self.non_null += other.non_null;
        for (&k, &n) in &other.sum_doubles {
            *self.sum_doubles.entry(k).or_insert(0) += n;
        }
    }

    fn finalize(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Integer(self.count.min(i64::MAX as u64) as i64),
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Value::Null
                } else if self.sum_doubles.is_empty() {
                    Value::Integer(self.sum_int.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                } else {
                    Value::Double(self.double_total())
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Value::Null
                } else {
                    let total = if self.sum_doubles.is_empty() {
                        self.sum_int as f64
                    } else {
                        self.double_total()
                    };
                    Value::Double(total / self.non_null as f64)
                }
            }
        }
    }
}

/// One contribution to one aggregate expression.
#[derive(Debug, Clone, Copy)]
pub enum AggInput<'a> {
    /// `n` qualifying tuples (for `COUNT(*)` the value is irrelevant).
    Tuples {
        /// Number of tuples.
        n: u64,
    },
    /// `n` tuples all carrying the same value on the target column.
    Repeat {
        /// The shared value (NULLs are skipped by SUM/AVG).
        value: &'a Value,
        /// Number of tuples.
        n: u64,
    },
    /// The target column takes every integer of `[lo, hi)` exactly once —
    /// the closed form for aggregates over an auto-numbered primary key.
    IntRange {
        /// First value of the range.
        lo: i64,
        /// One past the last value.
        hi: i64,
    },
}

/// The grouped aggregation kernel shared by the summary-direct and
/// tuple-scan executors.
///
/// Feed it one [`AggInput`] per aggregate expression per contribution (a
/// block, a tuple, or a pk range); results are independent of contribution
/// order and of how contributions were split (see the module docs), which is
/// what makes sharded scans and closed-form block evaluation bit-identical.
#[derive(Debug, Clone)]
pub struct Aggregator {
    funcs: Vec<AggFunc>,
    groups: BTreeMap<Vec<Value>, Vec<AggState>>,
}

impl Aggregator {
    /// Creates an aggregator for a query's select list.  A query without
    /// GROUP BY pre-seeds the single global group so that zero matching
    /// tuples still produce one answer row (`COUNT = 0`, `SUM`/`AVG` NULL).
    pub fn for_query(query: &AggregateQuery) -> Self {
        let funcs: Vec<AggFunc> = query.aggregates.iter().map(|a| a.func).collect();
        let mut groups = BTreeMap::new();
        if query.group_by.is_empty() {
            groups.insert(Vec::new(), vec![AggState::default(); funcs.len()]);
        }
        Aggregator { funcs, groups }
    }

    /// Adds one contribution: the group key plus one input per aggregate
    /// expression (same order as the select list).
    pub fn add(&mut self, key: Vec<Value>, inputs: &[AggInput<'_>]) {
        debug_assert_eq!(inputs.len(), self.funcs.len());
        let states = self
            .groups
            .entry(key)
            .or_insert_with(|| vec![AggState::default(); self.funcs.len()]);
        for (state, input) in states.iter_mut().zip(inputs) {
            match *input {
                AggInput::Tuples { n } => state.count += n,
                AggInput::Repeat { value, n } => {
                    if n == 0 {
                        continue;
                    }
                    state.count += n;
                    match value {
                        Value::Null => {}
                        Value::Integer(v) => {
                            state.sum_int += *v as i128 * n as i128;
                            state.non_null += n;
                        }
                        Value::Double(d) => {
                            *state.sum_doubles.entry(f64_sort_key(*d)).or_insert(0) += n;
                            state.non_null += n;
                        }
                        Value::Boolean(b) => {
                            state.sum_int += i128::from(*b) * n as i128;
                            state.non_null += n;
                        }
                        Value::Varchar(_) => {}
                    }
                }
                AggInput::IntRange { lo, hi } => {
                    if hi <= lo {
                        continue;
                    }
                    let n = (hi - lo) as u64;
                    state.count += n;
                    // Σ lo..hi = (lo + hi - 1) * n / 2, exactly in i128.
                    state.sum_int += (lo as i128 + hi as i128 - 1) * n as i128 / 2;
                    state.non_null += n;
                }
            }
        }
    }

    /// Merges another aggregator (e.g. one shard's partial result).  Both
    /// must have been built for the same query.
    pub fn merge(&mut self, other: &Aggregator) {
        debug_assert_eq!(self.funcs, other.funcs);
        for (key, states) in &other.groups {
            match self.groups.get_mut(key) {
                Some(mine) => {
                    for (a, b) in mine.iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
                None => {
                    self.groups.insert(key.clone(), states.clone());
                }
            }
        }
    }

    /// Number of groups currently held.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Finalizes into a [`QueryAnswer`] for `query`, stamped with the given
    /// strategy and cost counters.
    pub fn into_answer(
        self,
        query: &AggregateQuery,
        strategy: ExecStrategy,
        fact_blocks: u64,
        scanned_tuples: u64,
    ) -> QueryAnswer {
        let rows = self
            .groups
            .iter()
            .map(|(key, states)| AnswerRow {
                key: key.clone(),
                aggregates: states
                    .iter()
                    .zip(&self.funcs)
                    .map(|(s, f)| s.finalize(*f))
                    .collect(),
            })
            .collect();
        QueryAnswer {
            group_columns: query.group_by.iter().map(ToString::to_string).collect(),
            aggregate_columns: query.aggregates.iter().map(AggExpr::to_sql).collect(),
            rows,
            strategy,
            fact_blocks,
            scanned_tuples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SpjQuery;

    fn count_sum_query(group: bool) -> AggregateQuery {
        let mut spj = SpjQuery::new("q");
        spj.add_table("t");
        AggregateQuery::new(
            spj,
            vec![
                AggExpr::count(),
                AggExpr::sum("t", "x"),
                AggExpr::avg("t", "x"),
            ],
            if group {
                vec![ColumnRef::new("t", "g")]
            } else {
                vec![]
            },
        )
    }

    #[test]
    fn global_aggregate_over_nothing_is_zero_and_null() {
        let q = count_sum_query(false);
        let agg = Aggregator::for_query(&q);
        let answer = agg.into_answer(&q, ExecStrategy::SummaryDirect, 0, 0);
        assert_eq!(answer.rows.len(), 1);
        let row = answer.single().unwrap();
        assert_eq!(row.aggregates[0], Value::Integer(0));
        assert_eq!(row.aggregates[1], Value::Null);
        assert_eq!(row.aggregates[2], Value::Null);
    }

    #[test]
    fn grouped_aggregate_over_nothing_is_empty() {
        let q = count_sum_query(true);
        let agg = Aggregator::for_query(&q);
        let answer = agg.into_answer(&q, ExecStrategy::TupleScan, 0, 0);
        assert!(answer.is_empty());
        assert!(answer.single().is_none());
    }

    #[test]
    fn blockwise_equals_tuplewise_for_integers() {
        let q = count_sum_query(true);
        let key = vec![Value::str("a")];
        let v = Value::Integer(7);

        let mut blockwise = Aggregator::for_query(&q);
        blockwise.add(
            key.clone(),
            &[
                AggInput::Tuples { n: 5 },
                AggInput::Repeat { value: &v, n: 5 },
                AggInput::Repeat { value: &v, n: 5 },
            ],
        );
        let mut tuplewise = Aggregator::for_query(&q);
        for _ in 0..5 {
            tuplewise.add(
                key.clone(),
                &[
                    AggInput::Tuples { n: 1 },
                    AggInput::Repeat { value: &v, n: 1 },
                    AggInput::Repeat { value: &v, n: 1 },
                ],
            );
        }
        let a = blockwise.into_answer(&q, ExecStrategy::SummaryDirect, 1, 0);
        let b = tuplewise.into_answer(&q, ExecStrategy::SummaryDirect, 1, 0);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.rows[0].aggregates[1], Value::Integer(35));
        assert_eq!(a.rows[0].aggregates[2], Value::Double(7.0));
    }

    #[test]
    fn blockwise_equals_tuplewise_for_doubles() {
        // 0.1 summed 10 times naively != 0.1 * 10; the multiset definition
        // makes blockwise and tuplewise agree bit-for-bit.
        let q = count_sum_query(false);
        let v1 = Value::Double(0.1);
        let v2 = Value::Double(-3.25);
        let mut blockwise = Aggregator::for_query(&q);
        blockwise.add(
            vec![],
            &[
                AggInput::Tuples { n: 10 },
                AggInput::Repeat { value: &v1, n: 10 },
                AggInput::Repeat { value: &v1, n: 10 },
            ],
        );
        blockwise.add(
            vec![],
            &[
                AggInput::Tuples { n: 3 },
                AggInput::Repeat { value: &v2, n: 3 },
                AggInput::Repeat { value: &v2, n: 3 },
            ],
        );
        let mut tuplewise = Aggregator::for_query(&q);
        for v in std::iter::repeat_n(&v1, 10).chain(std::iter::repeat_n(&v2, 3)) {
            tuplewise.add(
                vec![],
                &[
                    AggInput::Tuples { n: 1 },
                    AggInput::Repeat { value: v, n: 1 },
                    AggInput::Repeat { value: v, n: 1 },
                ],
            );
        }
        assert_eq!(
            blockwise
                .into_answer(&q, ExecStrategy::SummaryDirect, 2, 0)
                .rows,
            tuplewise
                .into_answer(&q, ExecStrategy::TupleScan, 0, 13)
                .rows
        );
    }

    #[test]
    fn int_range_matches_per_value_sum() {
        let q = count_sum_query(false);
        let mut ranged = Aggregator::for_query(&q);
        ranged.add(
            vec![],
            &[
                AggInput::Tuples { n: 5 },
                AggInput::IntRange { lo: 10, hi: 15 },
                AggInput::IntRange { lo: 10, hi: 15 },
            ],
        );
        let mut pointwise = Aggregator::for_query(&q);
        for pk in 10..15 {
            let v = Value::Integer(pk);
            pointwise.add(
                vec![],
                &[
                    AggInput::Tuples { n: 1 },
                    AggInput::Repeat { value: &v, n: 1 },
                    AggInput::Repeat { value: &v, n: 1 },
                ],
            );
        }
        let a = ranged.into_answer(&q, ExecStrategy::SummaryDirect, 1, 0);
        let b = pointwise.into_answer(&q, ExecStrategy::TupleScan, 0, 5);
        assert_eq!(a.rows, b.rows);
        assert_eq!(
            a.rows[0].aggregates[1],
            Value::Integer(10 + 11 + 12 + 13 + 14)
        );
        assert_eq!(a.rows[0].aggregates[2], Value::Double(12.0));
    }

    #[test]
    fn nulls_follow_sql_semantics() {
        let q = count_sum_query(false);
        let mut agg = Aggregator::for_query(&q);
        let null = Value::Null;
        let three = Value::Integer(3);
        agg.add(
            vec![],
            &[
                AggInput::Tuples { n: 2 },
                AggInput::Repeat { value: &null, n: 2 },
                AggInput::Repeat { value: &null, n: 2 },
            ],
        );
        agg.add(
            vec![],
            &[
                AggInput::Tuples { n: 1 },
                AggInput::Repeat {
                    value: &three,
                    n: 1,
                },
                AggInput::Repeat {
                    value: &three,
                    n: 1,
                },
            ],
        );
        let answer = agg.into_answer(&q, ExecStrategy::SummaryDirect, 2, 0);
        let row = answer.single().unwrap();
        // COUNT(*) counts NULL rows; SUM/AVG skip them.
        assert_eq!(row.aggregates[0], Value::Integer(3));
        assert_eq!(row.aggregates[1], Value::Integer(3));
        assert_eq!(row.aggregates[2], Value::Double(3.0));
    }

    #[test]
    fn merge_is_equivalent_to_single_pass() {
        let q = count_sum_query(true);
        let v = Value::Double(1.5);
        let mut whole = Aggregator::for_query(&q);
        let mut left = Aggregator::for_query(&q);
        let mut right = Aggregator::for_query(&q);
        for i in 0..10i64 {
            let key = vec![Value::Integer(i % 3)];
            let inputs = [
                AggInput::Tuples { n: 1 },
                AggInput::Repeat { value: &v, n: 1 },
                AggInput::Repeat { value: &v, n: 1 },
            ];
            whole.add(key.clone(), &inputs);
            if i < 5 {
                left.add(key, &inputs);
            } else {
                right.add(key, &inputs);
            }
        }
        left.merge(&right);
        assert_eq!(
            whole.into_answer(&q, ExecStrategy::TupleScan, 0, 10).rows,
            left.into_answer(&q, ExecStrategy::TupleScan, 0, 10).rows
        );
    }

    #[test]
    fn answer_rows_are_in_ascending_key_order() {
        let q = count_sum_query(true);
        let mut agg = Aggregator::for_query(&q);
        for g in [5i64, 1, 3, 1, 5] {
            let key = vec![Value::Integer(g)];
            agg.add(
                key,
                &[
                    AggInput::Tuples { n: 1 },
                    AggInput::Tuples { n: 1 },
                    AggInput::Tuples { n: 1 },
                ],
            );
        }
        let answer = agg.into_answer(&q, ExecStrategy::SummaryDirect, 0, 0);
        let keys: Vec<i64> = answer
            .rows
            .iter()
            .map(|r| r.key[0].as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(answer.group_columns, vec!["t.g".to_string()]);
        assert!(answer.to_display_table().contains("count(*)"));
    }

    #[test]
    fn f64_sort_key_is_monotone() {
        let mut values: Vec<f64> = vec![-1e30, -2.5, -0.0, 0.0, 1e-9, 3.7, 1e300];
        values.sort_by(|a, b| a.total_cmp(b));
        let keys: Vec<u64> = values.iter().map(|&v| f64_sort_key(v)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn validate_checks_columns_and_types() {
        use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
        use hydra_catalog::types::DataType;
        let schema = SchemaBuilder::new("db")
            .table("t", |t| {
                t.column(ColumnBuilder::new("pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("x", DataType::BigInt))
                    .column(ColumnBuilder::new("name", DataType::Varchar(None)))
            })
            .build()
            .unwrap();
        let mut spj = SpjQuery::new("q");
        spj.add_table("t");
        let ok = AggregateQuery::new(
            spj.clone(),
            vec![AggExpr::count(), AggExpr::sum("t", "x")],
            vec![ColumnRef::new("t", "name")],
        );
        assert!(ok.validate(&schema).is_ok());
        assert!(ok.to_sql().contains("group by t.name"));

        let bad_col = AggregateQuery::new(spj.clone(), vec![AggExpr::sum("t", "nope")], vec![]);
        assert!(matches!(
            bad_col.validate(&schema),
            Err(QueryError::UnknownReference(_))
        ));

        let bad_type = AggregateQuery::new(spj.clone(), vec![AggExpr::sum("t", "name")], vec![]);
        assert!(matches!(
            bad_type.validate(&schema),
            Err(QueryError::Unsupported(_))
        ));

        let empty = AggregateQuery::new(spj.clone(), vec![], vec![]);
        assert!(empty.validate(&schema).is_err());

        let foreign = AggregateQuery::new(
            spj,
            vec![AggExpr::count()],
            vec![ColumnRef::new("other", "x")],
        );
        assert!(foreign.validate(&schema).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let q = count_sum_query(true);
        let json = serde_json::to_string(&q).unwrap();
        let back: AggregateQuery = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);

        let mut agg = Aggregator::for_query(&q);
        let v = Value::Double(2.25);
        agg.add(
            vec![Value::str("g")],
            &[
                AggInput::Tuples { n: 4 },
                AggInput::Repeat { value: &v, n: 4 },
                AggInput::Repeat { value: &v, n: 4 },
            ],
        );
        let answer = agg.into_answer(&q, ExecStrategy::SummaryDirect, 1, 0);
        let json = serde_json::to_string(&answer).unwrap();
        let back: QueryAnswer = serde_json::from_str(&json).unwrap();
        assert_eq!(answer, back);
        assert_eq!(back.strategy(), ExecStrategy::SummaryDirect);
    }
}
