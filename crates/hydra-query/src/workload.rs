//! Query workloads: the unit the client ships to the vendor.
//!
//! A [`QueryWorkload`] is an ordered collection of SPJ queries, each paired
//! (once the client has executed it) with its [`AnnotatedQueryPlan`].  The
//! workload travels inside the transfer package together with the schema and
//! metadata from `hydra-catalog`.

use crate::aqp::{AnnotatedQueryPlan, VolumetricConstraint};
use crate::error::QueryResult;
use crate::query::SpjQuery;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One workload entry: a query and, once executed at the client, its AQP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEntry {
    /// The query.
    pub query: SpjQuery,
    /// The annotated plan obtained by executing the query on the client data
    /// (absent until the client has run it).
    pub aqp: Option<AnnotatedQueryPlan>,
}

/// An ordered collection of queries with their annotated plans.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// Workload entries in submission order.
    pub entries: Vec<WorkloadEntry>,
}

impl QueryWorkload {
    /// Creates an empty workload.
    pub fn new() -> Self {
        QueryWorkload::default()
    }

    /// Adds a query without an AQP yet.
    pub fn add_query(&mut self, query: SpjQuery) -> &mut Self {
        self.entries.push(WorkloadEntry { query, aqp: None });
        self
    }

    /// Adds a query together with its annotated plan.
    pub fn add_annotated(&mut self, query: SpjQuery, aqp: AnnotatedQueryPlan) -> &mut Self {
        self.entries.push(WorkloadEntry {
            query,
            aqp: Some(aqp),
        });
        self
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by query name.
    pub fn entry(&self, name: &str) -> Option<&WorkloadEntry> {
        self.entries.iter().find(|e| e.query.name == name)
    }

    /// Names of all distinct tables referenced anywhere in the workload.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut tables: Vec<String> = self
            .entries
            .iter()
            .flat_map(|e| e.query.tables.iter().cloned())
            .collect();
        tables.sort();
        tables.dedup();
        tables
    }

    /// Extracts every volumetric constraint from every annotated plan,
    /// grouped by the constrained relation.  Entries without an AQP are
    /// skipped (they contribute no constraints).
    pub fn constraints_by_table(&self) -> QueryResult<BTreeMap<String, Vec<VolumetricConstraint>>> {
        let mut out: BTreeMap<String, Vec<VolumetricConstraint>> = BTreeMap::new();
        for entry in &self.entries {
            if let Some(aqp) = &entry.aqp {
                for c in aqp.constraints()? {
                    out.entry(c.table.clone()).or_default().push(c);
                }
            }
        }
        Ok(out)
    }

    /// Total number of annotated edges across the workload (the count the
    /// paper's accuracy figures are computed over).
    pub fn total_annotated_edges(&self) -> usize {
        self.entries
            .iter()
            .filter_map(|e| e.aqp.as_ref())
            .map(|a| a.edge_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LogicalPlan;
    use crate::predicate::{ColumnPredicate, CompareOp, TablePredicate};
    use crate::query::JoinEdge;

    fn sample_workload() -> QueryWorkload {
        let mut wl = QueryWorkload::new();

        let mut q1 = SpjQuery::new("q1");
        q1.add_join(JoinEdge::new("R", "S_fk", "S", "S_pk"));
        q1.set_predicate(
            "S",
            TablePredicate::always_true().with(ColumnPredicate::new("A", CompareOp::Lt, 10)),
        );
        let plan1 = LogicalPlan::from_query(&q1).unwrap();
        let aqp1 = AnnotatedQueryPlan::from_plan_with_cardinalities(
            "q1",
            &plan1,
            &vec![5; plan1.node_count()],
        )
        .unwrap();
        wl.add_annotated(q1, aqp1);

        let mut q2 = SpjQuery::new("q2");
        q2.set_predicate(
            "S",
            TablePredicate::always_true().with(ColumnPredicate::new("A", CompareOp::Ge, 50)),
        );
        wl.add_query(q2);
        wl
    }

    #[test]
    fn workload_accounting() {
        let wl = sample_workload();
        assert_eq!(wl.len(), 2);
        assert!(!wl.is_empty());
        assert!(wl.entry("q1").is_some());
        assert!(wl.entry("missing").is_none());
        assert_eq!(
            wl.referenced_tables(),
            vec!["R".to_string(), "S".to_string()]
        );
        // q1's plan: Join, Filter, Scan R?? — whatever the shape, edges == node count.
        assert_eq!(
            wl.total_annotated_edges(),
            wl.entries[0].aqp.as_ref().unwrap().edge_count()
        );
    }

    #[test]
    fn constraints_grouped_by_table() {
        let wl = sample_workload();
        let by_table = wl.constraints_by_table().unwrap();
        assert!(by_table.contains_key("R"));
        assert!(by_table.contains_key("S"));
        // Unannotated q2 contributes nothing.
        let total: usize = by_table.values().map(Vec::len).sum();
        assert_eq!(total, wl.entries[0].aqp.as_ref().unwrap().edge_count());
    }

    #[test]
    fn empty_workload() {
        let wl = QueryWorkload::new();
        assert!(wl.is_empty());
        assert_eq!(wl.total_annotated_edges(), 0);
        assert!(wl.constraints_by_table().unwrap().is_empty());
    }
}
