//! Annotated Query Plans (AQPs) and volumetric-constraint extraction.
//!
//! An AQP is a logical plan in which every operator's output edge is annotated
//! with the row cardinality observed when the query ran on the client's
//! warehouse (Figure 1c of the paper).  The collection of AQPs over the whole
//! workload is the input to HYDRA's LP formulation.
//!
//! The [`AnnotatedQueryPlan::constraints`] method implements the
//! vendor-side *preprocessor* step (sourced from DataSynth in the paper's
//! architecture): it decomposes each annotated edge into a per-relation
//! [`VolumetricConstraint`] — "relation `R` has exactly `c` rows satisfying
//! this conjunction of local predicates and foreign-key conditions" — which is
//! what makes per-relation LP formulation possible.

use crate::error::{QueryError, QueryResult};
use crate::plan::{LogicalPlan, PlanOp};
use crate::predicate::TablePredicate;
use serde::{Deserialize, Serialize};

/// A condition on a foreign-key column of a fact table: the referenced
/// dimension row must satisfy `dim_predicate` (and, recursively, its own
/// foreign-key conditions for snowflake schemas).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FkCondition {
    /// The foreign-key column on the constrained (fact) table.
    pub fk_column: String,
    /// The referenced dimension table.
    pub dim_table: String,
    /// Predicate the referenced dimension row must satisfy.
    pub dim_predicate: TablePredicate,
    /// Foreign-key conditions that the dimension row must itself satisfy
    /// (snowflake schemas).
    pub nested: Vec<FkCondition>,
}

/// A per-relation volumetric constraint extracted from one AQP edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumetricConstraint {
    /// The relation whose row count is constrained.
    pub table: String,
    /// Local predicate over the relation's own (non-FK) columns.
    pub predicate: TablePredicate,
    /// Conditions on the relation's foreign keys.
    pub fk_conditions: Vec<FkCondition>,
    /// The annotated output cardinality.
    pub cardinality: u64,
    /// Label identifying the originating query and plan edge.
    pub label: String,
}

impl VolumetricConstraint {
    /// True if this constraint has no predicate at all (it pins the total row
    /// count of the relation).
    pub fn is_total_row_count(&self) -> bool {
        self.predicate.is_trivial() && self.fk_conditions.is_empty()
    }
}

/// One node of an annotated query plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AqpNode {
    /// The plan operator.
    pub op: PlanOp,
    /// Observed output cardinality of this operator.
    pub cardinality: u64,
    /// Child nodes.
    pub children: Vec<AqpNode>,
}

impl AqpNode {
    /// Number of nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(AqpNode::node_count).sum::<usize>()
    }

    /// Pre-order traversal of the subtree.
    pub fn preorder(&self) -> Vec<&AqpNode> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.preorder());
        }
        out
    }

    /// Applies a mutation to every node of the subtree (pre-order).
    pub fn for_each_mut(&mut self, f: &mut impl FnMut(&mut AqpNode)) {
        f(self);
        for c in &mut self.children {
            c.for_each_mut(f);
        }
    }
}

/// An annotated query plan for one query of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedQueryPlan {
    /// The query this plan belongs to.
    pub query_name: String,
    /// Root node of the annotated plan.
    pub root: AqpNode,
}

impl AnnotatedQueryPlan {
    /// Builds an AQP by pairing a logical plan with per-node cardinalities in
    /// pre-order (node 0 = root).  Lengths must match.
    pub fn from_plan_with_cardinalities(
        query_name: impl Into<String>,
        plan: &LogicalPlan,
        cardinalities: &[u64],
    ) -> QueryResult<Self> {
        if cardinalities.len() != plan.node_count() {
            return Err(QueryError::MalformedAqp(format!(
                "expected {} cardinalities, got {}",
                plan.node_count(),
                cardinalities.len()
            )));
        }
        fn build(plan: &LogicalPlan, cards: &[u64], idx: &mut usize) -> AqpNode {
            let my = cards[*idx];
            *idx += 1;
            let children = plan.children.iter().map(|c| build(c, cards, idx)).collect();
            AqpNode {
                op: plan.op.clone(),
                cardinality: my,
                children,
            }
        }
        let mut idx = 0usize;
        let root = build(plan, cardinalities, &mut idx);
        Ok(AnnotatedQueryPlan {
            query_name: query_name.into(),
            root,
        })
    }

    /// Total number of annotated edges (= nodes).
    pub fn edge_count(&self) -> usize {
        self.root.node_count()
    }

    /// Serializes the AQP as JSON (the format the demo's client interface
    /// parses execution plans from).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("AQP serialization cannot fail")
    }

    /// Parses an AQP from JSON.
    pub fn from_json(json: &str) -> QueryResult<Self> {
        serde_json::from_str(json).map_err(|e| QueryError::MalformedAqp(e.to_string()))
    }

    /// Scales every cardinality by `factor` (rounding to nearest), used by
    /// scenario construction for "what-if" extrapolation.
    pub fn scale_cardinalities(&mut self, factor: f64) {
        self.root.for_each_mut(&mut |node| {
            node.cardinality = (node.cardinality as f64 * factor).round() as u64;
        });
    }

    /// Decomposes the AQP into per-relation volumetric constraints, one per
    /// annotated edge (the vendor-side preprocessor).
    pub fn constraints(&self) -> QueryResult<Vec<VolumetricConstraint>> {
        let mut out = Vec::new();
        let mut counter = 0usize;
        Self::walk(&self.root, &self.query_name, &mut counter, &mut out)?;
        Ok(out)
    }

    /// Recursively walks a node, emitting its constraint and returning the
    /// node's "profile": which table anchors its output and which predicates /
    /// FK conditions that output embodies.
    fn walk(
        node: &AqpNode,
        query_name: &str,
        counter: &mut usize,
        out: &mut Vec<VolumetricConstraint>,
    ) -> QueryResult<NodeProfile> {
        let label = format!("{query_name}#{counter}");
        *counter += 1;
        let profile = match &node.op {
            PlanOp::Scan { table } => NodeProfile {
                table: table.clone(),
                predicate: TablePredicate::always_true(),
                fk_conditions: Vec::new(),
            },
            PlanOp::Filter { table, predicate } => {
                if node.children.len() != 1 {
                    return Err(QueryError::MalformedAqp(
                        "filter node must have exactly one child".into(),
                    ));
                }
                let child = Self::walk(&node.children[0], query_name, counter, out)?;
                if &child.table != table {
                    return Err(QueryError::MalformedAqp(format!(
                        "filter on `{table}` applied to subtree anchored at `{}`",
                        child.table
                    )));
                }
                NodeProfile {
                    table: table.clone(),
                    predicate: merge_predicates(&child.predicate, predicate),
                    fk_conditions: child.fk_conditions,
                }
            }
            PlanOp::Join { edge } => {
                if node.children.len() != 2 {
                    return Err(QueryError::MalformedAqp(
                        "join node must have exactly two children".into(),
                    ));
                }
                let first = Self::walk(&node.children[0], query_name, counter, out)?;
                let second = Self::walk(&node.children[1], query_name, counter, out)?;
                let (fact, dim) = if first.table == edge.fact_table {
                    (first, second)
                } else if second.table == edge.fact_table {
                    (second, first)
                } else {
                    return Err(QueryError::MalformedAqp(format!(
                        "join `{}` has no child anchored at `{}`",
                        edge.to_sql(),
                        edge.fact_table
                    )));
                };
                if dim.table != edge.dim_table {
                    return Err(QueryError::MalformedAqp(format!(
                        "join `{}` has no child anchored at `{}`",
                        edge.to_sql(),
                        edge.dim_table
                    )));
                }
                let mut fk_conditions = fact.fk_conditions;
                fk_conditions.push(FkCondition {
                    fk_column: edge.fk_column.clone(),
                    dim_table: edge.dim_table.clone(),
                    dim_predicate: dim.predicate,
                    nested: dim.fk_conditions,
                });
                NodeProfile {
                    table: fact.table,
                    predicate: fact.predicate,
                    fk_conditions,
                }
            }
            PlanOp::Aggregate { .. } => {
                // AQPs annotate the SPJ body only; an aggregate root has no
                // per-edge cardinality semantics for the LP formulation.
                return Err(QueryError::MalformedAqp(
                    "aggregate operators do not appear in annotated query plans; \
                     annotate the SPJ body instead"
                        .into(),
                ));
            }
        };
        out.push(VolumetricConstraint {
            table: profile.table.clone(),
            predicate: profile.predicate.clone(),
            fk_conditions: profile.fk_conditions.clone(),
            cardinality: node.cardinality,
            label,
        });
        Ok(profile)
    }
}

/// Intermediate result of the recursive constraint extraction.
struct NodeProfile {
    table: String,
    predicate: TablePredicate,
    fk_conditions: Vec<FkCondition>,
}

/// Merges two predicates on the same table into their conjunction.
fn merge_predicates(a: &TablePredicate, b: &TablePredicate) -> TablePredicate {
    let mut conjuncts = a.conjuncts().to_vec();
    conjuncts.extend(b.conjuncts().iter().cloned());
    TablePredicate::from_conjuncts(conjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColumnPredicate, CompareOp};
    use crate::query::{JoinEdge, SpjQuery};

    fn figure1_query() -> SpjQuery {
        let mut q = SpjQuery::new("fig1");
        q.add_join(JoinEdge::new("R", "S_fk", "S", "S_pk"));
        q.add_join(JoinEdge::new("R", "T_fk", "T", "T_pk"));
        q.set_predicate(
            "S",
            TablePredicate::always_true()
                .with(ColumnPredicate::new("A", CompareOp::Ge, 20))
                .with(ColumnPredicate::new("A", CompareOp::Lt, 60)),
        );
        q.set_predicate(
            "T",
            TablePredicate::always_true()
                .with(ColumnPredicate::new("C", CompareOp::Ge, 2))
                .with(ColumnPredicate::new("C", CompareOp::Lt, 3)),
        );
        q
    }

    /// Builds the Figure-1c AQP: |R| = 1000, |S| = 200, |T| = 10,
    /// σ(S) = 80, σ(T) = 1, R ⋈ σ(S) = 400, (R ⋈ σ(S)) ⋈ σ(T) = 40.
    fn figure1_aqp() -> AnnotatedQueryPlan {
        let q = figure1_query();
        let plan = LogicalPlan::from_query(&q).unwrap();
        // Pre-order: Join(T), Join(S), Scan(R), Filter(S), Scan(S), Filter(T), Scan(T)
        let cards = vec![40, 400, 1000, 80, 200, 1, 10];
        AnnotatedQueryPlan::from_plan_with_cardinalities("fig1", &plan, &cards).unwrap()
    }

    #[test]
    fn aqp_construction_and_counts() {
        let aqp = figure1_aqp();
        assert_eq!(aqp.edge_count(), 7);
        assert_eq!(aqp.root.cardinality, 40);
    }

    #[test]
    fn wrong_cardinality_count_is_rejected() {
        let q = figure1_query();
        let plan = LogicalPlan::from_query(&q).unwrap();
        assert!(AnnotatedQueryPlan::from_plan_with_cardinalities("x", &plan, &[1, 2]).is_err());
    }

    #[test]
    fn constraint_extraction_matches_figure1() {
        let aqp = figure1_aqp();
        let cs = aqp.constraints().unwrap();
        assert_eq!(cs.len(), 7);

        // Scan constraints pin total row counts.
        let scan_r = cs
            .iter()
            .find(|c| c.table == "R" && c.is_total_row_count())
            .unwrap();
        assert_eq!(scan_r.cardinality, 1000);

        // Filter on S: 80 rows with 20 <= A < 60.
        let filter_s = cs
            .iter()
            .find(|c| c.table == "S" && !c.predicate.is_trivial())
            .unwrap();
        assert_eq!(filter_s.cardinality, 80);
        assert_eq!(filter_s.predicate.conjuncts().len(), 2);

        // Join with S: 400 R-rows whose S_fk satisfies the S predicate.
        let join_s = cs
            .iter()
            .find(|c| c.table == "R" && c.fk_conditions.len() == 1)
            .unwrap();
        assert_eq!(join_s.cardinality, 400);
        assert_eq!(join_s.fk_conditions[0].fk_column, "S_fk");
        assert_eq!(join_s.fk_conditions[0].dim_table, "S");
        assert_eq!(join_s.fk_conditions[0].dim_predicate.conjuncts().len(), 2);

        // Root join: 40 R-rows constrained on both FKs.
        let root = cs
            .iter()
            .find(|c| c.table == "R" && c.fk_conditions.len() == 2)
            .unwrap();
        assert_eq!(root.cardinality, 40);
    }

    #[test]
    fn snowflake_constraints_nest() {
        let mut q = SpjQuery::new("snow");
        q.add_join(JoinEdge::new("fact", "mid_fk", "mid", "mid_pk"));
        q.add_join(JoinEdge::new("mid", "leaf_fk", "leaf", "leaf_pk"));
        q.set_predicate(
            "leaf",
            TablePredicate::always_true().with(ColumnPredicate::new("x", CompareOp::Eq, 1)),
        );
        let plan = LogicalPlan::from_query(&q).unwrap();
        // Pre-order: Join(fact-mid), Scan(fact), Join(mid-leaf), Scan(mid), Filter(leaf), Scan(leaf)
        let cards = vec![30, 100, 40, 50, 5, 20];
        let aqp = AnnotatedQueryPlan::from_plan_with_cardinalities("snow", &plan, &cards).unwrap();
        let cs = aqp.constraints().unwrap();
        let root = cs
            .iter()
            .find(|c| c.table == "fact" && !c.fk_conditions.is_empty())
            .unwrap();
        assert_eq!(root.cardinality, 30);
        assert_eq!(root.fk_conditions.len(), 1);
        let mid_cond = &root.fk_conditions[0];
        assert_eq!(mid_cond.dim_table, "mid");
        assert_eq!(mid_cond.nested.len(), 1);
        assert_eq!(mid_cond.nested[0].dim_table, "leaf");
        assert_eq!(mid_cond.nested[0].dim_predicate.conjuncts().len(), 1);
    }

    #[test]
    fn scaling_cardinalities() {
        let mut aqp = figure1_aqp();
        aqp.scale_cardinalities(10.0);
        assert_eq!(aqp.root.cardinality, 400);
        let scan_r = aqp
            .root
            .preorder()
            .into_iter()
            .find(|n| matches!(&n.op, PlanOp::Scan { table } if table == "R"))
            .unwrap();
        assert_eq!(scan_r.cardinality, 10_000);
    }

    #[test]
    fn json_round_trip() {
        let aqp = figure1_aqp();
        let json = aqp.to_json();
        let back = AnnotatedQueryPlan::from_json(&json).unwrap();
        assert_eq!(aqp, back);
        assert!(AnnotatedQueryPlan::from_json("{broken").is_err());
    }

    #[test]
    fn malformed_join_children_rejected() {
        // A join node whose children do not include the fact table.
        let node = AqpNode {
            op: PlanOp::Join {
                edge: JoinEdge::new("R", "S_fk", "S", "S_pk"),
            },
            cardinality: 1,
            children: vec![
                AqpNode {
                    op: PlanOp::Scan { table: "X".into() },
                    cardinality: 1,
                    children: vec![],
                },
                AqpNode {
                    op: PlanOp::Scan { table: "Y".into() },
                    cardinality: 1,
                    children: vec![],
                },
            ],
        };
        let aqp = AnnotatedQueryPlan {
            query_name: "bad".into(),
            root: node,
        };
        assert!(aqp.constraints().is_err());
    }
}
