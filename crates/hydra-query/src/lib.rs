//! # hydra-query
//!
//! The query-side substrate of HYDRA: select-project-join (SPJ) queries with
//! conjunctive range/equality predicates and key/foreign-key joins, their
//! logical plans, and the *Annotated Query Plan* (AQP) — a plan whose every
//! edge carries the output row cardinality observed when the query ran on the
//! client's warehouse.
//!
//! The crate also contains the volumetric-constraint extraction that the
//! vendor-side preprocessor (sourced from DataSynth in the paper) applies to
//! AQPs: every annotated plan edge becomes a constraint of the form "the
//! number of rows of relation *R* that satisfy *this* conjunction of local
//! predicates and foreign-key conditions is *c*".
//!
//! ## Example: the paper's Figure 1 query
//!
//! ```
//! use hydra_query::parser::parse_query;
//!
//! let q = parse_query(
//!     "select * from R, S, T \
//!      where R.S_fk = S.S_pk and R.T_fk = T.T_pk \
//!        and S.A >= 20 and S.A < 60 and T.C >= 2 and T.C < 3",
//! ).unwrap();
//! assert_eq!(q.tables, vec!["R", "S", "T"]);
//! assert_eq!(q.joins.len(), 2);
//! assert_eq!(q.predicate("S").unwrap().conjuncts().len(), 2);
//! ```
//!
//! ## Aggregate queries
//!
//! The closed workload class also contains COUNT / SUM / AVG aggregates with
//! GROUP BY ([`exec::AggregateQuery`]); those are what the summary-direct
//! executor answers from region cardinalities alone:
//!
//! ```
//! use hydra_query::parser::parse_aggregate_query;
//!
//! let q = parse_aggregate_query(
//!     "select count(*), avg(item.i_current_price) from store_sales, item \
//!      where store_sales.ss_item_fk = item.i_item_sk \
//!      group by item.i_category",
//! ).unwrap();
//! assert_eq!(q.aggregates.len(), 2);
//! assert_eq!(q.group_by[0].to_string(), "item.i_category");
//! ```

#![warn(missing_docs)]

pub mod aqp;
pub mod delta;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod workload;

pub use aqp::{AnnotatedQueryPlan, AqpNode, FkCondition, VolumetricConstraint};
pub use delta::{ConstraintSet, WorkloadDelta};
pub use error::{QueryError, QueryResult, Span};
pub use exec::{
    AggExpr, AggFunc, AggregateQuery, Aggregator, AnswerRow, ColumnRef, ExecStrategy, QueryAnswer,
};
pub use plan::{LogicalPlan, PlanOp};
pub use predicate::{ColumnPredicate, CompareOp, TablePredicate};
pub use query::{JoinEdge, SpjQuery};
pub use workload::{QueryWorkload, WorkloadEntry};
