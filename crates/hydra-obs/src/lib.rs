//! # hydra-obs
//!
//! The observability core of the HYDRA stack: a dependency-free (std-only)
//! metrics library every other crate in the workspace instruments itself
//! with, plus one [`MetricsRegistry`] that turns the recorded state into a
//! Prometheus text exposition, a flat sample list for the wire protocols,
//! and a slow-request log.
//!
//! Three primitives, all lock-free on the record path:
//!
//! * [`Counter`] — a monotonically increasing `u64`, sharded across
//!   cache-line-padded atomics so concurrent writers never bounce one line;
//! * [`Gauge`] — a signed instantaneous value (`inc`/`dec`/`set`) with a
//!   monotone [`Gauge::record_max`] mode for high-water marks;
//! * [`Histogram`] — a log-linear latency/size histogram: 64 linear
//!   sub-buckets per power-of-two octave (≤ 1/64 ≈ 1.6 % relative error,
//!   values below 64 exact), a fixed 2 304-bucket layout, exact max/min
//!   side-channels, and mergeable [`HistogramSnapshot`]s with
//!   p50/p90/p99 estimation.
//!
//! [`Span`] is the tracing face: `registry.span("frame.query")` stamps a
//! process-unique request id, and dropping the span records its duration
//! into the per-op histogram, bumps the per-op request/error counters, and
//! emits one structured stderr line through the optional [`SlowLog`] when
//! the request ran over threshold.  A span is a plain value, so the wire
//! layer can move it into a worker-pool task and the id follows the request
//! across reactor → worker → query/solve/generate layers.
//!
//! ```
//! use hydra_obs::MetricsRegistry;
//! use std::time::Duration;
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("hydra_reactor_accepts_total").add(3);
//! registry
//!     .histogram_labeled("hydra_request_seconds", "op", "frame.list")
//!     .record_duration(Duration::from_micros(250));
//! let text = registry.snapshot().render_prometheus();
//! assert!(text.contains("hydra_reactor_accepts_total 3"));
//! assert!(text.contains("hydra_request_seconds{op=\"frame.list\",quantile=\"0.99\"}"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod counter;
mod histogram;
mod registry;
mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, TOTAL_BUCKETS};
pub use registry::{
    FamilyDesc, MetricKind, MetricsRegistry, MetricsSnapshot, Sample, SampleName, Unit, FAMILIES,
};
pub use span::{SlowLog, Span, SpanOutcome};
