//! The log-linear histogram: fixed layout, lock-free record path,
//! mergeable snapshots.
//!
//! Layout: values below 64 land in 64 exact unit buckets; every power-of-two
//! octave above that is split into 64 linear sub-buckets, so the relative
//! quantization error is bounded by 1/64 ≈ 1.6 % everywhere.  Octaves 6
//! through 40 are covered (values up to 2^41 ≈ 36 minutes in nanoseconds,
//! or 2 TiB in bytes); larger values saturate into the top bucket.  The
//! whole layout is `64 + 35 × 64 = 2 304` buckets — `u64` adds on a fixed
//! array, no allocation, no locks, no resizing.
//!
//! Exact `max`/`min` ride in dedicated atomics so tail reporting is not
//! subject to bucket quantization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per octave (and the size of the exact low range).
const LINEAR: usize = 64;
/// First octave with sub-bucket resolution (values `< 2^(FIRST+1)` but
/// `>= 2^FIRST = LINEAR`).
const FIRST_OCTAVE: u32 = 6;
/// Last covered octave; larger values saturate into the final bucket.
const MAX_OCTAVE: u32 = 40;
/// Number of sub-bucketed octave groups.
const GROUPS: usize = (MAX_OCTAVE - FIRST_OCTAVE + 1) as usize;
/// Total bucket count of the fixed layout.
pub const TOTAL_BUCKETS: usize = LINEAR + GROUPS * LINEAR;

/// Index of the bucket owning value `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    if octave > MAX_OCTAVE {
        return TOTAL_BUCKETS - 1;
    }
    let group = (octave - FIRST_OCTAVE) as usize;
    let sub = ((v >> (octave - FIRST_OCTAVE)) & (LINEAR as u64 - 1)) as usize;
    LINEAR + group * LINEAR + sub
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < LINEAR {
        return i as u64;
    }
    let group = (i - LINEAR) / LINEAR;
    let sub = (i - LINEAR) % LINEAR;
    (1u64 << (group as u32 + FIRST_OCTAVE)) + (sub as u64) * (1u64 << group)
}

/// Midpoint of bucket `i`, used as its representative for quantiles.
fn bucket_mid(i: usize) -> u64 {
    if i < LINEAR {
        return i as u64; // exact
    }
    let group = (i - LINEAR) / LINEAR;
    bucket_lower(i) + (1u64 << group) / 2
}

/// A fixed-layout log-linear histogram with a lock-free record path.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..TOTAL_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one value.  Three relaxed atomic RMWs; no locks, no
    /// allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total recorded values (sum over buckets, so it always agrees with
    /// the bucket contents a quantile walk sees).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy, mergeable with snapshots of other histograms.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`].  Snapshots merge bucket-wise,
/// which makes the merge associative and commutative — merging per-shard
/// or per-layer snapshots in any order yields the same aggregate (the
/// `obs_proptests` suite pins this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts in the fixed layout.
    pub buckets: Vec<u64>,
    /// Total recorded values (always the sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact largest recorded value (0 when empty).
    pub max: u64,
    /// Exact smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; TOTAL_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): the representative value of the
    /// bucket holding the rank-`⌈q·count⌉` observation, clamped into
    /// `[min, max]` so the estimate never leaves the observed range.
    /// Exact for values below 64; within 1/64 relative error above.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn low_values_are_exact() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..64usize {
            assert_eq!(snap.buckets[v], 1, "bucket {v}");
        }
        assert_eq!(snap.count, 64);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 63);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's lower bound must map back to that bucket, and
        // bounds must be strictly increasing.
        let mut prev = None;
        for i in 0..TOTAL_BUCKETS {
            let lower = bucket_lower(i);
            assert_eq!(bucket_index(lower), i, "lower bound of bucket {i}");
            if let Some(p) = prev {
                assert!(lower > p, "bounds not increasing at bucket {i}");
            }
            prev = Some(lower);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 1_000, 65_537, 1 << 20, (1 << 30) + 12345, 1 << 40] {
            let i = bucket_index(v);
            let mid = bucket_mid(i);
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0, "value {v}: error {err}");
        }
    }

    #[test]
    fn huge_values_saturate() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.buckets[TOTAL_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.50) as f64;
        let p99 = snap.quantile(0.99) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 {p99}");
        assert_eq!(snap.quantile(1.0), 1000);
        assert_eq!(snap.max, 1000);
    }

    #[test]
    fn concurrent_records_count_exactly() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(100_000);
        b.record(7);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 100_017);
        assert_eq!(merged.min, 7);
        assert_eq!(merged.max, 100_000);
    }
}
