//! The metrics registry: one per `Hydra` session, shared by every layer
//! that session touches (reactor, frame service, pg wire, query engine,
//! LP solver, datagen, summary registry).
//!
//! Metrics are **named instances of families**: a family is
//! `hydra_requests_total` with one label key (`op`), an instance is
//! `hydra_requests_total{op="frame.list"}`.  Every known family is
//! pre-registered at construction so the Prometheus exposition always
//! covers all instrumented layers — a scrape of a freshly started server
//! shows every family at zero rather than an empty page.
//!
//! The registry is deliberately **per session rather than process-global**:
//! parallel tests in one binary each get their own counters, so the
//! torture-suite invariants (`accepted == closed + live`, byte equality)
//! hold exactly instead of being polluted by the neighbouring test's
//! traffic.

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::span::{SlowLog, Span};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Log-linear histogram, exposed as a Prometheus summary.
    Histogram,
}

/// How recorded values are scaled for exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless counts (requests, rows, events).
    Count,
    /// Bytes.
    Bytes,
    /// Recorded as nanoseconds, exposed as seconds.
    Nanos,
}

impl Unit {
    fn scale(self, v: f64) -> f64 {
        match self {
            Unit::Nanos => v / 1e9,
            Unit::Count | Unit::Bytes => v,
        }
    }
}

/// A metric family descriptor: exposition metadata plus the layer it
/// instruments (the docs' metric table is generated from this).
#[derive(Debug, Clone, Copy)]
pub struct FamilyDesc {
    /// Family name (`hydra_*`, Prometheus conventions).
    pub name: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Value scaling for exposition.
    pub unit: Unit,
    /// Label key instances of this family carry (empty = unlabeled).
    pub label_key: &'static str,
    /// Which layer records it.
    pub layer: &'static str,
    /// One-line help text.
    pub help: &'static str,
}

/// Every family the stack records, pre-registered on construction.  Seven
/// layers: reactor, service (frame), pgwire, query, lp, datagen/registry,
/// and wal (durability).
pub const FAMILIES: &[FamilyDesc] = &[
    // -- reactor ---------------------------------------------------------
    FamilyDesc {
        name: "hydra_reactor_poll_wait_seconds",
        kind: MetricKind::Histogram,
        unit: Unit::Nanos,
        label_key: "",
        layer: "reactor",
        help: "Time the event loop spent blocked in epoll_wait, per tick",
    },
    FamilyDesc {
        name: "hydra_reactor_dispatch_seconds",
        kind: MetricKind::Histogram,
        unit: Unit::Nanos,
        label_key: "",
        layer: "reactor",
        help: "Loop time spent dispatching one tick's events, completions and timers",
    },
    FamilyDesc {
        name: "hydra_reactor_ready_events",
        kind: MetricKind::Histogram,
        unit: Unit::Count,
        label_key: "",
        layer: "reactor",
        help: "Ready events returned per epoll_wait tick",
    },
    FamilyDesc {
        name: "hydra_reactor_accepts_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "reactor",
        help: "Connections accepted",
    },
    FamilyDesc {
        name: "hydra_reactor_closes_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "reactor",
        help: "Connections closed",
    },
    FamilyDesc {
        name: "hydra_reactor_evictions_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "reactor",
        help: "Stalled connections force-disconnected by the stall deadline",
    },
    FamilyDesc {
        name: "hydra_reactor_parks_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "reactor",
        help: "Tasks parked on write-queue backpressure (AwaitDrain)",
    },
    FamilyDesc {
        name: "hydra_reactor_timer_cascades_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "reactor",
        help: "Timer-wheel expirations dispatched",
    },
    FamilyDesc {
        name: "hydra_reactor_bytes_in_total",
        kind: MetricKind::Counter,
        unit: Unit::Bytes,
        label_key: "",
        layer: "reactor",
        help: "Bytes read from client sockets",
    },
    FamilyDesc {
        name: "hydra_reactor_bytes_out_total",
        kind: MetricKind::Counter,
        unit: Unit::Bytes,
        label_key: "",
        layer: "reactor",
        help: "Bytes written to client sockets",
    },
    FamilyDesc {
        name: "hydra_reactor_write_queue_peak_bytes",
        kind: MetricKind::Gauge,
        unit: Unit::Bytes,
        label_key: "",
        layer: "reactor",
        help: "High-water mark of any connection's bounded write queue",
    },
    FamilyDesc {
        name: "hydra_connections_active",
        kind: MetricKind::Gauge,
        unit: Unit::Count,
        label_key: "",
        layer: "reactor",
        help: "Currently open connections",
    },
    // -- service (frame) + pgwire ---------------------------------------
    FamilyDesc {
        name: "hydra_requests_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "op",
        layer: "service",
        help: "Requests served, by operation",
    },
    FamilyDesc {
        name: "hydra_request_errors_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "op",
        layer: "service",
        help: "Requests that failed, by operation",
    },
    FamilyDesc {
        name: "hydra_request_seconds",
        kind: MetricKind::Histogram,
        unit: Unit::Nanos,
        label_key: "op",
        layer: "service",
        help: "End-to-end request latency, by operation",
    },
    FamilyDesc {
        name: "hydra_requests_inflight",
        kind: MetricKind::Gauge,
        unit: Unit::Count,
        label_key: "",
        layer: "service",
        help: "Requests currently being served",
    },
    FamilyDesc {
        name: "hydra_frame_bytes_total",
        kind: MetricKind::Counter,
        unit: Unit::Bytes,
        label_key: "",
        layer: "service",
        help: "Frame-protocol response bytes queued for clients",
    },
    FamilyDesc {
        name: "hydra_stream_rows_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "service",
        help: "Tuples streamed to wire clients (frame batches + pg DataRows)",
    },
    FamilyDesc {
        name: "hydra_pg_datarow_bytes_total",
        kind: MetricKind::Counter,
        unit: Unit::Bytes,
        label_key: "",
        layer: "pgwire",
        help: "Bytes of encoded pg DataRow messages",
    },
    FamilyDesc {
        name: "hydra_pg_errors_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "sqlstate",
        layer: "pgwire",
        help: "pg wire errors, by SQLSTATE",
    },
    // -- query engine ----------------------------------------------------
    FamilyDesc {
        name: "hydra_query_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "strategy",
        layer: "query",
        help: "Aggregate queries answered, by execution strategy (summary_direct vs tuple_scan)",
    },
    FamilyDesc {
        name: "hydra_query_seconds",
        kind: MetricKind::Histogram,
        unit: Unit::Nanos,
        label_key: "strategy",
        layer: "query",
        help: "Aggregate query latency, by execution strategy",
    },
    // -- lp --------------------------------------------------------------
    FamilyDesc {
        name: "hydra_lp_solves_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "outcome",
        layer: "lp",
        help: "Per-relation LP solves, by outcome (cold, warm_hit, warm_fellback, reused)",
    },
    FamilyDesc {
        name: "hydra_lp_solve_seconds",
        kind: MetricKind::Histogram,
        unit: Unit::Nanos,
        label_key: "relation",
        layer: "lp",
        help: "LP solve time, by relation",
    },
    // -- datagen ---------------------------------------------------------
    FamilyDesc {
        name: "hydra_datagen_rows_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "table",
        layer: "datagen",
        help: "Tuples dynamically generated, by relation",
    },
    FamilyDesc {
        name: "hydra_datagen_rows_per_sec",
        kind: MetricKind::Gauge,
        unit: Unit::Count,
        label_key: "",
        layer: "datagen",
        help: "Achieved generation velocity of the most recent completed stream",
    },
    FamilyDesc {
        name: "hydra_governor_sleep_seconds_total",
        kind: MetricKind::Counter,
        unit: Unit::Nanos,
        label_key: "",
        layer: "datagen",
        help: "Total time streams spent parked by the velocity governor",
    },
    // -- registry --------------------------------------------------------
    FamilyDesc {
        name: "hydra_registry_publishes_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "registry",
        help: "Summaries published (full solves)",
    },
    FamilyDesc {
        name: "hydra_registry_delta_merges_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "registry",
        help: "Workload deltas merged into published summaries",
    },
    FamilyDesc {
        name: "hydra_registry_version",
        kind: MetricKind::Gauge,
        unit: Unit::Count,
        label_key: "name",
        layer: "registry",
        help: "Current version of each published summary",
    },
    FamilyDesc {
        name: "hydra_registry_block_churn_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "kind",
        layer: "registry",
        help: "Summary blocks added/removed/resized by delta merges",
    },
    FamilyDesc {
        name: "hydra_registry_persist_errors_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "registry",
        help: "Registry disk persists that failed (the entry stays servable in memory)",
    },
    // -- durability (WAL + checkpoints) ----------------------------------
    FamilyDesc {
        name: "hydra_wal_records_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "op",
        layer: "wal",
        help: "Records appended to the write-ahead log, by operation",
    },
    FamilyDesc {
        name: "hydra_wal_bytes_total",
        kind: MetricKind::Counter,
        unit: Unit::Bytes,
        label_key: "",
        layer: "wal",
        help: "Bytes appended to the write-ahead log (framing included)",
    },
    FamilyDesc {
        name: "hydra_wal_checkpoints_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "",
        layer: "wal",
        help: "Solved-state snapshots written (each truncates the WAL)",
    },
    FamilyDesc {
        name: "hydra_wal_recovered_records_total",
        kind: MetricKind::Counter,
        unit: Unit::Count,
        label_key: "source",
        layer: "wal",
        help: "Summary versions recovered at boot, by source (snapshot or wal)",
    },
];

fn family(name: &str) -> Option<&'static FamilyDesc> {
    FAMILIES.iter().find(|f| f.name == name)
}

/// Unit for a (possibly unknown) family name, by suffix convention.
fn unit_of(name: &str) -> Unit {
    match family(name) {
        Some(desc) => desc.unit,
        None if name.contains("seconds") => Unit::Nanos,
        None if name.contains("bytes") => Unit::Bytes,
        None => Unit::Count,
    }
}

type Key = (String, Option<(String, String)>);

/// A metric instance's identity in a snapshot: family plus optional label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SampleName {
    /// The family name.
    pub family: String,
    /// Optional `(key, value)` label.
    pub label: Option<(String, String)>,
}

impl std::fmt::Display for SampleName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.label {
            Some((k, v)) => write!(f, "{}{{{}={:?}}}", self.family, k, v),
            None => write!(f, "{}", self.family),
        }
    }
}

/// One flattened sample: histograms expand into `_count`, `_sum`,
/// quantiles and `_max` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (family, possibly with a `_count`/`_sum`/`_max`
    /// suffix for expanded histograms).
    pub name: String,
    /// Optional `(key, value)` label.
    pub label: Option<(String, String)>,
    /// The value, unit-scaled (`Nanos` families are in seconds).
    pub value: f64,
}

/// The registry.  Cheap to clone behind an `Arc`; all methods take
/// `&self`.
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<Key, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Key, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
    next_request_id: AtomicU64,
    slow_log: RwLock<Option<Arc<SlowLog>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new_inner()
    }
}

impl MetricsRegistry {
    /// A fresh registry with every known family pre-registered (so the
    /// exposition covers all layers from the first scrape).
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(Self::new_inner())
    }

    fn new_inner() -> MetricsRegistry {
        let registry = MetricsRegistry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            next_request_id: AtomicU64::new(1),
            slow_log: RwLock::new(None),
        };
        for desc in FAMILIES {
            match desc.kind {
                MetricKind::Counter => {
                    registry.counter(desc.name);
                }
                MetricKind::Gauge => {
                    registry.gauge(desc.name);
                }
                MetricKind::Histogram => {
                    registry.histogram(desc.name);
                }
            }
        }
        registry
    }

    fn get_or_insert<T: Default>(
        map: &RwLock<BTreeMap<Key, Arc<T>>>,
        name: &str,
        label: Option<(&str, &str)>,
    ) -> Arc<T> {
        let read = map.read().expect("metrics map poisoned");
        // Fast path without allocating the owned key.
        if let Some(found) = read.iter().find(|((f, l), _)| {
            f == name
                && match (l, label) {
                    (None, None) => true,
                    (Some((lk, lv)), Some((k, v))) => lk == k && lv == v,
                    _ => false,
                }
        }) {
            return Arc::clone(found.1);
        }
        drop(read);
        let key = (
            name.to_string(),
            label.map(|(k, v)| (k.to_string(), v.to_string())),
        );
        let mut write = map.write().expect("metrics map poisoned");
        Arc::clone(write.entry(key).or_default())
    }

    /// The unlabeled counter of `family`, created on first use.
    pub fn counter(&self, family: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, family, None)
    }

    /// The `{key="value"}` counter of `family`, created on first use.
    pub fn counter_labeled(&self, family: &str, key: &str, value: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, family, Some((key, value)))
    }

    /// The unlabeled gauge of `family`, created on first use.
    pub fn gauge(&self, family: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, family, None)
    }

    /// The `{key="value"}` gauge of `family`, created on first use.
    pub fn gauge_labeled(&self, family: &str, key: &str, value: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, family, Some((key, value)))
    }

    /// The unlabeled histogram of `family`, created on first use.
    pub fn histogram(&self, family: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, family, None)
    }

    /// The `{key="value"}` histogram of `family`, created on first use.
    pub fn histogram_labeled(&self, family: &str, key: &str, value: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, family, Some((key, value)))
    }

    /// The next process-unique request id.
    pub fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Arms (or disarms, with `None`) the slow-request log.
    pub fn set_slow_log(&self, slow: Option<SlowLog>) {
        *self.slow_log.write().expect("slow log poisoned") = slow.map(Arc::new);
    }

    /// The armed slow log, if any.
    pub fn slow_log(&self) -> Option<Arc<SlowLog>> {
        self.slow_log.read().expect("slow log poisoned").clone()
    }

    /// Opens a request span for `op`: stamps a request id, bumps the
    /// in-flight gauge, and records duration + outcome under
    /// `hydra_request_seconds{op=…}` / `hydra_requests_total{op=…}` on
    /// drop.
    pub fn span(&self, op: &'static str) -> Span {
        Span::new(
            self.next_request_id(),
            op,
            self.histogram_labeled("hydra_request_seconds", "op", op),
            self.counter_labeled("hydra_requests_total", "op", op),
            self.counter_labeled("hydra_request_errors_total", "op", op),
            self.gauge("hydra_requests_inflight"),
            self.slow_log(),
        )
    }

    /// A point-in-time copy of every metric instance.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let name_of = |key: &Key| SampleName {
            family: key.0.clone(),
            label: key.1.clone(),
        };
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics map poisoned")
                .iter()
                .map(|(k, c)| (name_of(k), c.value()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics map poisoned")
                .iter()
                .map(|(k, g)| (name_of(k), g.value()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics map poisoned")
                .iter()
                .map(|(k, h)| (name_of(k), h.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

/// A point-in-time copy of a whole registry, renderable as Prometheus
/// text exposition or flattened into [`Sample`]s for the wire surfaces.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Counter instances and their totals.
    pub counters: Vec<(SampleName, u64)>,
    /// Gauge instances and their values.
    pub gauges: Vec<(SampleName, i64)>,
    /// Histogram instances and their snapshots.
    pub histograms: Vec<(SampleName, HistogramSnapshot)>,
}

fn prom_label(label: &Option<(String, String)>, extra: Option<(&str, &str)>) -> String {
    let mut parts = Vec::new();
    if let Some((k, v)) = label {
        parts.push(format!("{k}={v:?}"));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}={v:?}"));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn prom_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4).  Histograms render as `summary` families with
    /// p50/p90/p99 quantile samples plus `_sum`/`_count`, and an extra
    /// `<family>_max` gauge family carrying the exact maximum.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter_families: BTreeMap<&str, Vec<&(SampleName, u64)>> = BTreeMap::new();
        for entry in &self.counters {
            counter_families
                .entry(&entry.0.family)
                .or_default()
                .push(entry);
        }
        for (fam, entries) in counter_families {
            let unit = unit_of(fam);
            let help = family(fam).map(|d| d.help).unwrap_or("counter");
            out.push_str(&format!("# HELP {fam} {help}\n# TYPE {fam} counter\n"));
            for (name, value) in entries {
                out.push_str(&format!(
                    "{fam}{} {}\n",
                    prom_label(&name.label, None),
                    prom_number(unit.scale(*value as f64))
                ));
            }
        }
        let mut gauge_families: BTreeMap<&str, Vec<&(SampleName, i64)>> = BTreeMap::new();
        for entry in &self.gauges {
            gauge_families
                .entry(&entry.0.family)
                .or_default()
                .push(entry);
        }
        for (fam, entries) in gauge_families {
            let unit = unit_of(fam);
            let help = family(fam).map(|d| d.help).unwrap_or("gauge");
            out.push_str(&format!("# HELP {fam} {help}\n# TYPE {fam} gauge\n"));
            for (name, value) in entries {
                out.push_str(&format!(
                    "{fam}{} {}\n",
                    prom_label(&name.label, None),
                    prom_number(unit.scale(*value as f64))
                ));
            }
        }
        let mut hist_families: BTreeMap<&str, Vec<&(SampleName, HistogramSnapshot)>> =
            BTreeMap::new();
        for entry in &self.histograms {
            hist_families
                .entry(&entry.0.family)
                .or_default()
                .push(entry);
        }
        for (fam, entries) in hist_families {
            let unit = unit_of(fam);
            let help = family(fam).map(|d| d.help).unwrap_or("histogram");
            out.push_str(&format!("# HELP {fam} {help}\n# TYPE {fam} summary\n"));
            for (name, snap) in &entries {
                for (q, qs) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "{fam}{} {}\n",
                        prom_label(&name.label, Some(("quantile", qs))),
                        prom_number(unit.scale(snap.quantile(q) as f64))
                    ));
                }
                out.push_str(&format!(
                    "{fam}_sum{} {}\n",
                    prom_label(&name.label, None),
                    prom_number(unit.scale(snap.sum as f64))
                ));
                out.push_str(&format!(
                    "{fam}_count{} {}\n",
                    prom_label(&name.label, None),
                    snap.count
                ));
            }
            out.push_str(&format!(
                "# HELP {fam}_max exact maximum observed by {fam}\n# TYPE {fam}_max gauge\n"
            ));
            for (name, snap) in &entries {
                out.push_str(&format!(
                    "{fam}_max{} {}\n",
                    prom_label(&name.label, None),
                    prom_number(unit.scale(snap.max as f64))
                ));
            }
        }
        out
    }

    /// Flattens the snapshot into unit-scaled samples — the payload of the
    /// frame `Stats` response and the pg `hydra_metrics` virtual table.
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        for (name, value) in &self.counters {
            out.push(Sample {
                name: name.family.clone(),
                label: name.label.clone(),
                value: unit_of(&name.family).scale(*value as f64),
            });
        }
        for (name, value) in &self.gauges {
            out.push(Sample {
                name: name.family.clone(),
                label: name.label.clone(),
                value: unit_of(&name.family).scale(*value as f64),
            });
        }
        for (name, snap) in &self.histograms {
            let unit = unit_of(&name.family);
            let expanded = [
                ("_count", snap.count as f64, Unit::Count),
                ("_sum", snap.sum as f64, unit),
                ("_p50", snap.quantile(0.50) as f64, unit),
                ("_p90", snap.quantile(0.90) as f64, unit),
                ("_p99", snap.quantile(0.99) as f64, unit),
                ("_max", snap.max as f64, unit),
            ];
            for (suffix, value, u) in expanded {
                out.push(Sample {
                    name: format!("{}{suffix}", name.family),
                    label: name.label.clone(),
                    value: u.scale(value),
                });
            }
        }
        out
    }

    /// The value of one instance: counters/gauges by exact name + label;
    /// histogram sub-samples via the `_count`/`_sum`/`_p50`/`_p90`/
    /// `_p99`/`_max` suffixed names.  Unit-scaled like [`Self::samples`].
    pub fn value(&self, name: &str, label: Option<(&str, &str)>) -> Option<f64> {
        self.samples()
            .into_iter()
            .find(|s| {
                s.name == name
                    && match (&s.label, label) {
                        (None, None) => true,
                        (Some((lk, lv)), Some((k, v))) => lk == k && lv == v,
                        _ => false,
                    }
            })
            .map(|s| s.value)
    }

    /// Sum of a counter family across all its labels (raw, unscaled).
    pub fn counter_total(&self, family: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.family == family)
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_pre_registered() {
        let registry = MetricsRegistry::new();
        let text = registry.snapshot().render_prometheus();
        for desc in FAMILIES {
            assert!(
                text.contains(&format!("# TYPE {} ", desc.name)),
                "family {} missing from exposition",
                desc.name
            );
        }
        for layer in [
            "reactor", "service", "pgwire", "query", "lp", "datagen", "registry", "wal",
        ] {
            assert!(
                FAMILIES.iter().any(|d| d.layer == layer),
                "no family covers layer {layer}"
            );
        }
    }

    #[test]
    fn exposition_lines_are_well_formed() {
        let registry = MetricsRegistry::new();
        registry
            .counter_labeled("hydra_requests_total", "op", "frame.list")
            .add(2);
        registry.gauge("hydra_connections_active").set(5);
        registry
            .histogram_labeled("hydra_request_seconds", "op", "frame.list")
            .record(1_500_000);
        for line in registry.snapshot().render_prometheus().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(
                !name.is_empty() && !name.contains(' ') || name.contains('{'),
                "{line}"
            );
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in: {line}"));
        }
    }

    #[test]
    fn nanos_families_render_in_seconds() {
        let registry = MetricsRegistry::new();
        registry
            .histogram("hydra_reactor_poll_wait_seconds")
            .record(2_000_000_000);
        let snap = registry.snapshot();
        assert_eq!(
            snap.value("hydra_reactor_poll_wait_seconds_max", None),
            Some(2.0)
        );
        let text = snap.render_prometheus();
        assert!(
            text.contains("hydra_reactor_poll_wait_seconds_max 2\n"),
            "{text}"
        );
    }

    #[test]
    fn value_and_counter_total_see_labels() {
        let registry = MetricsRegistry::new();
        registry
            .counter_labeled("hydra_requests_total", "op", "a")
            .add(3);
        registry
            .counter_labeled("hydra_requests_total", "op", "b")
            .add(4);
        let snap = registry.snapshot();
        assert_eq!(
            snap.value("hydra_requests_total", Some(("op", "a"))),
            Some(3.0)
        );
        // Pre-registration adds the unlabeled zero instance; the total
        // sums labeled and unlabeled alike.
        assert_eq!(snap.counter_total("hydra_requests_total"), 7);
    }
}
