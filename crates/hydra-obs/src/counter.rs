//! Sharded counters and gauges.
//!
//! A counter is written from every worker thread, the reactor thread and
//! test threads at once; a single `AtomicU64` would ping-pong its cache
//! line between cores on every increment.  Each counter therefore owns a
//! small fixed array of cache-line-padded shards, and every thread sticks
//! to one shard chosen from a process-wide round-robin slot, so concurrent
//! writers on different cores usually touch different lines.  Reads sum
//! the shards — exact at quiescence, monotone always.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter.  Power of two so slot selection is a mask.
const SHARDS: usize = 8;

/// Process-wide round-robin source for per-thread shard slots.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The shard this thread writes; assigned once on first use.
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

/// One cache line worth of counter state.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// A monotonically increasing counter, sharded to keep the record path
/// contention-free.
#[derive(Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = SLOT.with(|s| *s);
        self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.  Exact once writers are
    /// quiescent; a monotone lower bound while they are not.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

/// An instantaneous signed value: in-flight request counts, live
/// connections, registry versions, high-water marks.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger — the high-water-mark mode
    /// (write-queue peaks, ready-batch peaks).
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.value())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_shards() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_tracks_max_and_level() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.value(), 10);
        g.set(-3);
        assert_eq!(g.value(), -3);
    }
}
