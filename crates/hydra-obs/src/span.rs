//! Tracing spans and the slow-request log.
//!
//! A [`Span`] is the per-request unit of tracing: created where the wire
//! layer parses a request, moved into the worker-pool task that serves it,
//! and dropped when the response is finished.  Its drop is the single
//! recording point — duration into the per-op histogram, outcome into the
//! per-op counters, and (when a [`SlowLog`] is armed and the threshold was
//! exceeded) one structured line to the log sink.  The span carries a
//! process-unique request id stamped by the registry, which is what lets a
//! slow-log line be correlated across reactor → worker → query layers.

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The request succeeded.
    Ok,
    /// The request failed (counted in the per-op error counter).
    Error,
}

/// Where slow-request lines go.
enum SlowSink {
    /// Production: one line to stderr.
    Stderr,
    /// Tests: lines accumulate in a shared buffer.
    Buffer(Arc<Mutex<Vec<String>>>),
}

/// The slow-request log: requests whose span ran longer than `threshold`
/// emit one structured line.  Off by default; armed per registry via
/// [`MetricsRegistry::set_slow_log`](crate::MetricsRegistry::set_slow_log)
/// (the `--slow-query-ms` flag on `hydra-serve`).
pub struct SlowLog {
    threshold: Duration,
    sink: SlowSink,
}

impl SlowLog {
    /// A slow log writing to stderr.
    pub fn stderr(threshold: Duration) -> SlowLog {
        SlowLog {
            threshold,
            sink: SlowSink::Stderr,
        }
    }

    /// A slow log writing into a shared buffer, for tests.  Returns the
    /// log and the buffer it appends to.
    pub fn buffered(threshold: Duration) -> (SlowLog, Arc<Mutex<Vec<String>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        (
            SlowLog {
                threshold,
                sink: SlowSink::Buffer(Arc::clone(&buffer)),
            },
            buffer,
        )
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    fn emit(&self, line: String) {
        match &self.sink {
            SlowSink::Stderr => eprintln!("{line}"),
            SlowSink::Buffer(buffer) => buffer.lock().expect("slow-log buffer").push(line),
        }
    }
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("threshold", &self.threshold)
            .finish()
    }
}

/// An RAII request span.  Obtained from
/// [`MetricsRegistry::span`](crate::MetricsRegistry::span); recording
/// happens on drop.
#[must_use = "a span records on drop; binding it to _ discards the measurement"]
pub struct Span {
    id: u64,
    op: &'static str,
    started: Instant,
    outcome: SpanOutcome,
    /// What the request was (SQL text, frame kind) — slow-log context.
    kind: Option<String>,
    /// How it was served (summary-direct vs scan, …) — slow-log context.
    detail: Option<String>,
    hist: Arc<Histogram>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    inflight: Arc<Gauge>,
    slow: Option<Arc<SlowLog>>,
}

impl Span {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: u64,
        op: &'static str,
        hist: Arc<Histogram>,
        requests: Arc<Counter>,
        errors: Arc<Counter>,
        inflight: Arc<Gauge>,
        slow: Option<Arc<SlowLog>>,
    ) -> Span {
        inflight.inc();
        Span {
            id,
            op,
            started: Instant::now(),
            outcome: SpanOutcome::Ok,
            kind: None,
            detail: None,
            hist,
            requests,
            errors,
            inflight,
            slow,
        }
    }

    /// The process-unique request id stamped at creation.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The operation label this span records under.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Marks the request failed; the per-op error counter is bumped on
    /// drop.
    pub fn set_error(&mut self) {
        self.outcome = SpanOutcome::Error;
    }

    /// Attaches what the request was (SQL text, frame kind) for the
    /// slow-log line.
    pub fn set_kind(&mut self, kind: impl Into<String>) {
        self.kind = Some(kind.into());
    }

    /// Attaches how the request was served (e.g. `summary_direct` vs
    /// `tuple_scan`) for the slow-log line.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = Some(detail.into());
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        self.hist.record_duration(elapsed);
        self.requests.inc();
        if self.outcome == SpanOutcome::Error {
            self.errors.inc();
        }
        self.inflight.dec();
        if let Some(slow) = &self.slow {
            if elapsed >= slow.threshold() {
                let mut line = format!(
                    "hydra-slow-request id={} op={} duration_ms={:.3} outcome={}",
                    self.id,
                    self.op,
                    elapsed.as_secs_f64() * 1e3,
                    match self.outcome {
                        SpanOutcome::Ok => "ok",
                        SpanOutcome::Error => "error",
                    }
                );
                if let Some(detail) = &self.detail {
                    line.push_str(&format!(" detail={detail}"));
                }
                if let Some(kind) = &self.kind {
                    // The kind (SQL text) goes last and quoted so the line
                    // stays machine-splittable on spaces up to this field.
                    line.push_str(&format!(" kind={:?}", kind));
                }
                slow.emit(line);
            }
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("op", &self.op)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;
    use std::time::Duration;

    #[test]
    fn span_records_duration_and_outcome() {
        let registry = MetricsRegistry::new();
        {
            let _span = registry.span("frame.list");
        }
        {
            let mut span = registry.span("frame.list");
            span.set_error();
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.value("hydra_requests_total", Some(("op", "frame.list"))),
            Some(2.0)
        );
        assert_eq!(
            snap.value("hydra_request_errors_total", Some(("op", "frame.list"))),
            Some(1.0)
        );
        assert_eq!(snap.value("hydra_requests_inflight", None), Some(0.0));
    }

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let registry = MetricsRegistry::new();
        let a = registry.span("x").id();
        let b = registry.span("x").id();
        assert!(b > a);
    }

    #[test]
    fn slow_log_fires_only_over_threshold() {
        let registry = MetricsRegistry::new();
        let (slow, lines) = crate::SlowLog::buffered(Duration::from_millis(20));
        registry.set_slow_log(Some(slow));
        {
            let _fast = registry.span("frame.list");
        }
        assert!(lines.lock().unwrap().is_empty(), "fast request logged");
        {
            let mut span = registry.span("frame.query");
            span.set_kind("select count(*) from store_sales");
            span.set_detail("summary_direct");
            std::thread::sleep(Duration::from_millis(30));
        }
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1, "slow request not logged");
        let line = &lines[0];
        assert!(line.starts_with("hydra-slow-request id="), "{line}");
        assert!(line.contains("op=frame.query"), "{line}");
        assert!(line.contains("detail=summary_direct"), "{line}");
        assert!(line.contains("kind=\"select count(*)"), "{line}");
    }
}
