//! Property suite for the observability core: histogram merge algebra and
//! concurrent-record exactness, the two invariants the cross-layer
//! aggregation (per-shard snapshots merged for exposition) leans on.

use hydra_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(parts: &[HistogramSnapshot]) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::empty();
    for p in parts {
        out.merge(p);
    }
    out
}

proptest! {
    /// Merging per-shard snapshots in any grouping yields the same
    /// aggregate: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), with the empty snapshot as
    /// identity.
    #[test]
    fn merge_is_associative_with_identity(
        a in proptest::collection::vec(0u64..1 << 42, 0..40),
        b in proptest::collection::vec(0u64..1 << 42, 0..40),
        c in proptest::collection::vec(0u64..1 << 42, 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);

        prop_assert_eq!(&left, &right);

        let mut with_identity = HistogramSnapshot::empty();
        with_identity.merge(&left);
        prop_assert_eq!(&with_identity, &left);
    }

    /// A merge of disjoint shards equals one histogram fed everything:
    /// same buckets, same count/sum, same exact min/max, same quantiles.
    #[test]
    fn merge_equals_single_histogram(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1 << 42, 0..30), 1..6),
    ) {
        let all: Vec<u64> = shards.iter().flatten().copied().collect();
        let combined = snapshot_of(&all);
        let parts: Vec<_> = shards.iter().map(|s| snapshot_of(s)).collect();
        let folded = merged(&parts);
        prop_assert_eq!(&folded, &combined);
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(folded.quantile(q), combined.quantile(q));
        }
    }

    /// Quantile estimates never leave the observed range and stay within
    /// the advertised 1/64 relative error of the true order statistic.
    #[test]
    fn quantiles_are_bounded_and_accurate(
        mut values in proptest::collection::vec(1u64..1 << 40, 1..200),
        q in 0.01f64..1.0,
    ) {
        let snap = snapshot_of(&values);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1] as f64;
        let est = snap.quantile(q);
        prop_assert!(est >= snap.min && est <= snap.max);
        // The estimate is the midpoint of the bucket holding the true
        // order statistic, so it is within one bucket width (2/64) of it.
        let err = (est as f64 - truth).abs() / truth;
        prop_assert!(err <= 2.0 / 64.0, "q={} truth={} est={} err={}", q, truth, est, err);
    }
}

/// Hammering one histogram from many threads loses no samples: the bucket
/// sum, `count`, and `sum` all agree with what was recorded.
#[test]
fn concurrent_records_are_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let h = std::sync::Arc::new(Histogram::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = std::sync::Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * 7_919 + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS)
        .map(|t| (0..PER_THREAD).map(|i| t * 7_919 + i).sum::<u64>())
        .sum();
    assert_eq!(snap.sum, expected_sum);
}
