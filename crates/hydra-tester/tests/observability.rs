//! End-to-end observability tests through the tester double: the frame
//! `Stats` surface, the pg `hydra_metrics` virtual table, and the
//! slow-request log — all fed by one shared registry across the reactor
//! and both protocol front-ends.

use hydra_core::session::Hydra;
use hydra_obs::SlowLog;
use hydra_service::protocol::StreamRequest;
use hydra_tester::HydraTester;
use std::time::Duration;

/// Frame `Stats` returns the same registry a `/metrics` scrape renders,
/// and the op counters reflect the requests this very client sent.
#[test]
fn frame_stats_reports_request_counters() {
    let tester = HydraTester::retail();
    let mut client = tester.client();
    client.list().expect("list");
    client.list().expect("list");
    let described = client.describe("retail").expect("describe");
    assert_eq!(described.info.name, "retail");

    let samples = client.stats().expect("stats");
    let value = |name: &str, key: &str, val: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.label_key == key && s.label_value == val)
            .map(|s| s.value)
    };
    assert_eq!(
        value("hydra_requests_total", "op", "frame.list"),
        Some(2.0),
        "two lists were sent"
    );
    assert_eq!(
        value("hydra_requests_total", "op", "frame.describe"),
        Some(1.0)
    );
    // The Stats request itself is spanned, but its own span closes only
    // after the response is encoded — so it may or may not appear; the
    // describe latency histogram must.
    assert!(
        samples
            .iter()
            .any(|s| s.name == "hydra_request_seconds_count" && s.label_value == "frame.describe"),
        "describe latency histogram missing from {samples:?}"
    );
    // Every frame response was counted into the byte totals.
    let frame_bytes = samples
        .iter()
        .find(|s| s.name == "hydra_frame_bytes_total")
        .map(|s| s.value)
        .unwrap_or_default();
    assert!(frame_bytes > 0.0, "frame bytes counter never moved");
}

/// `SELECT * FROM hydra_metrics` exposes the same registry over pg wire.
#[test]
fn pg_virtual_table_serves_metrics() {
    let tester = HydraTester::retail();
    let mut pg = tester.pg(None);
    let count = pg.query("select count(*) from store_sales").expect("count");
    assert_eq!(count.rows.len(), 1);

    let metrics = pg
        .query("select * from hydra_metrics")
        .expect("metrics table");
    assert_eq!(metrics.columns, vec!["name", "label", "value"]);
    assert!(
        metrics.tag.starts_with("SELECT "),
        "unexpected tag {:?}",
        metrics.tag
    );
    let find = |name: &str, label: Option<&str>| {
        metrics
            .rows
            .iter()
            .find(|row| row[0].as_deref() == Some(name) && row[1].as_deref() == label)
    };
    // The aggregate that just ran is visible, strategy-labelled.
    let agg = find("hydra_requests_total", Some("op=pg.aggregate"))
        .expect("pg.aggregate request counter missing");
    assert_eq!(agg[2].as_deref(), Some("1"));
    assert!(
        find("hydra_query_total", Some("strategy=summary_direct")).is_some()
            || find("hydra_query_total", Some("strategy=tuple_scan")).is_some(),
        "query engine strategy counter missing"
    );
    // Reactor counters share the registry (both listeners, one loop).
    let accepts =
        find("hydra_reactor_accepts_total", None).expect("reactor accepts counter missing");
    let accepted: f64 = accepts[2].as_deref().unwrap().parse().unwrap();
    assert!(accepted >= 1.0);
}

/// Requests over the slow threshold emit one structured log line carrying
/// the request id, op, duration, and detail; fast requests stay silent.
#[test]
fn slow_request_log_fires_only_over_threshold() {
    let session = Hydra::builder().compare_aqps(false).build();
    // Threshold zero: everything is "slow", so every op must log.
    let (slow, lines) = SlowLog::buffered(Duration::ZERO);
    session.metrics().set_slow_log(Some(slow));
    let tester = HydraTester::with_session(session);
    tester.publish_retail("retail");
    let mut client = tester.client();
    client.list().expect("list");
    let (rows, _) = client
        .stream_collect(StreamRequest::full("retail", "store_sales").range(0, 10))
        .expect("stream");
    assert_eq!(rows.len(), 10);
    drop(client);

    // A wire stream must settle the datagen account even though it drives
    // the generator directly rather than through `Hydra::stream_table`.
    let snapshot = tester.obs().snapshot();
    assert_eq!(
        snapshot.value("hydra_datagen_rows_total", Some(("table", "store_sales"))),
        Some(10.0),
        "wire stream did not reach the datagen counters"
    );

    let logged = lines.lock().unwrap().clone();
    let list_line = logged
        .iter()
        .find(|l| l.contains("op=frame.list"))
        .expect("list was slower than 0ms yet never logged");
    assert!(
        list_line.starts_with("hydra-slow-request id="),
        "{list_line}"
    );
    assert!(list_line.contains("duration_ms="), "{list_line}");
    assert!(list_line.contains("outcome=ok"), "{list_line}");
    let stream_line = logged
        .iter()
        .find(|l| l.contains("op=frame.stream"))
        .expect("stream never logged");
    assert!(
        stream_line.contains("retail.store_sales"),
        "stream line lacks its kind: {stream_line}"
    );

    // Raise the threshold out of reach: nothing new may be logged.
    let (quiet, quiet_lines) = SlowLog::buffered(Duration::from_secs(3600));
    tester.obs().set_slow_log(Some(quiet));
    let mut client = tester.client();
    client.list().expect("list");
    drop(client);
    assert!(
        quiet_lines.lock().unwrap().is_empty(),
        "fast request crossed a one-hour threshold"
    );
}

/// The tester's obs registry is the session's: counters recorded anywhere
/// in the stack are visible without any wire round-trip.
#[test]
fn obs_registry_is_shared_with_the_session() {
    let tester = HydraTester::retail();
    let mut client = tester.client();
    client.list().expect("list");
    drop(client);
    let snapshot = tester.obs().snapshot();
    assert!(
        snapshot.counter_total("hydra_requests_total") >= 1,
        "session registry missed the wire request"
    );
    let rendered = snapshot.render_prometheus();
    assert!(rendered.contains("hydra_registry_publishes_total 1"));
}
