//! # hydra-tester
//!
//! One-line Hydra-backed "postgres" for downstream tests — the
//! kassandra-tester pattern applied to this workspace: every test boots its
//! own server pair on **ephemeral ports**, gets a typed handle to both
//! protocol surfaces, and a **registry snapshot** is dumped when a test
//! panics so the failing state is visible in the test output.
//!
//! One [`HydraTester`] owns:
//!
//! * a shared in-memory [`SummaryRegistry`] (publish once, query from both
//!   protocols);
//! * a frame-protocol listener ([`HydraClient`] side);
//! * a PostgreSQL wire-protocol listener ([`PgClient`] side);
//! * one reactor event loop hosting both listeners under one
//!   [`ShutdownSignal`], so dropping the tester tears the whole double
//!   down (and [`HydraTester::metrics`] sees both protocols' traffic).
//!
//! ```
//! use hydra_tester::HydraTester;
//!
//! // The one-liner: a Hydra-backed "postgres" seeded with the retail fixture.
//! let tester = HydraTester::retail();
//! let mut pg = tester.pg(None);
//! let count = pg.query("select count(*) from store_sales").unwrap();
//! assert_eq!(count.rows.len(), 1);
//! ```

#![warn(missing_docs)]

use hydra_core::session::Hydra;
use hydra_core::transfer::TransferPackage;
use hydra_obs::MetricsRegistry;
use hydra_pgwire::{PgClient, PgProtocol};
use hydra_service::protocol::SummaryInfo;
use hydra_service::registry::{RegistryEntry, SummaryRegistry};
use hydra_service::server::{ReactorBuilder, ReactorHandle, SharedMetrics};
use hydra_service::{FrameProtocol, HydraClient, ShutdownSignal};
use hydra_workload::{retail_client_fixture, supplier_client_fixture};
use std::net::SocketAddr;
use std::sync::Arc;

/// Default tuple counts for the seeded retail fixture: big enough for a
/// multi-block summary with real joins, small enough for unit-test latency.
const RETAIL_STORE_SALES: u64 = 400;
const RETAIL_WEB_SALES: u64 = 120;
const RETAIL_QUERIES: usize = 4;

/// An ephemeral, fully wired Hydra test double: frame + pg listeners on
/// **one shared reactor event loop** over one registry, torn down (and
/// snapshotted on panic) when dropped.
#[derive(Debug)]
pub struct HydraTester {
    session: Hydra,
    registry: Arc<SummaryRegistry>,
    signal: ShutdownSignal,
    frame_addr: SocketAddr,
    pg_addr: SocketAddr,
    reactor: Option<ReactorHandle>,
}

impl Default for HydraTester {
    fn default() -> Self {
        Self::new()
    }
}

impl HydraTester {
    /// Boots an empty tester (no summaries published) over a default
    /// session.
    pub fn new() -> Self {
        Self::with_session(Hydra::builder().compare_aqps(false).build())
    }

    /// Boots a tester over a caller-configured session (velocity caps,
    /// parallelism, solver backend…).  Both protocol listeners share one
    /// reactor event loop, exactly like a production `hydra-serve`.
    pub fn with_session(session: Hydra) -> Self {
        Self::with_registry(SummaryRegistry::in_memory(session.clone()), session)
    }

    /// Boots a tester over a **durable** (WAL + snapshot) registry rooted
    /// at `wal_dir`, checkpointing every `checkpoint_every` records — the
    /// recovery path under test: reboot by building a second tester over
    /// the same directory.
    pub fn durable(
        session: Hydra,
        wal_dir: impl Into<std::path::PathBuf>,
        checkpoint_every: usize,
    ) -> Self {
        let registry = SummaryRegistry::durable(session.clone(), wal_dir, checkpoint_every)
            .expect("open durable registry");
        Self::with_registry(registry, session)
    }

    fn with_registry(registry: SummaryRegistry, session: Hydra) -> Self {
        let registry = Arc::new(registry);
        let signal = ShutdownSignal::new();
        let mut builder = ReactorBuilder::new().observe(session.metrics());
        let frame_addr = builder
            .listen(
                "127.0.0.1:0",
                Arc::new(FrameProtocol::new(Arc::clone(&registry), signal.clone())),
            )
            .expect("bind ephemeral frame listener");
        let pg_addr = builder
            .listen(
                "127.0.0.1:0",
                Arc::new(PgProtocol::new(Arc::clone(&registry))),
            )
            .expect("bind ephemeral pg listener");
        let reactor = builder.start(signal.clone()).expect("start shared reactor");
        HydraTester {
            session,
            registry,
            signal,
            frame_addr,
            pg_addr,
            reactor: Some(reactor),
        }
    }

    /// The one-liner: a tester with the retail fixture profiled and
    /// published as `retail`.
    pub fn retail() -> Self {
        let tester = Self::new();
        tester.publish_retail("retail");
        tester
    }

    /// Profiles the synthetic retail workload and publishes it as `name`.
    pub fn publish_retail(&self, name: &str) -> Arc<RegistryEntry> {
        let (db, queries) =
            retail_client_fixture(RETAIL_STORE_SALES, RETAIL_WEB_SALES, RETAIL_QUERIES);
        let package = self
            .session
            .profile(db, &queries)
            .expect("profile retail fixture");
        self.publish(name, package)
    }

    /// Profiles the synthetic supplier workload and publishes it as `name`.
    pub fn publish_supplier(&self, name: &str) -> Arc<RegistryEntry> {
        let (db, queries) = supplier_client_fixture(300, 100, 3);
        let package = self
            .session
            .profile(db, &queries)
            .expect("profile supplier fixture");
        self.publish(name, package)
    }

    /// Publishes an arbitrary transfer package under `name` (solves it
    /// server-side, exactly like a wire publish).
    pub fn publish(&self, name: &str, package: TransferPackage) -> Arc<RegistryEntry> {
        self.registry
            .publish(name, package)
            .unwrap_or_else(|e| panic!("publish `{name}`: {e}"))
    }

    /// The session driving solves and pacing.
    pub fn session(&self) -> &Hydra {
        &self.session
    }

    /// The registry both listeners serve.
    pub fn registry(&self) -> &Arc<SummaryRegistry> {
        &self.registry
    }

    /// The frame-protocol listener's address.
    pub fn frame_addr(&self) -> SocketAddr {
        self.frame_addr
    }

    /// The PostgreSQL listener's address.
    pub fn pg_addr(&self) -> SocketAddr {
        self.pg_addr
    }

    /// Live reactor counters for the shared event loop serving both
    /// listeners — connection totals, in-flight tasks, peak queued bytes.
    pub fn metrics(&self) -> SharedMetrics {
        self.reactor
            .as_ref()
            .expect("reactor runs for the tester's lifetime")
            .metrics()
    }

    /// The session's observability registry, shared by the reactor and both
    /// protocol layers — everything a production `/metrics` scrape would
    /// see, queryable in-process.
    pub fn obs(&self) -> Arc<MetricsRegistry> {
        self.session.metrics()
    }

    /// A connected frame-protocol client.
    pub fn client(&self) -> HydraClient {
        HydraClient::connect(self.frame_addr()).expect("connect frame client")
    }

    /// A connected PostgreSQL simple-query client. `database` picks the
    /// registry entry (`name[@version]`); `None` binds to the sole entry.
    pub fn pg(&self, database: Option<&str>) -> PgClient {
        PgClient::connect(self.pg_addr(), database).expect("connect pg client")
    }

    /// The shared shutdown signal (trigger it to stop both listeners, e.g.
    /// to test shutdown symmetry).
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// A point-in-time description of every published summary.
    pub fn snapshot(&self) -> Vec<SummaryInfo> {
        self.registry
            .list()
            .into_iter()
            .map(|entry| entry.info())
            .collect()
    }
}

impl Drop for HydraTester {
    fn drop(&mut self) {
        // kassandra-tester's best trick: when the owning test panics, dump
        // the registry state so the failure is debuggable from CI output.
        if std::thread::panicking() {
            eprintln!("hydra-tester registry snapshot at panic:");
            for info in self.snapshot() {
                eprintln!("  {info:?}");
            }
            eprintln!("hydra-tester metrics snapshot at panic:");
            for line in self.obs().snapshot().render_prometheus().lines() {
                if !line.starts_with('#') {
                    eprintln!("  {line}");
                }
            }
        }
        self.signal.trigger();
        // Dropping the reactor handle joins the event loop serving both
        // listeners and drains in-flight connections.
        self.reactor.take();
    }
}
