//! High-level LP solving interface used by the summary generator.

use crate::diagnostics::ViolationReport;
use crate::problem::{Constraint, ConstraintOp, LpProblem};
use crate::simplex::{Simplex, SimplexOutcome, WarmOutcome, WarmStart};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// How a solution was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// All constraints satisfied exactly (up to tolerance).
    Feasible,
    /// The original system was infeasible; the returned solution minimizes the
    /// total absolute violation (HYDRA's "minor additive errors").
    LeastViolation,
}

/// A solution to an LP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Value per decision variable.
    pub values: Vec<f64>,
    /// Objective value achieved (0 for pure feasibility problems).
    pub objective: f64,
    /// Whether the solution is exactly feasible or least-violation.
    pub status: SolveStatus,
    /// Total absolute violation across constraints (0 when feasible).
    pub total_violation: f64,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
    /// Number of variables in the problem (for reporting).
    pub num_vars: usize,
    /// Number of constraints in the problem (for reporting).
    pub num_constraints: usize,
}

impl LpSolution {
    /// Builds a violation report for this solution against a problem.
    pub fn violations(&self, problem: &LpProblem) -> ViolationReport {
        ViolationReport::evaluate(problem, &self.values)
    }
}

/// Errors from the high-level solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The LP objective is unbounded below.
    Unbounded,
    /// The solver exceeded its pivot budget.
    IterationLimit,
    /// The problem was infeasible and least-violation recovery was disabled.
    Infeasible {
        /// The positive phase-1 optimum certifying infeasibility.
        phase1_objective: f64,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "LP objective is unbounded"),
            LpError::IterationLimit => write!(f, "LP solver exceeded its pivot budget"),
            LpError::Infeasible { phase1_objective } => {
                write!(
                    f,
                    "LP is infeasible (phase-1 objective {phase1_objective:.4})"
                )
            }
        }
    }
}

impl std::error::Error for LpError {}

/// High-level LP solver.
///
/// `solve` first attempts an exact feasibility/optimality solve; if the system
/// is infeasible and `recover_least_violation` is set (the default), it
/// re-solves a soft version where every constraint gets slack variables and
/// the total slack is minimized.  This mirrors HYDRA's behaviour: the
/// post-processing step may introduce small additive errors, and the reported
/// relative errors stay small.
#[derive(Debug, Clone)]
pub struct LpSolver {
    /// Underlying simplex engine.
    pub simplex: Simplex,
    /// Whether to fall back to least-violation solving on infeasibility.
    pub recover_least_violation: bool,
    /// Feasibility tolerance used when classifying the result.
    pub tolerance: f64,
}

impl Default for LpSolver {
    fn default() -> Self {
        LpSolver {
            simplex: Simplex::default(),
            recover_least_violation: true,
            tolerance: 1e-6,
        }
    }
}

/// Column count above which pure-feasibility problems try restricted
/// working-set solves before touching the full tableau.
const WORKING_SET_MIN_VARS: usize = 1024;

/// Cap on column-generation rounds before giving up on the restricted path.
const COLUMN_GENERATION_ROUNDS: usize = 50;

/// Outcome of the column-generation feasibility loop.
enum ColumnGeneration {
    /// A feasible full-length solution (zeros outside the working set).
    Feasible(Vec<f64>),
    /// Certified infeasible: no excluded column can reduce the restricted
    /// phase-1 optimum below its positive value.
    Infeasible { phase1_objective: f64 },
    /// Pricing information was unavailable or the loop did not converge; the
    /// caller falls back to the full dense solve.
    GaveUp,
}

/// Seeds the working set: per constraint, a spread of its lowest-degree
/// columns (private freedom) and highest-degree columns (shared mass).
fn initial_working_set(problem: &LpProblem) -> std::collections::BTreeSet<usize> {
    let n = problem.num_vars;
    let mut degree = vec![0u32; n];
    for c in &problem.constraints {
        for (j, _) in &c.terms {
            degree[*j] += 1;
        }
    }
    let mut selected = std::collections::BTreeSet::new();
    for c in &problem.constraints {
        let mut cols: Vec<usize> = c.terms.iter().map(|(j, _)| *j).collect();
        cols.sort_unstable_by_key(|&j| (degree[j], j));
        for &j in cols.iter().take(13) {
            selected.insert(j);
        }
        for &j in cols.iter().rev().take(13) {
            selected.insert(j);
        }
    }
    selected
}

/// Projects the problem onto a column subset (excluded columns are fixed at
/// zero).  Returns the subproblem and the subset in slot order.
fn restrict(
    problem: &LpProblem,
    selected: &std::collections::BTreeSet<usize>,
) -> (LpProblem, Vec<usize>) {
    let columns: Vec<usize> = selected.iter().copied().collect();
    let mut slot_of = vec![usize::MAX; problem.num_vars];
    for (slot, &j) in columns.iter().enumerate() {
        slot_of[j] = slot;
    }
    let mut sub = LpProblem::new(columns.len());
    for (slot, &j) in columns.iter().enumerate() {
        sub.upper_bounds[slot] = problem.upper_bounds[j];
    }
    for c in &problem.constraints {
        let terms: Vec<(usize, f64)> = c
            .terms
            .iter()
            .filter(|(j, _)| slot_of[*j] != usize::MAX)
            .map(|(j, coef)| (slot_of[*j], *coef))
            .collect();
        sub.add_constraint(terms, c.op, c.rhs);
    }
    (sub, columns)
}

/// Builds the soft (elastic) relaxation: every constraint `a·x op b` gains
/// violation variables in the directions its operator allows, and the total
/// violation is minimized (plus a tiny weight on the original objective for
/// consistent tie-breaking).
fn soften(problem: &LpProblem) -> LpProblem {
    let n = problem.num_vars;
    let m = problem.constraints.len();
    // Two slack variables per constraint (over- and under-shoot).
    let mut soft = LpProblem::new(n + 2 * m);
    soft.upper_bounds[..n].clone_from_slice(&problem.upper_bounds);
    let mut objective: Vec<(usize, f64)> = Vec::with_capacity(2 * m + problem.objective.len());
    for (r, c) in problem.constraints.iter().enumerate() {
        let over = n + 2 * r; // adds to LHS
        let under = n + 2 * r + 1; // subtracts from LHS
        let mut terms = c.terms.clone();
        match c.op {
            ConstraintOp::Eq => {
                terms.push((over, 1.0));
                terms.push((under, -1.0));
                objective.push((over, 1.0));
                objective.push((under, 1.0));
            }
            ConstraintOp::Le => {
                // a·x - s_under <= b : s_under absorbs overshoot.
                terms.push((under, -1.0));
                objective.push((under, 1.0));
            }
            ConstraintOp::Ge => {
                terms.push((over, 1.0));
                objective.push((over, 1.0));
            }
        }
        soft.constraints.push(Constraint {
            terms,
            op: c.op,
            rhs: c.rhs,
            label: c.label.clone(),
        });
    }
    // Tiny weight on the original objective so ties are broken consistently.
    for (j, c) in &problem.objective {
        objective.push((*j, 1e-6 * c));
    }
    soft.set_objective(objective);
    soft
}

/// Prices every excluded column against the duals (`rc_j = -y·A_j` for
/// zero-cost structural columns) and adds the most promising ones to the
/// working set.  Returns how many were added.
fn price_and_add(
    problem: &LpProblem,
    duals: &[f64],
    selected: &mut std::collections::BTreeSet<usize>,
) -> usize {
    let n = problem.num_vars;
    let mut score = vec![0.0f64; n]; // y·A_j; improving columns have score > 0
    for (r, c) in problem.constraints.iter().enumerate() {
        let y = duals.get(r).copied().unwrap_or(0.0);
        if y.abs() > 1e-12 {
            for (j, coef) in &c.terms {
                score[*j] += y * coef;
            }
        }
    }
    let mut candidates: Vec<(f64, usize)> = score
        .iter()
        .enumerate()
        .filter(|(j, s)| **s > 1e-7 && !selected.contains(j))
        .map(|(j, s)| (*s, j))
        .collect();
    candidates.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let budget = (4 * problem.constraints.len()).max(64);
    let mut added = 0usize;
    for &(_, j) in candidates.iter().take(budget) {
        selected.insert(j);
        added += 1;
    }
    added
}

impl LpSolver {
    /// Creates a solver that fails (instead of recovering) on infeasibility.
    pub fn strict() -> Self {
        LpSolver {
            recover_least_violation: false,
            ..Default::default()
        }
    }

    /// Solves the problem.
    pub fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        self.solve_warm(problem, None).map(|(solution, _)| solution)
    }

    /// [`LpSolver::solve`] with an optional [`WarmStart`] — the support of a
    /// previously solved, structurally similar LP mapped into this problem's
    /// column space (delta re-profiling).
    ///
    /// The hint is advisory on every path: the dense simplex runs a
    /// warm-restricted phase 1 first, the delayed-column-generation fast
    /// path seeds its working set with the hinted columns, and a stale or
    /// incompatible hint falls back to the cold pivot space — so a warm
    /// solve reaches a feasible optimum on every problem the cold solver
    /// handles.  The returned [`WarmOutcome`] reports what the hint
    /// contributed.
    pub fn solve_warm(
        &self,
        problem: &LpProblem,
        warm: Option<&WarmStart>,
    ) -> Result<(LpSolution, WarmOutcome), LpError> {
        let start = Instant::now();

        // Fast path for HYDRA's fact-relation LPs: tens of thousands of
        // region columns against a few dozen equality rows.  A basic feasible
        // solution never needs more columns than rows, so solve over a small
        // working set and grow it by dual pricing (delayed column
        // generation): a restricted phase-1 optimum with no negatively-priced
        // excluded column proves infeasibility of the *full* problem, and any
        // restricted feasible point zero-pads to a full feasible point.
        if problem.objective.is_empty() && problem.num_vars >= WORKING_SET_MIN_VARS {
            let (generated, cg_outcome) = self.column_generation_feasibility(problem, warm);
            match generated {
                ColumnGeneration::Feasible(values) => {
                    let report = ViolationReport::evaluate(problem, &values);
                    return Ok((
                        LpSolution {
                            objective: 0.0,
                            status: SolveStatus::Feasible,
                            total_violation: report.total_absolute_violation,
                            solve_time: start.elapsed(),
                            num_vars: problem.num_vars,
                            num_constraints: problem.num_constraints(),
                            values,
                        },
                        cg_outcome,
                    ));
                }
                ColumnGeneration::Infeasible { phase1_objective } => {
                    if !self.recover_least_violation {
                        return Err(LpError::Infeasible { phase1_objective });
                    }
                    if let Some(solution) =
                        self.column_generation_least_violation(problem, start, warm)
                    {
                        return Ok((solution, cg_outcome));
                    }
                }
                ColumnGeneration::GaveUp => {}
            }
        }

        let (detail, warm_outcome) = self.simplex.solve_detailed_warm(problem, warm);
        match detail.outcome {
            SimplexOutcome::Optimal { values, objective } => {
                let report = ViolationReport::evaluate(problem, &values);
                Ok((
                    LpSolution {
                        values,
                        objective,
                        status: SolveStatus::Feasible,
                        total_violation: report.total_absolute_violation,
                        solve_time: start.elapsed(),
                        num_vars: problem.num_vars,
                        num_constraints: problem.num_constraints(),
                    },
                    warm_outcome,
                ))
            }
            SimplexOutcome::Infeasible { phase1_objective } => {
                if !self.recover_least_violation {
                    return Err(LpError::Infeasible { phase1_objective });
                }
                // Credit the *recovery* solve's warm outcome — the strict
                // pass necessarily fell short, but the hint can still close
                // the elastic system's phase 1.
                self.solve_least_violation(problem, start, warm)
            }
            SimplexOutcome::Unbounded => Err(LpError::Unbounded),
            SimplexOutcome::IterationLimit => Err(LpError::IterationLimit),
        }
    }

    /// Runs delayed column generation for pure feasibility.  A warm start
    /// seeds the working set with the hinted columns: a previous solution's
    /// support is usually a feasible basis already, so the first restricted
    /// solve closes feasibility without any pricing rounds.
    fn column_generation_feasibility(
        &self,
        problem: &LpProblem,
        warm: Option<&WarmStart>,
    ) -> (ColumnGeneration, WarmOutcome) {
        let n = problem.num_vars;
        let mut selected = initial_working_set(problem);
        let mut warm_outcome = WarmOutcome::NotAttempted;
        if let Some(w) = warm {
            if !w.columns.is_empty() && w.columns.iter().all(|&j| j < n) {
                selected.extend(w.columns.iter().copied());
                // Provisional: upgraded to `Hit` if the seeded working set
                // closes feasibility without a single pricing round.
                warm_outcome = WarmOutcome::FellBack;
            }
        }
        for round in 0..COLUMN_GENERATION_ROUNDS {
            if selected.len() >= n {
                return (ColumnGeneration::GaveUp, warm_outcome);
            }
            let (sub, columns) = restrict(problem, &selected);
            let detail = self.simplex.solve_detailed(&sub);
            match detail.outcome {
                crate::simplex::SimplexOutcome::Optimal { values, .. } => {
                    let mut full = vec![0.0; n];
                    for (slot, &j) in columns.iter().enumerate() {
                        full[j] = values[slot];
                    }
                    // Credit the hint only when the seeded working set
                    // closed feasibility without pricing rounds *and* the
                    // found solution actually rests on hinted columns — a
                    // junk hint riding on the heuristic seed is not a hit.
                    if round == 0
                        && warm_outcome == WarmOutcome::FellBack
                        && warm.is_some_and(|w| {
                            w.columns
                                .iter()
                                .any(|&j| full.get(j).is_some_and(|v| *v > 1e-9))
                        })
                    {
                        warm_outcome = WarmOutcome::Hit;
                    }
                    return (ColumnGeneration::Feasible(full), warm_outcome);
                }
                crate::simplex::SimplexOutcome::Infeasible { phase1_objective } => {
                    let Some(duals) = detail.duals else {
                        return (ColumnGeneration::GaveUp, warm_outcome);
                    };
                    // Price excluded columns against the phase-1 duals: the
                    // structural phase-1 cost is 0, so rc_j = -y·A_j.
                    let added = price_and_add(problem, &duals, &mut selected);
                    if added == 0 {
                        // No column can lower the positive phase-1 optimum:
                        // the full problem is infeasible, certified.
                        return (
                            ColumnGeneration::Infeasible { phase1_objective },
                            warm_outcome,
                        );
                    }
                }
                _ => return (ColumnGeneration::GaveUp, warm_outcome),
            }
        }
        (ColumnGeneration::GaveUp, warm_outcome)
    }

    /// Runs delayed column generation for the least-violation relaxation.
    /// The elastic problem is always feasible, so each round solves to
    /// optimality over the working set and prices the excluded structural
    /// columns with the phase-2 duals; no negative price means the global
    /// least-violation optimum has been reached.
    fn column_generation_least_violation(
        &self,
        problem: &LpProblem,
        start: Instant,
        warm: Option<&WarmStart>,
    ) -> Option<LpSolution> {
        let n = problem.num_vars;
        let mut selected = initial_working_set(problem);
        if let Some(w) = warm {
            if w.columns.iter().all(|&j| j < n) {
                selected.extend(w.columns.iter().copied());
            }
        }
        for _round in 0..COLUMN_GENERATION_ROUNDS {
            if selected.len() >= n {
                return None;
            }
            let (sub, columns) = restrict(problem, &selected);
            let soft = soften(&sub);
            let detail = self.simplex.solve_detailed(&soft);
            match detail.outcome {
                crate::simplex::SimplexOutcome::Optimal { values, .. } => {
                    let duals = detail.duals?;
                    let added = price_and_add(problem, &duals, &mut selected);
                    if added > 0 {
                        continue;
                    }
                    // Globally optimal: expand and classify.
                    let mut full = vec![0.0; n];
                    for (slot, &j) in columns.iter().enumerate() {
                        full[j] = values[slot];
                    }
                    let report = ViolationReport::evaluate(problem, &full);
                    let status =
                        if report.total_absolute_violation <= self.feasibility_tolerance(problem) {
                            SolveStatus::Feasible
                        } else {
                            SolveStatus::LeastViolation
                        };
                    return Some(LpSolution {
                        values: full,
                        objective: 0.0,
                        status,
                        total_violation: report.total_absolute_violation,
                        solve_time: start.elapsed(),
                        num_vars: problem.num_vars,
                        num_constraints: problem.num_constraints(),
                    });
                }
                _ => return None,
            }
        }
        None
    }

    /// The absolute violation below which a recovered solution counts as
    /// feasible: the configured tolerance, scaled by the magnitude of the
    /// right-hand sides.  Large-scale what-if scenarios (cardinalities in the
    /// trillions) accumulate floating-point rounding that is absolutely large
    /// but relatively negligible; classifying those infeasible would be
    /// reporting noise.
    fn feasibility_tolerance(&self, problem: &LpProblem) -> f64 {
        let rhs_scale = problem
            .constraints
            .iter()
            .map(|c| c.rhs.abs())
            .fold(1.0f64, f64::max);
        self.tolerance * rhs_scale
    }

    /// Solves the soft relaxation: every constraint `a·x op b` becomes
    /// `a·x + s⁺ - s⁻ op b` (with the slack signs restricted according to the
    /// operator) and `Σ(s⁺ + s⁻)` is minimized.
    fn solve_least_violation(
        &self,
        problem: &LpProblem,
        start: Instant,
        warm: Option<&WarmStart>,
    ) -> Result<(LpSolution, WarmOutcome), LpError> {
        let n = problem.num_vars;
        let soft = soften(problem);

        // Structural columns keep their indices in the softened problem, so
        // the hint stays valid — extended with the violation variables, which
        // are what makes the elastic system feasible in the first place.
        let soft_warm = warm.map(|w| {
            let mut columns = w.columns.clone();
            columns.extend(n..soft.num_vars);
            WarmStart::new(columns)
        });

        let (detail, warm_outcome) = self.simplex.solve_detailed_warm(&soft, soft_warm.as_ref());
        match detail.outcome {
            SimplexOutcome::Optimal { values, .. } => {
                let values: Vec<f64> = values.into_iter().take(n).collect();
                let report = ViolationReport::evaluate(problem, &values);
                let status =
                    if report.total_absolute_violation <= self.feasibility_tolerance(problem) {
                        SolveStatus::Feasible
                    } else {
                        SolveStatus::LeastViolation
                    };
                let objective: f64 = problem.objective.iter().map(|(j, c)| c * values[*j]).sum();
                Ok((
                    LpSolution {
                        values,
                        objective,
                        status,
                        total_violation: report.total_absolute_violation,
                        solve_time: start.elapsed(),
                        num_vars: problem.num_vars,
                        num_constraints: problem.num_constraints(),
                    },
                    warm_outcome,
                ))
            }
            SimplexOutcome::Infeasible { phase1_objective } => {
                Err(LpError::Infeasible { phase1_objective })
            }
            SimplexOutcome::Unbounded => Err(LpError::Unbounded),
            SimplexOutcome::IterationLimit => Err(LpError::IterationLimit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintOp;

    #[test]
    fn feasible_solve_reports_feasible() {
        let mut lp = LpProblem::new(3);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Eq, 9.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 2.0);
        let sol = LpSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, SolveStatus::Feasible);
        assert!(sol.total_violation < 1e-6);
        assert!(lp.is_feasible(&sol.values, 1e-6));
        assert_eq!(sol.num_vars, 3);
        assert_eq!(sol.num_constraints, 2);
    }

    #[test]
    fn infeasible_recovers_least_violation() {
        // x0 = 5 and x0 = 7 cannot both hold; best compromise violates by 2 total.
        let mut lp = LpProblem::new(1);
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 5.0, "c1");
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 7.0, "c2");
        let sol = LpSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, SolveStatus::LeastViolation);
        assert!((sol.total_violation - 2.0).abs() < 1e-5);
        assert!(sol.values[0] >= 5.0 - 1e-6 && sol.values[0] <= 7.0 + 1e-6);
    }

    #[test]
    fn strict_solver_errors_on_infeasible() {
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 3.0);
        let err = LpSolver::strict().solve(&lp).unwrap_err();
        assert!(matches!(err, LpError::Infeasible { .. }));
    }

    #[test]
    fn unbounded_propagates() {
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        lp.set_objective(vec![(0, -1.0)]);
        assert_eq!(
            LpSolver::default().solve(&lp).unwrap_err(),
            LpError::Unbounded
        );
    }

    #[test]
    fn violation_report_from_solution() {
        let mut lp = LpProblem::new(1);
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 5.0, "edge a");
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 6.0, "edge b");
        let sol = LpSolver::default().solve(&lp).unwrap();
        let report = sol.violations(&lp);
        assert_eq!(report.violations.len(), 2);
        assert!(report.max_relative_error() <= 0.2 + 1e-9);
    }

    #[test]
    fn least_violation_respects_inequalities() {
        // x0 <= 10, x0 >= 4, x0 = 20 → compromise should keep x0 <= 10.
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 10.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 4.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 20.0);
        let sol = LpSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, SolveStatus::LeastViolation);
        assert!(sol.values[0] <= 10.0 + 1e-6);
        assert!(sol.values[0] >= 4.0 - 1e-6);
    }

    /// The support (nonzero columns) of a solution — what delta re-profiling
    /// carries from one solve to the next.
    fn support(solution: &LpSolution) -> Vec<usize> {
        solution
            .values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 1e-9)
            .map(|(j, _)| j)
            .collect()
    }

    /// A HYDRA-shaped feasibility LP: block equalities plus a total sum.
    fn blocky_lp(total: f64) -> LpProblem {
        let n = 60;
        let mut lp = LpProblem::new(n);
        for k in 0..12 {
            let lo = k * 5;
            let terms: Vec<(usize, f64)> = (lo..lo + 5).map(|j| (j, 1.0)).collect();
            lp.add_constraint(terms, ConstraintOp::Eq, 40.0);
        }
        lp.add_constraint((0..n).map(|j| (j, 1.0)).collect(), ConstraintOp::Eq, total);
        lp
    }

    #[test]
    fn warm_start_from_previous_support_hits() {
        let lp = blocky_lp(480.0);
        let solver = LpSolver::default();
        let cold = solver.solve(&lp).unwrap();
        assert_eq!(cold.status, SolveStatus::Feasible);

        // Re-solve the same structure with a revised RHS (a re-annotation
        // delta): the old support is still a feasible basis.
        let warm_hint = WarmStart::new(support(&cold));
        let (warm_sol, outcome) = solver.solve_warm(&lp, Some(&warm_hint)).unwrap();
        assert_eq!(outcome, WarmOutcome::Hit);
        assert_eq!(warm_sol.status, SolveStatus::Feasible);
        assert!(lp.is_feasible(&warm_sol.values, 1e-5));
    }

    #[test]
    fn warm_start_matches_cold_feasibility_on_all_fixtures() {
        // Every fixture the cold solver handles must be handled warm too —
        // with a good hint, a junk hint, and an empty hint.
        let fixtures: Vec<LpProblem> = {
            let mut v = Vec::new();
            let mut lp = LpProblem::new(3);
            lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Eq, 9.0);
            lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 2.0);
            v.push(lp);
            v.push(blocky_lp(480.0));
            // The PR 3 mixed-scale phase-1 tolerance fixture: a huge row
            // target plus small-scale equalities that are exactly feasible.
            let mut lp = LpProblem::new(3);
            lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 1e10);
            lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 5.0);
            lp.add_constraint(vec![(1, 1.0), (2, 1.0)], ConstraintOp::Eq, 12.0);
            v.push(lp);
            // Inequalities + upper bounds.
            let mut lp = LpProblem::new(2);
            lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
            lp.set_upper_bound(0, 3.0);
            v.push(lp);
            v
        };
        let solver = LpSolver::default();
        for (i, lp) in fixtures.iter().enumerate() {
            let cold = solver.solve(lp).unwrap();
            let hints = [
                WarmStart::new(support(&cold)),
                WarmStart::new((0..lp.num_vars).rev().collect()),
                WarmStart::new(Vec::new()),
            ];
            for hint in &hints {
                let (warm_sol, _) = solver.solve_warm(lp, Some(hint)).unwrap();
                assert_eq!(warm_sol.status, cold.status, "fixture {i}");
                assert!(
                    lp.is_feasible(&warm_sol.values, 1e-5),
                    "fixture {i} warm solution infeasible"
                );
            }
        }
    }

    #[test]
    fn stale_warm_basis_falls_back_to_cold() {
        // A hint pointing at columns that cannot span a feasible basis: only
        // x0 is hinted, but feasibility needs x1 (x0 is capped below the
        // demand).  The restricted pass must fail over to the full space.
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0);
        lp.set_upper_bound(0, 3.0);
        let solver = LpSolver::default();
        let (sol, outcome) = solver
            .solve_warm(&lp, Some(&WarmStart::new(vec![0])))
            .unwrap();
        assert_eq!(outcome, WarmOutcome::FellBack);
        assert_eq!(sol.status, SolveStatus::Feasible);
        assert!(lp.is_feasible(&sol.values, 1e-6));

        // An incompatible hint (columns out of range — a basis saved against
        // a different problem) is skipped entirely, not an error.
        let (sol, outcome) = solver
            .solve_warm(&lp, Some(&WarmStart::new(vec![0, 99])))
            .unwrap();
        assert_eq!(outcome, WarmOutcome::NotAttempted);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn warm_start_respects_mixed_scale_infeasibility_detection() {
        // The PR 3 regression shape: a huge row target must not mask a real
        // small-scale contradiction — warm-started or not.
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 1e10);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 7.0);
        let strict = LpSolver::strict();
        let cold = strict.solve(&lp).unwrap_err();
        assert!(matches!(cold, LpError::Infeasible { .. }));
        let warm = strict
            .solve_warm(&lp, Some(&WarmStart::new(vec![0, 1])))
            .unwrap_err();
        assert!(matches!(warm, LpError::Infeasible { .. }));

        // The recovering solver reaches the same least-violation compromise
        // (unit scale, where the violation is relatively significant too).
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 3.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 7.0);
        let solver = LpSolver::default();
        let cold = solver.solve(&lp).unwrap();
        let (warm, _) = solver
            .solve_warm(&lp, Some(&WarmStart::new(vec![0, 1])))
            .unwrap();
        assert_eq!(cold.status, SolveStatus::LeastViolation);
        assert_eq!(warm.status, SolveStatus::LeastViolation);
        assert!((cold.total_violation - warm.total_violation).abs() < 1e-5);
    }

    #[test]
    fn warm_start_seeds_the_column_generation_path() {
        // Big enough to take the delayed-column-generation fast path
        // (>= WORKING_SET_MIN_VARS), structured like a fact-relation LP.
        let n = 1500usize;
        let mut lp = LpProblem::new(n);
        for k in 0..10 {
            let lo = k * 150;
            let terms: Vec<(usize, f64)> = (lo..lo + 150).map(|j| (j, 1.0)).collect();
            lp.add_constraint(terms, ConstraintOp::Eq, 100.0);
        }
        lp.add_constraint((0..n).map(|j| (j, 1.0)).collect(), ConstraintOp::Eq, 1000.0);
        let solver = LpSolver::default();
        let cold = solver.solve(&lp).unwrap();
        assert_eq!(cold.status, SolveStatus::Feasible);
        let (warm_sol, outcome) = solver
            .solve_warm(&lp, Some(&WarmStart::new(support(&cold))))
            .unwrap();
        assert_eq!(outcome, WarmOutcome::Hit);
        assert!(lp.is_feasible(&warm_sol.values, 1e-5));
    }
}
