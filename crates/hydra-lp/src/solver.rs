//! High-level LP solving interface used by the summary generator.

use crate::diagnostics::ViolationReport;
use crate::problem::{Constraint, ConstraintOp, LpProblem};
use crate::simplex::{Simplex, SimplexOutcome};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// How a solution was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// All constraints satisfied exactly (up to tolerance).
    Feasible,
    /// The original system was infeasible; the returned solution minimizes the
    /// total absolute violation (HYDRA's "minor additive errors").
    LeastViolation,
}

/// A solution to an LP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Value per decision variable.
    pub values: Vec<f64>,
    /// Objective value achieved (0 for pure feasibility problems).
    pub objective: f64,
    /// Whether the solution is exactly feasible or least-violation.
    pub status: SolveStatus,
    /// Total absolute violation across constraints (0 when feasible).
    pub total_violation: f64,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
    /// Number of variables in the problem (for reporting).
    pub num_vars: usize,
    /// Number of constraints in the problem (for reporting).
    pub num_constraints: usize,
}

impl LpSolution {
    /// Builds a violation report for this solution against a problem.
    pub fn violations(&self, problem: &LpProblem) -> ViolationReport {
        ViolationReport::evaluate(problem, &self.values)
    }
}

/// Errors from the high-level solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The LP objective is unbounded below.
    Unbounded,
    /// The solver exceeded its pivot budget.
    IterationLimit,
    /// The problem was infeasible and least-violation recovery was disabled.
    Infeasible { phase1_objective: f64 },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "LP objective is unbounded"),
            LpError::IterationLimit => write!(f, "LP solver exceeded its pivot budget"),
            LpError::Infeasible { phase1_objective } => {
                write!(f, "LP is infeasible (phase-1 objective {phase1_objective:.4})")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// High-level LP solver.
///
/// `solve` first attempts an exact feasibility/optimality solve; if the system
/// is infeasible and `recover_least_violation` is set (the default), it
/// re-solves a soft version where every constraint gets slack variables and
/// the total slack is minimized.  This mirrors HYDRA's behaviour: the
/// post-processing step may introduce small additive errors, and the reported
/// relative errors stay small.
#[derive(Debug, Clone)]
pub struct LpSolver {
    /// Underlying simplex engine.
    pub simplex: Simplex,
    /// Whether to fall back to least-violation solving on infeasibility.
    pub recover_least_violation: bool,
    /// Feasibility tolerance used when classifying the result.
    pub tolerance: f64,
}

impl Default for LpSolver {
    fn default() -> Self {
        LpSolver { simplex: Simplex::default(), recover_least_violation: true, tolerance: 1e-6 }
    }
}

impl LpSolver {
    /// Creates a solver that fails (instead of recovering) on infeasibility.
    pub fn strict() -> Self {
        LpSolver { recover_least_violation: false, ..Default::default() }
    }

    /// Solves the problem.
    pub fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        let start = Instant::now();
        match self.simplex.solve(problem) {
            SimplexOutcome::Optimal { values, objective } => {
                let report = ViolationReport::evaluate(problem, &values);
                Ok(LpSolution {
                    values,
                    objective,
                    status: SolveStatus::Feasible,
                    total_violation: report.total_absolute_violation,
                    solve_time: start.elapsed(),
                    num_vars: problem.num_vars,
                    num_constraints: problem.num_constraints(),
                })
            }
            SimplexOutcome::Infeasible { phase1_objective } => {
                if !self.recover_least_violation {
                    return Err(LpError::Infeasible { phase1_objective });
                }
                self.solve_least_violation(problem, start)
            }
            SimplexOutcome::Unbounded => Err(LpError::Unbounded),
            SimplexOutcome::IterationLimit => Err(LpError::IterationLimit),
        }
    }

    /// Solves the soft relaxation: every constraint `a·x op b` becomes
    /// `a·x + s⁺ - s⁻ op b` (with the slack signs restricted according to the
    /// operator) and `Σ(s⁺ + s⁻)` is minimized.
    fn solve_least_violation(
        &self,
        problem: &LpProblem,
        start: Instant,
    ) -> Result<LpSolution, LpError> {
        let n = problem.num_vars;
        let m = problem.constraints.len();
        // Two slack variables per constraint (over- and under-shoot).
        let mut soft = LpProblem::new(n + 2 * m);
        soft.upper_bounds[..n].clone_from_slice(&problem.upper_bounds);
        let mut objective: Vec<(usize, f64)> = Vec::with_capacity(2 * m + problem.objective.len());
        for (r, c) in problem.constraints.iter().enumerate() {
            let over = n + 2 * r; // adds to LHS
            let under = n + 2 * r + 1; // subtracts from LHS
            let mut terms = c.terms.clone();
            match c.op {
                ConstraintOp::Eq => {
                    terms.push((over, 1.0));
                    terms.push((under, -1.0));
                    objective.push((over, 1.0));
                    objective.push((under, 1.0));
                }
                ConstraintOp::Le => {
                    // a·x - s_under <= b : s_under absorbs overshoot.
                    terms.push((under, -1.0));
                    objective.push((under, 1.0));
                }
                ConstraintOp::Ge => {
                    terms.push((over, 1.0));
                    objective.push((over, 1.0));
                }
            }
            soft.constraints.push(Constraint {
                terms,
                op: c.op,
                rhs: c.rhs,
                label: c.label.clone(),
            });
        }
        // Tiny weight on the original objective so ties are broken consistently.
        for (j, c) in &problem.objective {
            objective.push((*j, 1e-6 * c));
        }
        soft.set_objective(objective);

        match self.simplex.solve(&soft) {
            SimplexOutcome::Optimal { values, .. } => {
                let values: Vec<f64> = values.into_iter().take(n).collect();
                let report = ViolationReport::evaluate(problem, &values);
                let status = if report.total_absolute_violation <= self.tolerance {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::LeastViolation
                };
                let objective: f64 =
                    problem.objective.iter().map(|(j, c)| c * values[*j]).sum();
                Ok(LpSolution {
                    values,
                    objective,
                    status,
                    total_violation: report.total_absolute_violation,
                    solve_time: start.elapsed(),
                    num_vars: problem.num_vars,
                    num_constraints: problem.num_constraints(),
                })
            }
            SimplexOutcome::Infeasible { phase1_objective } => {
                Err(LpError::Infeasible { phase1_objective })
            }
            SimplexOutcome::Unbounded => Err(LpError::Unbounded),
            SimplexOutcome::IterationLimit => Err(LpError::IterationLimit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintOp;

    #[test]
    fn feasible_solve_reports_feasible() {
        let mut lp = LpProblem::new(3);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Eq, 9.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 2.0);
        let sol = LpSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, SolveStatus::Feasible);
        assert!(sol.total_violation < 1e-6);
        assert!(lp.is_feasible(&sol.values, 1e-6));
        assert_eq!(sol.num_vars, 3);
        assert_eq!(sol.num_constraints, 2);
    }

    #[test]
    fn infeasible_recovers_least_violation() {
        // x0 = 5 and x0 = 7 cannot both hold; best compromise violates by 2 total.
        let mut lp = LpProblem::new(1);
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 5.0, "c1");
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 7.0, "c2");
        let sol = LpSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, SolveStatus::LeastViolation);
        assert!((sol.total_violation - 2.0).abs() < 1e-5);
        assert!(sol.values[0] >= 5.0 - 1e-6 && sol.values[0] <= 7.0 + 1e-6);
    }

    #[test]
    fn strict_solver_errors_on_infeasible() {
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 3.0);
        let err = LpSolver::strict().solve(&lp).unwrap_err();
        assert!(matches!(err, LpError::Infeasible { .. }));
    }

    #[test]
    fn unbounded_propagates() {
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        lp.set_objective(vec![(0, -1.0)]);
        assert_eq!(LpSolver::default().solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn violation_report_from_solution() {
        let mut lp = LpProblem::new(1);
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 5.0, "edge a");
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 6.0, "edge b");
        let sol = LpSolver::default().solve(&lp).unwrap();
        let report = sol.violations(&lp);
        assert_eq!(report.violations.len(), 2);
        assert!(report.max_relative_error() <= 0.2 + 1e-9);
    }

    #[test]
    fn least_violation_respects_inequalities() {
        // x0 <= 10, x0 >= 4, x0 = 20 → compromise should keep x0 <= 10.
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 10.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 4.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 20.0);
        let sol = LpSolver::default().solve(&lp).unwrap();
        assert_eq!(sol.status, SolveStatus::LeastViolation);
        assert!(sol.values[0] <= 10.0 + 1e-6);
        assert!(sol.values[0] >= 4.0 - 1e-6);
    }
}
