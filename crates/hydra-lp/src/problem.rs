//! Sparse linear-program model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `expr = rhs`
    Eq,
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintOp::Eq => write!(f, "="),
            ConstraintOp::Le => write!(f, "<="),
            ConstraintOp::Ge => write!(f, ">="),
        }
    }
}

/// A single linear constraint `sum(coef_i * x_i) op rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse terms: (variable index, coefficient).
    pub terms: Vec<(usize, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
    /// Optional human-readable label (e.g. which AQP edge produced it),
    /// carried through to violation reports.
    pub label: Option<String>,
}

impl Constraint {
    /// Evaluates the left-hand side for a candidate solution.
    pub fn lhs(&self, values: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(i, c)| c * values.get(*i).copied().unwrap_or(0.0))
            .sum()
    }

    /// Signed violation of the constraint for a candidate solution
    /// (0 when satisfied; positive magnitude = amount by which it is missed).
    pub fn violation(&self, values: &[f64]) -> f64 {
        let lhs = self.lhs(values);
        match self.op {
            ConstraintOp::Eq => lhs - self.rhs,
            ConstraintOp::Le => (lhs - self.rhs).max(0.0),
            ConstraintOp::Ge => (self.rhs - lhs).max(0.0),
        }
    }
}

/// A linear program over non-negative variables.
///
/// All variables are implicitly bounded below by zero (tuple counts cannot be
/// negative); optional upper bounds can be attached per variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpProblem {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Constraints.
    pub constraints: Vec<Constraint>,
    /// Optional sparse objective (minimized).  Empty = pure feasibility.
    pub objective: Vec<(usize, f64)>,
    /// Optional per-variable upper bounds (`None` = unbounded above).
    pub upper_bounds: Vec<Option<f64>>,
    /// Optional variable names for diagnostics.
    pub var_names: Vec<String>,
}

impl LpProblem {
    /// Creates a problem with `num_vars` non-negative variables and no
    /// constraints.
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            constraints: Vec::new(),
            objective: Vec::new(),
            upper_bounds: vec![None; num_vars],
            var_names: (0..num_vars).map(|i| format!("x{i}")).collect(),
        }
    }

    /// Adds a constraint and returns its index.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        self.constraints.push(Constraint {
            terms,
            op,
            rhs,
            label: None,
        });
        self.constraints.len() - 1
    }

    /// Adds a labelled constraint and returns its index.
    pub fn add_labeled_constraint(
        &mut self,
        terms: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
        label: impl Into<String>,
    ) -> usize {
        self.constraints.push(Constraint {
            terms,
            op,
            rhs,
            label: Some(label.into()),
        });
        self.constraints.len() - 1
    }

    /// Sets the (sparse) linear objective to minimize.
    pub fn set_objective(&mut self, terms: Vec<(usize, f64)>) {
        self.objective = terms;
    }

    /// Sets an upper bound on a variable.
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) {
        if var < self.num_vars {
            self.upper_bounds[var] = Some(bound);
        }
    }

    /// Renames a variable (diagnostics only).
    pub fn set_var_name(&mut self, var: usize, name: impl Into<String>) {
        if var < self.num_vars {
            self.var_names[var] = name.into();
        }
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Total number of non-zero coefficients across all constraints.
    pub fn num_nonzeros(&self) -> usize {
        self.constraints.iter().map(|c| c.terms.len()).sum()
    }

    /// Checks a candidate solution against every constraint and the
    /// non-negativity bounds, within `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() < self.num_vars {
            return false;
        }
        if values.iter().take(self.num_vars).any(|v| *v < -tol) {
            return false;
        }
        for (i, ub) in self.upper_bounds.iter().enumerate() {
            if let Some(ub) = ub {
                if values[i] > ub + tol {
                    return false;
                }
            }
        }
        self.constraints
            .iter()
            .all(|c| c.violation(values).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_evaluation() {
        let c = Constraint {
            terms: vec![(0, 2.0), (2, 1.0)],
            op: ConstraintOp::Eq,
            rhs: 7.0,
            label: None,
        };
        assert_eq!(c.lhs(&[2.0, 99.0, 3.0]), 7.0);
        assert_eq!(c.violation(&[2.0, 99.0, 3.0]), 0.0);
        assert_eq!(c.violation(&[2.0, 0.0, 4.0]), 1.0);
    }

    #[test]
    fn violation_direction_for_inequalities() {
        let le = Constraint {
            terms: vec![(0, 1.0)],
            op: ConstraintOp::Le,
            rhs: 5.0,
            label: None,
        };
        assert_eq!(le.violation(&[4.0]), 0.0);
        assert_eq!(le.violation(&[6.0]), 1.0);
        let ge = Constraint {
            terms: vec![(0, 1.0)],
            op: ConstraintOp::Ge,
            rhs: 5.0,
            label: None,
        };
        assert_eq!(ge.violation(&[6.0]), 0.0);
        assert_eq!(ge.violation(&[4.0]), 1.0);
    }

    #[test]
    fn problem_construction_and_feasibility_check() {
        let mut lp = LpProblem::new(3);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Eq, 10.0);
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Le, 3.0, "q1.filter");
        lp.set_upper_bound(2, 5.0);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.num_nonzeros(), 4);
        assert!(lp.is_feasible(&[3.0, 4.0, 3.0], 1e-9));
        assert!(!lp.is_feasible(&[4.0, 3.0, 3.0], 1e-9)); // violates x0 <= 3
        assert!(!lp.is_feasible(&[0.0, 4.0, 6.0], 1e-9)); // violates upper bound + sum
        assert!(!lp.is_feasible(&[-1.0, 8.0, 3.0], 1e-9)); // negative
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // too short
    }

    #[test]
    fn op_display() {
        assert_eq!(ConstraintOp::Eq.to_string(), "=");
        assert_eq!(ConstraintOp::Le.to_string(), "<=");
        assert_eq!(ConstraintOp::Ge.to_string(), ">=");
    }

    #[test]
    fn var_names() {
        let mut lp = LpProblem::new(2);
        assert_eq!(lp.var_names[1], "x1");
        lp.set_var_name(1, "region_7");
        assert_eq!(lp.var_names[1], "region_7");
    }
}
