//! Solution refinement: interior solutions and integral repair.
//!
//! The two-phase simplex returns a *vertex* of the feasible polytope. For
//! HYDRA's dimension relations that is a poor representative: vertex solutions
//! concentrate tuple mass in as few regions as possible, which collapses
//! regions that distinguish different workload predicates. Downstream, the
//! foreign-key projection of two different dimension predicates can then land
//! on the *same* primary-key blocks, turning consistent (harvested) fact
//! constraints into contradictory LPs — exactly the additive-error mechanism
//! the paper attributes to its summary projection.
//!
//! [`refine_toward`] fixes this: starting from a feasible solution it walks
//! inside the feasible affine subspace toward an attractor point (HYDRA uses
//! the volume-proportional allocation), so every region that *can* carry mass
//! does. The walk uses cyclic projections (von Neumann) onto the equality
//! constraints' null space, so `Ax = b` is preserved to numerical precision.
//!
//! [`repair_rounded_counts`] runs after largest-remainder rounding: rounding
//! preserves the relation total but lets individual constraint groups drift by
//! a few units. A greedy integral local search moves single units between
//! regions while the total absolute constraint violation strictly decreases,
//! typically restoring every feasible constraint group to exactness.

use crate::problem::{ConstraintOp, LpProblem};

/// Moves a feasible solution toward `attractor` without leaving the equality
/// constraint subspace or the non-negative orthant.
///
/// Returns the refined solution; inputs are not modified. The problem must be
/// HYDRA-shaped: only equality constraints participate (any other operator
/// makes this a no-op), and the starting `solution` is assumed feasible.
pub fn refine_toward(problem: &LpProblem, solution: &[f64], attractor: &[f64]) -> Vec<f64> {
    let n = problem.num_vars;
    if solution.len() != n
        || attractor.len() != n
        || n == 0
        || problem.constraints.iter().any(|c| c.op != ConstraintOp::Eq)
    {
        return solution.to_vec();
    }

    // Pre-compute squared norms of constraint rows.
    let norms: Vec<f64> = problem
        .constraints
        .iter()
        .map(|c| c.terms.iter().map(|(_, coef)| coef * coef).sum::<f64>())
        .collect();

    let mut x = solution.to_vec();
    // Outer iterations: each projects the remaining desire onto the null
    // space, then steps as far as the orthant allows.
    for _outer in 0..6 {
        let mut d: Vec<f64> = x.iter().zip(attractor).map(|(xi, vi)| vi - xi).collect();

        // Cyclic projections of `d` onto the intersection of the constraint
        // rows' null spaces.
        for _sweep in 0..40 {
            let mut residual = 0.0f64;
            for (c, &nrm) in problem.constraints.iter().zip(&norms) {
                if nrm <= 1e-12 {
                    continue;
                }
                let dot: f64 = c.terms.iter().map(|(i, coef)| coef * d[*i]).sum();
                if dot.abs() > 1e-12 {
                    let scale = dot / nrm;
                    for (i, coef) in &c.terms {
                        d[*i] -= scale * coef;
                    }
                    residual += dot.abs();
                }
            }
            if residual < 1e-9 {
                break;
            }
        }

        let magnitude: f64 = d.iter().map(|v| v.abs()).sum();
        if magnitude < 1e-9 {
            break;
        }

        // Largest step that keeps x non-negative; slightly damped so we do
        // not park exactly on the boundary (boundary = collapsed regions,
        // which is what we are escaping).
        let mut alpha = 1.0f64;
        for (xi, di) in x.iter().zip(&d) {
            if *di < -1e-12 {
                alpha = alpha.min(xi / -di);
            }
        }
        let step = 0.95 * alpha;
        if step < 1e-9 {
            break;
        }
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi = (*xi + step * di).max(0.0);
        }
    }
    x
}

/// Greedy integral repair of rounded counts against an LP's equality
/// constraints.
///
/// Moves single units into or out of variables while the total absolute
/// violation across all equality constraints strictly decreases; when no
/// single move helps, paired (increment, decrement) moves are tried so the
/// relation total stays fixed through intermediate states that single moves
/// cannot cross. Terminates after `max_moves` applied moves at the latest.
///
/// Only applies to HYDRA-shaped problems (all-equality constraints with unit
/// coefficients); anything else is left untouched.
pub fn repair_rounded_counts(problem: &LpProblem, counts: &mut [u64], max_moves: usize) {
    let n = problem.num_vars;
    if counts.len() != n || n == 0 {
        return;
    }
    let hydra_shaped = problem
        .constraints
        .iter()
        .all(|c| c.op == ConstraintOp::Eq && c.terms.iter().all(|(_, coef)| *coef == 1.0));
    if !hydra_shaped {
        return;
    }

    // Membership lists: which constraints contain each variable.
    let mut member: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, c) in problem.constraints.iter().enumerate() {
        for (i, _) in &c.terms {
            member[*i].push(k);
        }
    }

    // Signed deltas: achieved - target.
    let mut delta: Vec<i64> = problem
        .constraints
        .iter()
        .map(|c| {
            let achieved: i64 = c.terms.iter().map(|(i, _)| counts[*i] as i64).sum();
            achieved - c.rhs.round() as i64
        })
        .collect();

    // Gain of bumping a variable up/down by one unit: number of constraints
    // whose |delta| shrinks minus number whose |delta| grows.
    let gain_inc = |var: usize, delta: &[i64]| -> i64 {
        member[var]
            .iter()
            .map(|&k| if delta[k] < 0 { 1 } else { -1 })
            .sum()
    };
    let gain_dec = |var: usize, delta: &[i64]| -> i64 {
        member[var]
            .iter()
            .map(|&k| if delta[k] > 0 { 1 } else { -1 })
            .sum()
    };

    let apply = |var: usize, dir: i64, counts: &mut [u64], delta: &mut [i64]| {
        if dir > 0 {
            counts[var] += 1;
        } else {
            counts[var] -= 1;
        }
        for &k in &member[var] {
            delta[k] += dir;
        }
    };

    for _ in 0..max_moves {
        // Best single move.
        let mut best: Option<(usize, i64, i64)> = None; // (var, dir, gain)
        for (var, &count) in counts.iter().enumerate() {
            let up = gain_inc(var, &delta);
            if best.map(|(_, _, g)| up > g).unwrap_or(up > 0) {
                best = Some((var, 1, up));
            }
            if count > 0 {
                let down = gain_dec(var, &delta);
                if best.map(|(_, _, g)| down > g).unwrap_or(down > 0) {
                    best = Some((var, -1, down));
                }
            }
        }
        if let Some((var, dir, _)) = best {
            apply(var, dir, counts, &mut delta);
            continue;
        }

        // Paired move: +1 on `r`, -1 on `s`. Rank candidates separately by
        // their single-move gains, evaluate the top combinations exactly
        // (the union of their memberships), apply the first improvement.
        let mut inc_rank: Vec<(i64, usize)> = (0..n).map(|v| (gain_inc(v, &delta), v)).collect();
        let mut dec_rank: Vec<(i64, usize)> = (0..n)
            .filter(|&v| counts[v] > 0)
            .map(|v| (gain_dec(v, &delta), v))
            .collect();
        inc_rank.sort_unstable_by(|a, b| b.cmp(a));
        dec_rank.sort_unstable_by(|a, b| b.cmp(a));
        let mut applied = false;
        'pairs: for &(_, r) in inc_rank.iter().take(24) {
            for &(_, s) in dec_rank.iter().take(24) {
                if r == s {
                    continue;
                }
                let mut change = 0i64;
                for &k in &member[r] {
                    let shared = member[s].contains(&k);
                    if !shared {
                        change += (delta[k] + 1).abs() - delta[k].abs();
                    }
                }
                for &k in &member[s] {
                    let shared = member[r].contains(&k);
                    if !shared {
                        change += (delta[k] - 1).abs() - delta[k].abs();
                    }
                }
                if change < 0 {
                    apply(r, 1, counts, &mut delta);
                    apply(s, -1, counts, &mut delta);
                    applied = true;
                    break 'pairs;
                }
            }
        }
        if !applied {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LpProblem;
    use crate::solver::LpSolver;

    /// x0 + x1 = 10, x0 + x2 = 10, total = 20. Vertex solutions put all mass
    /// in x0; the volume-proportional attractor spreads it.
    #[test]
    fn refine_escapes_degenerate_vertices() {
        let mut lp = LpProblem::new(4);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0);
        lp.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintOp::Eq, 10.0);
        lp.add_constraint(
            vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            ConstraintOp::Eq,
            20.0,
        );
        let sol = LpSolver::default().solve(&lp).unwrap();
        let attractor = vec![5.0; 4];
        let refined = refine_toward(&lp, &sol.values, &attractor);
        // Still feasible...
        assert!(
            lp.is_feasible(&refined, 1e-6),
            "refined {refined:?} infeasible"
        );
        // ...and the previously-empty complement regions now carry mass.
        assert!(refined[1] > 0.5, "x1 still collapsed: {refined:?}");
        assert!(refined[2] > 0.5, "x2 still collapsed: {refined:?}");
    }

    #[test]
    fn refine_is_noop_for_non_equality_problems() {
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 5.0);
        let x = vec![1.0, 2.0];
        assert_eq!(refine_toward(&lp, &x, &[9.0, 9.0]), x);
    }

    #[test]
    fn repair_restores_constraint_groups() {
        // Two overlapping groups; rounding drifted both by one unit.
        let mut lp = LpProblem::new(3);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0);
        lp.add_constraint(vec![(1, 1.0), (2, 1.0)], ConstraintOp::Eq, 8.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Eq, 14.0);
        let mut counts = vec![7, 4, 3]; // groups achieve 11 and 7, total 14
        repair_rounded_counts(&lp, &mut counts, 100);
        assert_eq!(counts[0] + counts[1], 10);
        assert_eq!(counts[1] + counts[2], 8);
        assert_eq!(counts.iter().sum::<u64>(), 14);
    }

    #[test]
    fn repair_never_increases_total_violation() {
        let mut lp = LpProblem::new(2);
        // Contradictory system: no integral point satisfies both.
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 7.0);
        let violation =
            |counts: &[u64]| -> i64 { (counts[0] as i64 - 5).abs() + (counts[0] as i64 - 7).abs() };
        let mut counts = vec![6, 0];
        let before = violation(&counts);
        repair_rounded_counts(&lp, &mut counts, 100);
        assert!(violation(&counts) <= before);
    }

    #[test]
    fn repair_ignores_non_unit_coefficients() {
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 2.0), (1, 1.0)], ConstraintOp::Eq, 10.0);
        let mut counts = vec![3, 3];
        repair_rounded_counts(&lp, &mut counts, 100);
        assert_eq!(counts, vec![3, 3]);
    }
}
