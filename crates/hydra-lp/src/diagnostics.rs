//! Constraint-violation diagnostics.
//!
//! HYDRA's accuracy experiments (E2, E7) report the distribution of *relative
//! errors* across volumetric constraints.  The [`ViolationReport`] here is the
//! numeric backbone of those reports: for every constraint it records the
//! achieved LHS, the target RHS, and the absolute/relative error.

use crate::problem::LpProblem;
use serde::{Deserialize, Serialize};

/// The violation of a single constraint by a candidate solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintViolation {
    /// Constraint index in the problem.
    pub index: usize,
    /// Optional label carried from the constraint (e.g. AQP edge id).
    pub label: Option<String>,
    /// Achieved left-hand side.
    pub achieved: f64,
    /// Target right-hand side.
    pub target: f64,
    /// Absolute violation (0 when satisfied).
    pub absolute: f64,
    /// Relative violation: `absolute / max(|target|, 1)`.
    pub relative: f64,
}

/// Violations of every constraint in a problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ViolationReport {
    /// Per-constraint violations (one entry per constraint, satisfied or not).
    pub violations: Vec<ConstraintViolation>,
    /// Sum of absolute violations.
    pub total_absolute_violation: f64,
}

impl ViolationReport {
    /// Evaluates a candidate solution against all constraints of a problem.
    pub fn evaluate(problem: &LpProblem, values: &[f64]) -> Self {
        let mut violations = Vec::with_capacity(problem.constraints.len());
        let mut total = 0.0;
        for (i, c) in problem.constraints.iter().enumerate() {
            let achieved = c.lhs(values);
            let absolute = c.violation(values).abs();
            let relative = absolute / c.rhs.abs().max(1.0);
            total += absolute;
            violations.push(ConstraintViolation {
                index: i,
                label: c.label.clone(),
                achieved,
                target: c.rhs,
                absolute,
                relative,
            });
        }
        ViolationReport {
            violations,
            total_absolute_violation: total,
        }
    }

    /// Number of constraints satisfied within the given relative error.
    pub fn satisfied_within(&self, relative_error: f64) -> usize {
        self.violations
            .iter()
            .filter(|v| v.relative <= relative_error)
            .count()
    }

    /// Fraction (0..=1) of constraints satisfied within the given relative error.
    pub fn fraction_within(&self, relative_error: f64) -> f64 {
        if self.violations.is_empty() {
            return 1.0;
        }
        self.satisfied_within(relative_error) as f64 / self.violations.len() as f64
    }

    /// The largest relative error across constraints (0 if there are none).
    pub fn max_relative_error(&self) -> f64 {
        self.violations
            .iter()
            .map(|v| v.relative)
            .fold(0.0, f64::max)
    }

    /// Mean relative error across constraints (0 if there are none).
    pub fn mean_relative_error(&self) -> f64 {
        if self.violations.is_empty() {
            return 0.0;
        }
        self.violations.iter().map(|v| v.relative).sum::<f64>() / self.violations.len() as f64
    }

    /// Cumulative-distribution points of relative error at the given
    /// thresholds, as `(threshold, fraction satisfied)` pairs.  This is the
    /// "percentage of volumetric constraints satisfied within a given relative
    /// error" plot from the vendor screen (Figure 4, bottom left).
    pub fn error_cdf(&self, thresholds: &[f64]) -> Vec<(f64, f64)> {
        thresholds
            .iter()
            .map(|t| (*t, self.fraction_within(*t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, LpProblem};

    fn report() -> (LpProblem, ViolationReport) {
        let mut lp = LpProblem::new(2);
        lp.add_labeled_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 100.0, "a");
        lp.add_labeled_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 200.0, "b");
        lp.add_labeled_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 1000.0, "c");
        let r = ViolationReport::evaluate(&lp, &[100.0, 190.0]);
        (lp, r)
    }

    #[test]
    fn evaluate_computes_absolute_and_relative() {
        let (_, r) = report();
        assert_eq!(r.violations.len(), 3);
        assert_eq!(r.violations[0].absolute, 0.0);
        assert_eq!(r.violations[1].absolute, 10.0);
        assert!((r.violations[1].relative - 0.05).abs() < 1e-12);
        assert_eq!(r.violations[2].absolute, 0.0); // inequality satisfied
        assert_eq!(r.total_absolute_violation, 10.0);
    }

    #[test]
    fn cdf_and_summaries() {
        let (_, r) = report();
        assert_eq!(r.satisfied_within(0.0), 2);
        assert_eq!(r.satisfied_within(0.1), 3);
        assert!((r.fraction_within(0.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.max_relative_error() - 0.05).abs() < 1e-12);
        assert!(r.mean_relative_error() > 0.0);
        let cdf = r.error_cdf(&[0.0, 0.01, 0.1]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[2].1, 1.0);
    }

    #[test]
    fn empty_report() {
        let lp = LpProblem::new(1);
        let r = ViolationReport::evaluate(&lp, &[0.0]);
        assert_eq!(r.fraction_within(0.0), 1.0);
        assert_eq!(r.max_relative_error(), 0.0);
        assert_eq!(r.mean_relative_error(), 0.0);
    }

    #[test]
    fn relative_error_uses_unit_floor_for_tiny_targets() {
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 0.0);
        let r = ViolationReport::evaluate(&lp, &[0.5]);
        assert_eq!(r.violations[0].relative, 0.5);
    }
}
