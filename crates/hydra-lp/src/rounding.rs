//! Largest-remainder rounding of fractional LP solutions.
//!
//! LP solutions assign fractional row counts to regions.  The summary needs
//! integers, and HYDRA's deterministic alignment requires that rounding not
//! change the total row count of the relation (otherwise every volumetric
//! constraint would drift).  Largest-remainder (Hamilton) rounding achieves
//! exactly that: floors everything, then distributes the leftover units to the
//! entries with the largest fractional parts, deterministically.

/// Rounds `values` to non-negative integers whose sum equals `target_total`.
///
/// * Values are clamped to be non-negative first.
/// * If the floored sum falls short of `target_total`, the deficit is
///   distributed one unit at a time to the entries with the largest
///   fractional remainders (ties broken by index, so the result is
///   deterministic).
/// * If the floored sum already exceeds `target_total` (possible when the
///   caller passes a target smaller than the fractional sum), units are
///   removed from the entries with the smallest remainders.
pub fn largest_remainder_round(values: &[f64], target_total: u64) -> Vec<u64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let clamped: Vec<f64> = values.iter().map(|v| v.max(0.0)).collect();
    let mut floors: Vec<u64> = clamped.iter().map(|v| v.floor() as u64).collect();
    let mut remainders: Vec<(usize, f64)> = clamped
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v - v.floor()))
        .collect();
    let current: u64 = floors.iter().sum();

    if current < target_total {
        let mut deficit = target_total - current;
        // Largest remainder first; ties by lower index.
        remainders.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut idx = 0usize;
        while deficit > 0 {
            let (i, _) = remainders[idx % n];
            floors[i] += 1;
            deficit -= 1;
            idx += 1;
        }
    } else if current > target_total {
        let mut surplus = current - target_total;
        // Smallest remainder first; only entries with positive counts shrink.
        remainders.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut idx = 0usize;
        let mut removed_in_cycle = false;
        while surplus > 0 {
            let (i, _) = remainders[idx % n];
            if floors[i] > 0 {
                floors[i] -= 1;
                surplus -= 1;
                removed_in_cycle = true;
            }
            idx += 1;
            if idx.is_multiple_of(n) {
                if !removed_in_cycle {
                    // All entries are zero; nothing more to remove.
                    break;
                }
                removed_in_cycle = false;
            }
        }
    }
    floors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_integers_pass_through() {
        assert_eq!(largest_remainder_round(&[3.0, 4.0, 5.0], 12), vec![3, 4, 5]);
    }

    #[test]
    fn fractional_parts_distributed_to_largest_remainders() {
        // Sum = 10; remainders 0.6, 0.3, 0.1 → the extra unit goes to index 0.
        let out = largest_remainder_round(&[3.6, 3.3, 3.1], 10);
        assert_eq!(out.iter().sum::<u64>(), 10);
        assert_eq!(out, vec![4, 3, 3]);
    }

    #[test]
    fn deficit_distribution_is_deterministic_on_ties() {
        let out = largest_remainder_round(&[1.5, 1.5, 1.5, 1.5], 7);
        assert_eq!(out.iter().sum::<u64>(), 7);
        // Ties broken by index: first three get the extra unit.
        assert_eq!(out, vec![2, 2, 2, 1]);
    }

    #[test]
    fn surplus_removed_from_smallest_remainders() {
        let out = largest_remainder_round(&[2.9, 3.1, 4.0], 8);
        assert_eq!(out.iter().sum::<u64>(), 8);
    }

    #[test]
    fn negative_values_clamped() {
        let out = largest_remainder_round(&[-2.0, 5.0, 5.0], 10);
        assert_eq!(out.iter().sum::<u64>(), 10);
        assert_eq!(out[0], 0);
    }

    #[test]
    fn empty_input() {
        assert!(largest_remainder_round(&[], 5).is_empty());
    }

    #[test]
    fn all_zero_with_positive_target() {
        let out = largest_remainder_round(&[0.0, 0.0], 3);
        assert_eq!(out.iter().sum::<u64>(), 3);
    }

    #[test]
    fn target_zero() {
        let out = largest_remainder_round(&[1.2, 3.4], 0);
        assert_eq!(out.iter().sum::<u64>(), 0);
    }
}
