//! # hydra-lp
//!
//! Linear-program modelling and solving for HYDRA.
//!
//! The original system hands its per-relation linear programs to the Z3 SMT
//! solver.  Mature LP bindings are not available offline, so this crate
//! provides a self-contained replacement:
//!
//! * [`problem::LpProblem`] — a sparse LP model (variables, linear
//!   constraints, optional linear objective, non-negativity bounds);
//! * [`simplex::Simplex`] — a dense two-phase primal simplex solver with
//!   Bland's-rule anti-cycling;
//! * [`solver::LpSolver`] — the high-level entry point used by
//!   `hydra-summary`: feasibility solving, least-violation ("soft") solving
//!   when the constraint system is over-determined, and optional objective
//!   minimization;
//! * [`rounding`] — largest-remainder rounding of fractional solutions into
//!   integral tuple counts that preserve group sums;
//! * [`diagnostics`] — constraint-violation reports used by the accuracy
//!   experiments (E2, E7).
//!
//! The LPs HYDRA produces are pure feasibility problems over non-negative
//! variables (one per region) with equality constraints (one per volumetric
//! annotation), so a primal simplex is an exact functional replacement for
//! the paper's Z3 usage.
//!
//! ## Example
//!
//! ```
//! use hydra_lp::problem::{LpProblem, ConstraintOp};
//! use hydra_lp::solver::LpSolver;
//!
//! // x0 + x1 = 10, x0 <= 4, minimize x1
//! let mut lp = LpProblem::new(2);
//! lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0);
//! lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 4.0);
//! lp.set_objective(vec![(1, 1.0)]);
//! let sol = LpSolver::default().solve(&lp).unwrap();
//! assert!((sol.values[0] - 4.0).abs() < 1e-6);
//! assert!((sol.values[1] - 6.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod diagnostics;
pub mod problem;
pub mod refine;
pub mod rounding;
pub mod simplex;
pub mod solver;

pub use diagnostics::{ConstraintViolation, ViolationReport};
pub use problem::{Constraint, ConstraintOp, LpProblem};
pub use refine::{refine_toward, repair_rounded_counts};
pub use rounding::largest_remainder_round;
pub use simplex::{WarmOutcome, WarmStart};
pub use solver::{LpError, LpSolution, LpSolver, SolveStatus};
